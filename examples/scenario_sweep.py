"""Scenario sweep: one matrix from synthetic families and a recorded trace.

This example shows the scenario subsystem through the run-spec facade:

1. generate serving-style traffic (a flash crowd) from the scenario registry;
2. record it to a JSONL trace file and replay it — replay is exact, so the
   decision logs of the original and the replayed run are identical;
3. run a scenarios x algorithms grid that mixes generative families with the
   recorded trace (``RunSpec.grid`` + ``Runner``), and print the
   cross-scenario comparison table.

The same matrix is available from the shell:

    python -m repro sweep --scenarios bursty,flash_crowd \
        --algorithms fractional,randomized --backend numpy --jobs 4

Run with:  python examples/scenario_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import Runner, RunSpec
from repro.scenarios import build_scenario, record_trace, scenario_from_trace


def main() -> None:
    runner = Runner()

    # 1. Generate a flash crowd and record it as a JSONL trace.
    instance = build_scenario("flash_crowd", random_state=11, num_requests=200)
    trace_path = Path(tempfile.gettempdir()) / "flash_crowd_demo.jsonl"
    record_trace(instance, trace_path)
    print(f"Recorded {instance.describe()}\n      -> {trace_path}")

    # 2. Replay it and check the round trip is exact: one spec runs the
    #    original instance, one replays the trace; same seed, same decisions,
    #    bit for bit.  A probe captures the full decision log, so the check
    #    covers every accept/reject/preempt event, not just the final costs.
    def capture_decisions(inst, algorithm):
        return {"decisions": [(d.request_id, str(d.kind)) for d in algorithm.decisions()]}

    original = runner.run(
        RunSpec(instance=instance, algorithm="randomized", trials=1, seed=5,
                probe=capture_decisions)
    )
    replayed = runner.run(
        RunSpec(trace=trace_path, algorithm="randomized", trials=1, seed=5,
                probe=capture_decisions)
    )
    same = original[0].extra["decisions"] == replayed[0].extra["decisions"]
    print(f"Replay reproduces the decision log exactly: {same}\n")

    # 3. A grid mixing generative scenarios with the recorded trace.  Cell
    #    seeds derive from (seed, scenario, algorithm), so adding the trace
    #    never changes the generative cells' numbers.
    grid = RunSpec.grid(
        ["bursty", "zipf_costs", scenario_from_trace(trace_path, register=False)],
        ["fractional", "randomized"],
        backends=["numpy"],
        trials=2,
        seed=7,
    )
    results = runner.run(grid)
    print(results.table(title="Scenario sweep — backend=numpy, trials=2, seed=7"))
    print()
    print(results.comparison_table())
    print(
        "\nEvery scenario feeds the same compiled fast path, so new families "
        "cost one registry entry and zero algorithm changes."
    )


if __name__ == "__main__":
    main()
