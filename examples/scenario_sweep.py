"""Scenario sweep: one matrix from synthetic families and a recorded trace.

This example shows the scenario subsystem end to end:

1. generate serving-style traffic (a flash crowd) from the scenario registry;
2. record it to a JSONL trace file and replay it — replay is exact, so the
   decision logs of the original and the replayed run are identical;
3. run a scenarios x algorithms sweep that mixes generative families with the
   recorded trace, and print the cross-scenario comparison table.

The same matrix is available from the shell:

    python -m repro sweep --scenarios bursty,flash_crowd \
        --algorithms fractional,randomized --backend numpy --jobs 4

Run with:  python examples/scenario_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import run_admission
from repro.engine import make_admission_algorithm
from repro.engine.sweep import ScenarioSweep
from repro.instances.compiled import compile_instance
from repro.scenarios import build_scenario, load_trace, record_trace, scenario_from_trace


def main() -> None:
    # 1. Generate a flash crowd and record it as a JSONL trace.
    instance = build_scenario("flash_crowd", random_state=11, num_requests=200)
    trace_path = Path(tempfile.gettempdir()) / "flash_crowd_demo.jsonl"
    record_trace(instance, trace_path)
    print(f"Recorded {instance.describe()}\n      -> {trace_path}")

    # 2. Replay it and check the round trip is exact: same decisions, bit for bit.
    replayed = load_trace(trace_path)
    original_run = run_admission(
        make_admission_algorithm("randomized", instance, random_state=5),
        instance,
        compiled=compile_instance(instance),
    )
    replayed_run = run_admission(
        make_admission_algorithm("randomized", replayed, random_state=5),
        replayed,
        compiled=compile_instance(replayed),
    )
    same = [(d.request_id, d.kind) for d in original_run.decisions] == [
        (d.request_id, d.kind) for d in replayed_run.decisions
    ]
    print(f"Replay reproduces the decision log exactly: {same}\n")

    # 3. A sweep mixing generative scenarios with the recorded trace.
    sweep = ScenarioSweep(
        ["bursty", "zipf_costs", scenario_from_trace(trace_path, register=False)],
        ["fractional", "randomized"],
        backend="numpy",
        num_trials=2,
        seed=7,
    )
    print(sweep.run().report())
    print(
        "\nEvery scenario feeds the same compiled fast path, so new families "
        "cost one registry entry and zero algorithm changes."
    )


if __name__ == "__main__":
    main()
