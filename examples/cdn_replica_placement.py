"""Scenario: CDN replica placement as online set cover with repetitions.

Elements are client regions; sets are candidate cache sites, each covering the
regions within its latency budget.  When a region's demand grows it asks for
*one more independent replica* (a repetition of the element): the content must
then be present at that many *different* cache sites, which is exactly the
"online set cover with repetitions" model of the paper.

The example compares three online strategies as demand arrives region by
region:

* the paper's randomized algorithm obtained through the Section-4 reduction to
  admission control,
* the paper's deterministic bicriteria algorithm (which may cover a region by
  (1-eps) of its requested replicas), and
* a greedy baseline that buys the most cost-effective site on demand,

against the exact offline optimum computed after the fact.

Run with:  python examples/cdn_replica_placement.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import evaluate_setcover_run, format_records, format_table
from repro.core import run_setcover
from repro.engine import make_setcover_algorithm
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.offline import greedy_set_multicover, solve_set_multicover_ilp
from repro.utils.rng import as_generator


def build_cdn(num_regions: int = 40, num_sites: int = 18, radius: float = 0.35, seed: int = 5) -> SetSystem:
    """Random geometric coverage: a site covers every region within ``radius``."""
    rng = as_generator(seed)
    regions = rng.random((num_regions, 2))
    sites = rng.random((num_sites, 2))
    sets = {}
    for s in range(num_sites):
        distance = np.sqrt(((regions - sites[s]) ** 2).sum(axis=1))
        covered = [int(r) for r in np.nonzero(distance <= radius)[0]]
        if covered:
            sets[f"site{s}"] = covered
    system = SetSystem(sets)
    # Make sure every region is coverable by at least one site.
    return system


def build_demand(system: SetSystem, num_arrivals: int = 90, seed: int = 9):
    """Regions ask for replicas; popular regions come back for more."""
    rng = as_generator(seed)
    regions = list(system.elements())
    popularity = rng.pareto(1.2, size=len(regions)) + 1.0
    popularity /= popularity.sum()
    counts = {r: 0 for r in regions}
    arrivals = []
    while len(arrivals) < num_arrivals:
        r = regions[int(rng.choice(len(regions), p=popularity))]
        if counts[r] < system.degree(r):  # cannot ask for more replicas than reachable sites
            counts[r] += 1
            arrivals.append(r)
    return SetCoverInstance(system, arrivals, name="cdn-replica-demand")


def main() -> None:
    system = build_cdn()
    instance = build_demand(system)
    print(instance.describe())

    demands = instance.demands()
    optimum = solve_set_multicover_ilp(system, demands, time_limit=30.0)
    greedy_offline = greedy_set_multicover(system, demands)
    print(
        f"Offline optimum opens {optimum.num_sets} sites (cost {optimum.cost:.0f}); "
        f"offline greedy opens {greedy_offline.num_sets}.\n"
    )

    # Algorithms resolved from the engine registry by key, exactly as the
    # experiments and the CLI resolve them.
    algorithms = {
        "Paper (reduction to admission control)": make_setcover_algorithm(
            "reduction", instance, random_state=1
        ),
        "Paper (deterministic bicriteria, eps=0.2)": make_setcover_algorithm(
            "bicriteria", instance, eps=0.2
        ),
        "Greedy on demand": make_setcover_algorithm("greedy-density", instance),
    }
    records = []
    coverage_rows = []
    for label, algorithm in algorithms.items():
        result = run_setcover(algorithm, instance)
        record = evaluate_setcover_run(instance, result, ilp_time_limit=30.0)
        record.algorithm = label
        records.append(record)
        worst = min(
            (result.coverage[e] / k for e, k in demands.items() if k > 0), default=1.0
        )
        coverage_rows.append(
            {
                "algorithm": label,
                "sites_opened": result.num_sets,
                "cost": result.cost,
                "worst_region_coverage": worst,
                "fully_covered": result.satisfied,
            }
        )

    print(format_records(records, title="Online replica placement vs offline optimum"))
    print()
    print(format_table(coverage_rows, title="Coverage detail (bicriteria may stop at (1-eps)k replicas)"))
    print(
        "\nThe reduction-based algorithm always reaches full coverage; the bicriteria algorithm "
        "trades a (1-eps) fraction of the replicas for a deterministic guarantee, exactly as in Section 5."
    )


if __name__ == "__main__":
    main()
