"""Scenario: CDN replica placement as online set cover with repetitions.

Elements are client regions; sets are candidate cache sites, each covering the
regions within its latency budget.  When a region's demand grows it asks for
*one more independent replica* (a repetition of the element): the content must
then be present at that many *different* cache sites, which is exactly the
"online set cover with repetitions" model of the paper.

The example compares three online strategies as demand arrives region by
region — each a declarative :class:`~repro.api.spec.RunSpec` with
``problem="setcover"`` over the explicit instance, with a measurement probe
pulling per-region coverage off the finished algorithm:

* the paper's randomized algorithm obtained through the Section-4 reduction to
  admission control,
* the paper's deterministic bicriteria algorithm (which may cover a region by
  (1-eps) of its requested replicas), and
* a greedy baseline that buys the most cost-effective site on demand,

against the exact offline optimum computed after the fact.

Run with:  python examples/cdn_replica_placement.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.api import FixedSeedAlgorithmFactory, Runner, RunSpec
from repro.engine import EngineConfig
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.offline import greedy_set_multicover, solve_set_multicover_ilp
from repro.utils.rng import as_generator


def build_cdn(num_regions: int = 40, num_sites: int = 18, radius: float = 0.35, seed: int = 5) -> SetSystem:
    """Random geometric coverage: a site covers every region within ``radius``."""
    rng = as_generator(seed)
    regions = rng.random((num_regions, 2))
    sites = rng.random((num_sites, 2))
    sets = {}
    for s in range(num_sites):
        distance = np.sqrt(((regions - sites[s]) ** 2).sum(axis=1))
        covered = [int(r) for r in np.nonzero(distance <= radius)[0]]
        if covered:
            sets[f"site{s}"] = covered
    system = SetSystem(sets)
    # Make sure every region is coverable by at least one site.
    return system


def build_demand(system: SetSystem, num_arrivals: int = 90, seed: int = 9):
    """Regions ask for replicas; popular regions come back for more."""
    rng = as_generator(seed)
    regions = list(system.elements())
    popularity = rng.pareto(1.2, size=len(regions)) + 1.0
    popularity /= popularity.sum()
    counts = {r: 0 for r in regions}
    arrivals = []
    while len(arrivals) < num_arrivals:
        r = regions[int(rng.choice(len(regions), p=popularity))]
        if counts[r] < system.degree(r):  # cannot ask for more replicas than reachable sites
            counts[r] += 1
            arrivals.append(r)
    return SetCoverInstance(system, arrivals, name="cdn-replica-demand")


def coverage_view(instance, algorithm):
    """Probe: replica counts and worst per-region coverage off the finished run."""
    result = algorithm.result()
    demands = instance.demands()
    worst = min(
        (result.coverage[e] / k for e, k in demands.items() if k > 0), default=1.0
    )
    return {
        "sites_opened": result.num_sets,
        "cost": result.cost,
        "worst_region_coverage": worst,
        "fully_covered": result.satisfied,
    }


def main() -> None:
    system = build_cdn()
    instance = build_demand(system)
    print(instance.describe())

    demands = instance.demands()
    optimum = solve_set_multicover_ilp(system, demands, time_limit=30.0)
    greedy_offline = greedy_set_multicover(system, demands)
    print(
        f"Offline optimum opens {optimum.num_sets} sites (cost {optimum.cost:.0f}); "
        f"offline greedy opens {greedy_offline.num_sets}.\n"
    )

    engine = EngineConfig()
    algorithms = [
        (
            "Paper (reduction to admission control)",
            FixedSeedAlgorithmFactory("reduction", engine, 1, problem="setcover"),
        ),
        (
            "Paper (deterministic bicriteria, eps=0.2)",
            FixedSeedAlgorithmFactory(
                "bicriteria", engine, 0, (("eps", 0.2),), problem="setcover"
            ),
        ),
        (
            "Greedy on demand",
            FixedSeedAlgorithmFactory("greedy-density", engine, 0, problem="setcover"),
        ),
    ]
    runner = Runner()
    results = runner.run(
        RunSpec(
            problem="setcover",
            instance=instance,
            algorithm=factory,
            trials=1,
            offline="ilp",
            ilp_time_limit=30.0,
            probe=coverage_view,
            label=label,
        )
        for label, factory in algorithms
    )

    summary_rows = [
        {
            "algorithm": row.label,
            "online": row.online_cost,
            "offline": row.offline_cost,
            "ratio": row.ratio,
            "feasible": row.feasible,
        }
        for row in results
    ]
    coverage_rows = [
        {
            "algorithm": row.label,
            "sites_opened": row.extra["sites_opened"],
            "cost": row.extra["cost"],
            "worst_region_coverage": row.extra["worst_region_coverage"],
            "fully_covered": row.extra["fully_covered"],
        }
        for row in results
    ]

    print(format_table(summary_rows, title="Online replica placement vs offline optimum"))
    print()
    print(format_table(coverage_rows, title="Coverage detail (bicriteria may stop at (1-eps)k replicas)"))
    print(
        "\nThe reduction-based algorithm always reaches full coverage; the bicriteria algorithm "
        "trades a (1-eps) fraction of the replicas for a deterministic guarantee, exactly as in Section 5."
    )


if __name__ == "__main__":
    main()
