"""Streaming admission service: incremental arrivals, checkpoints, sharding.

This example shows the serving layer end to end:

1. open a long-lived :class:`StreamingSession` and feed it arrivals
   incrementally — single requests and micro-batches through the compiled
   fast path — the way a serving system sees traffic;
2. snapshot the session mid-stream to a versioned JSON checkpoint, "crash",
   restore from the checkpoint, and verify the resumed decision log is
   identical to an uninterrupted run;
3. partition a namespaced workload across independent per-shard sessions
   with a :class:`ShardedStreamRouter`, each shard with its own derived seed
   and its own checkpoint.

The same loop is available from the shell (with ``--resume`` across real
process boundaries):

    python -m repro serve --trace day1.jsonl --algorithm doubling \
        --checkpoint state.json --checkpoint-every 500 --log decisions.jsonl

Run with:  python examples/streaming_service.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.engine.streaming import ShardedStreamRouter, StreamingSession
from repro.workloads.admission_traffic import adversarial_mix_workload, bursty_workload


def main() -> None:
    # 1. A long-lived session over an unbounded stream.  Capacities are known
    #    up front (the paper's model); arrivals are not.
    instance = bursty_workload(num_edges=24, num_requests=300, capacity=4, random_state=11)
    requests = list(instance.requests)
    session = StreamingSession(
        instance.capacities, algorithm="doubling", backend="numpy", seed=5
    )
    first = session.submit(requests[0])  # one at a time ...
    session.submit_batch(requests[1:150])  # ... or micro-batched (compiled path)
    print(f"First decision: {first}")
    print(f"Mid-stream summary: {json.dumps(session.summary(), sort_keys=True)}\n")

    # 2. Checkpoint, "crash", restore, continue.  The checkpoint is plain
    #    versioned JSON: weights, admitted sets, RNG state, interning tables.
    checkpoint_path = Path(tempfile.gettempdir()) / "streaming_demo_checkpoint.json"
    session.save(checkpoint_path)
    del session  # the process "crashes" here

    resumed = StreamingSession.load(checkpoint_path)
    resumed.submit_batch(requests[150:])

    uninterrupted = StreamingSession(
        instance.capacities, algorithm="doubling", backend="numpy", seed=5
    )
    uninterrupted.submit_stream(iter(requests))
    same = resumed.decision_log() == uninterrupted.decision_log()
    print("Checkpoint at arrival 150 -> restore -> stream the rest.")
    print(f"Resumed decision log identical to an uninterrupted run: {same}\n")

    # 3. Shard a namespaced workload across independent sessions.  Edges like
    #    "b0:e3" namespace by prefix; every namespace maps deterministically
    #    to one shard, and each shard gets its own derived seed.
    mix = adversarial_mix_workload(num_edges=8, capacity=2, random_state=3)
    router = ShardedStreamRouter(mix.capacities, 3, algorithm="randomized", seed=7)
    router.submit_batch(list(mix.requests))
    summary = router.summary()
    print(f"Sharded {mix.num_requests} arrivals over {len(router.sessions())} live shards:")
    for shard, line in sorted(summary["shards"].items()):
        print(
            f"  shard {shard}: {line['processed']} arrivals, "
            f"rejection cost {line['rejection_cost']:.1f}"
        )
    print(
        "\nEach shard is an independent session with its own checkpoint, so "
        "capacity scales by adding shards — no shared state, no coordination."
    )

    # 4. The same serving path is one knob on the run-spec facade: a spec
    #    with mode="streaming" routes every trial through StreamingSession
    #    micro-batches, and the numbers match the batch/compiled modes
    #    exactly (pinned by tests/test_api_equivalence.py).
    from repro.api import Runner, RunSpec

    streamed = Runner().run(
        RunSpec(instance=instance, algorithm="doubling", backend="numpy",
                mode="streaming", trials=1, seed=5)
    )
    print(
        f"\nFacade streaming run: ratio {streamed.ratios()[0]:.3f} "
        f"(identical to mode='compiled' by construction)"
    )


if __name__ == "__main__":
    main()
