"""Adversarial showdown: where naive admission policies fall over.

Runs the library's adversarial workload suite (the constructions behind
experiment E8) against the paper's algorithm and every baseline — each pairing
one declarative :class:`~repro.api.spec.RunSpec` over the shared instance,
executed by the :class:`~repro.api.runner.Runner` through the compiled fast
path — printing one table per workload.  This is the quickest way to *see*
why preemption and the primal–dual weighting matter:

* ``cheap-then-expensive`` punishes algorithms that cannot preempt,
* ``long-vs-short`` punishes algorithms that refuse to sacrifice one long
  request for many short ones,
* ``benefit-trap`` shows a throughput-maximising policy rejecting far more
  cost than necessary.

Run with:  python examples/adversarial_showdown.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import FixedSeedAlgorithmFactory, Runner, RunSpec
from repro.engine import EngineConfig
from repro.workloads import (
    benefit_objective_trap,
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
)


def main() -> None:
    workloads = {
        "cheap-then-expensive": cheap_then_expensive_adversary(num_edges=10, capacity=2, expensive_cost=50.0),
        "long-vs-short": long_vs_short_adversary(num_edges=16, capacity=1),
        "benefit-trap": benefit_objective_trap(num_groups=8, group_size=5),
    }
    # (display label, registry key, pinned algorithm seed)
    engine = EngineConfig()
    algorithms = [
        ("Paper (doubling randomized)", "doubling", 2),
        ("RejectWhenFull", "reject-when-full", 0),
        ("KeepExpensive", "keep-expensive", 0),
        ("GreedySwap", "greedy-swap", 0),
        ("ThresholdPreemption", "threshold", 0),
        ("Throughput (AAP-style)", "exponential-benefit", 0),
    ]
    runner = Runner()

    for name, instance in workloads.items():
        # One instance is shared by every spec below; compilation is memoized
        # on it, so one compile serves all six runs.
        results = runner.run(
            RunSpec(
                instance=instance,
                algorithm=FixedSeedAlgorithmFactory(key, engine, seed),
                trials=1,
                offline="ilp",
                label=label,
            )
            for label, key, seed in algorithms
        )
        rows = [
            {
                "algorithm": row.label,
                "online": row.online_cost,
                "offline": row.offline_cost,
                "ratio": row.ratio,
                "feasible": row.feasible,
            }
            for row in results
        ]
        print(format_table(rows, title=f"Workload: {name} ({instance.describe()})"))
        print()


if __name__ == "__main__":
    main()
