"""Adversarial showdown: where naive admission policies fall over.

Runs the library's adversarial workload suite (the constructions behind
experiment E8) against the paper's algorithm and every baseline, printing one
table per workload.  This is the quickest way to *see* why preemption and the
primal–dual weighting matter:

* ``cheap-then-expensive`` punishes algorithms that cannot preempt,
* ``long-vs-short`` punishes algorithms that refuse to sacrifice one long
  request for many short ones,
* ``benefit-trap`` shows a throughput-maximising policy rejecting far more
  cost than necessary.

Run with:  python examples/adversarial_showdown.py
"""

from __future__ import annotations

from repro import DoublingAdmissionControl, run_admission
from repro.analysis import evaluate_admission_run, format_records
from repro.baselines import (
    ExponentialBenefitAdmission,
    GreedySwap,
    KeepExpensive,
    RejectWhenFull,
    ThresholdPreemption,
)
from repro.workloads import (
    benefit_objective_trap,
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
)


def main() -> None:
    workloads = {
        "cheap-then-expensive": cheap_then_expensive_adversary(num_edges=10, capacity=2, expensive_cost=50.0),
        "long-vs-short": long_vs_short_adversary(num_edges=16, capacity=1),
        "benefit-trap": benefit_objective_trap(num_groups=8, group_size=5),
    }
    factories = {
        "Paper (doubling randomized)": lambda inst: DoublingAdmissionControl.for_instance(inst, random_state=2),
        "RejectWhenFull": RejectWhenFull.for_instance,
        "KeepExpensive": KeepExpensive.for_instance,
        "GreedySwap": GreedySwap.for_instance,
        "ThresholdPreemption": ThresholdPreemption.for_instance,
        "Throughput (AAP-style)": ExponentialBenefitAdmission.for_instance,
    }

    for name, instance in workloads.items():
        records = []
        for label, factory in factories.items():
            algorithm = factory(instance)
            record = evaluate_admission_run(instance, run_admission(algorithm, instance))
            record.algorithm = label
            records.append(record)
        print(format_records(records, title=f"Workload: {name} ({instance.describe()})"))
        print()


if __name__ == "__main__":
    main()
