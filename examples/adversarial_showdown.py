"""Adversarial showdown: where naive admission policies fall over.

Runs the library's adversarial workload suite (the constructions behind
experiment E8) against the paper's algorithm and every baseline — all
resolved from the algorithm registry and run over the compiled instance —
printing one table per workload.  This is the quickest way to *see* why
preemption and the primal–dual weighting matter:

* ``cheap-then-expensive`` punishes algorithms that cannot preempt,
* ``long-vs-short`` punishes algorithms that refuse to sacrifice one long
  request for many short ones,
* ``benefit-trap`` shows a throughput-maximising policy rejecting far more
  cost than necessary.

Run with:  python examples/adversarial_showdown.py
"""

from __future__ import annotations

from repro.analysis import evaluate_admission_run, format_records
from repro.core import run_admission
from repro.engine import make_admission_algorithm
from repro.instances.compiled import compile_instance
from repro.workloads import (
    benefit_objective_trap,
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
)


def main() -> None:
    workloads = {
        "cheap-then-expensive": cheap_then_expensive_adversary(num_edges=10, capacity=2, expensive_cost=50.0),
        "long-vs-short": long_vs_short_adversary(num_edges=16, capacity=1),
        "benefit-trap": benefit_objective_trap(num_groups=8, group_size=5),
    }
    # (display label, registry key, builder kwargs)
    algorithms = [
        ("Paper (doubling randomized)", "doubling", {"random_state": 2}),
        ("RejectWhenFull", "reject-when-full", {}),
        ("KeepExpensive", "keep-expensive", {}),
        ("GreedySwap", "greedy-swap", {}),
        ("ThresholdPreemption", "threshold", {}),
        ("Throughput (AAP-style)", "exponential-benefit", {}),
    ]

    for name, instance in workloads.items():
        # One compilation is shared by every algorithm below.
        compiled = compile_instance(instance)
        records = []
        for label, key, kwargs in algorithms:
            algorithm = make_admission_algorithm(key, instance, **kwargs)
            record = evaluate_admission_run(
                instance, run_admission(algorithm, instance, compiled=compiled)
            )
            record.algorithm = label
            records.append(record)
        print(format_records(records, title=f"Workload: {name} ({instance.describe()})"))
        print()


if __name__ == "__main__":
    main()
