"""Scenario: an ISP backbone admitting video-conference circuits.

The introduction of the paper argues that for many operators rejections should
be *rare events*: customers notice a refused call much more than a slightly
slower one, so the operator wants to minimise the (weighted) number of refused
circuits rather than maximise raw throughput.

This example models a small ISP backbone (a ring of regions with a meshed
core), a day of circuit requests with business-hours hotspots and a mix of
cheap best-effort and expensive premium circuits, and compares:

* the paper's guess-and-double randomized algorithm,
* the throughput-maximising exponential-cost rule (AAP-style), and
* the natural preemptive greedy,

all against the exact offline optimum, each as one declarative
:class:`~repro.api.spec.RunSpec` over the explicit instance.  The operator's
detail columns (acceptances, rejected cost) come from a measurement probe
that inspects the finished algorithm inside the run.  The punchline mirrors
Section 1: the throughput-style rule accepts plenty of traffic yet rejects
far more *cost* than necessary, while the paper's algorithm tracks the
optimum within a polylog factor.

Run with:  python examples/isp_admission_control.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import FixedSeedAlgorithmFactory, Runner, RunSpec
from repro.engine import EngineConfig
from repro.instances.request import RequestSequence
from repro.network.graph import CapacitatedGraph
from repro.offline import solve_admission_ilp
from repro.utils.rng import as_generator
from repro.workloads.costs import bimodal_costs


def build_backbone() -> CapacitatedGraph:
    """A ring of 8 regional PoPs plus 2 core routers meshed to every PoP."""
    edges = []
    for k in range(8):
        edges.append((f"pop{k}", f"pop{(k + 1) % 8}", 4))
        edges.append((f"pop{(k + 1) % 8}", f"pop{k}", 4))
    for core in ("core0", "core1"):
        for k in range(8):
            edges.append((core, f"pop{k}", 6))
            edges.append((f"pop{k}", core, 6))
    return CapacitatedGraph(edges)


def build_day_of_traffic(graph: CapacitatedGraph, num_requests: int = 200, seed: int = 11):
    """Circuit requests between random PoPs; premium circuits cost 40x more."""
    rng = as_generator(seed)
    pops = [v for v in graph.vertices() if str(v).startswith("pop")]
    costs = bimodal_costs(num_requests, cheap=1.0, expensive=40.0, expensive_fraction=0.15, random_state=rng)
    requests = []
    for i in range(num_requests):
        src, dst = rng.choice(len(pops), size=2, replace=False)
        path = graph.shortest_path(pops[int(src)], pops[int(dst)])
        requests.append(graph.request_from_path(i, path, cost=float(costs[i])))
    return graph.build_instance(RequestSequence(requests), name="isp-backbone-day")


def operator_view(instance, algorithm):
    """Probe: the operator's counters off the finished algorithm."""
    result = algorithm.result()
    return {
        "accepted": len(result.accepted_ids),
        "rejected": result.num_rejections,
        "rejected_cost": result.rejection_cost,
    }


def main() -> None:
    graph = build_backbone()
    instance = build_day_of_traffic(graph)
    print(instance.describe())

    optimum = solve_admission_ilp(instance, time_limit=30.0)
    print(f"Offline optimum: reject {optimum.num_rejections} circuits, cost {optimum.cost:.1f}\n")

    engine = EngineConfig(backend="numpy")
    algorithms = {
        "Paper (doubling randomized)": FixedSeedAlgorithmFactory("doubling", engine, 3),
        "Throughput-maximising (AAP-style)": FixedSeedAlgorithmFactory(
            "exponential-benefit", engine, 0
        ),
        "Greedy preemptive": FixedSeedAlgorithmFactory("keep-expensive", engine, 0),
    }
    runner = Runner()
    results = runner.run(
        RunSpec(
            instance=instance,
            algorithm=factory,
            backend="numpy",
            trials=1,
            offline="ilp",
            ilp_time_limit=30.0,
            probe=operator_view,
            label=label,
        )
        for label, factory in algorithms.items()
    )

    summary_rows = [
        {
            "algorithm": row.label,
            "online": row.online_cost,
            "offline": row.offline_cost,
            "ratio": row.ratio,
            "feasible": row.feasible,
        }
        for row in results
    ]
    detail_rows = [
        {
            "algorithm": row.label,
            "accepted": row.extra["accepted"],
            "rejected": row.extra["rejected"],
            "rejected_cost": row.extra["rejected_cost"],
            "competitive_ratio": row.ratio,
        }
        for row in results
    ]

    print(format_table(summary_rows, title="Competitive ratios vs offline optimum"))
    print()
    print(format_table(detail_rows, title="Operator's view: acceptances vs rejected cost"))
    print(
        "\nNote how an algorithm can accept many circuits and still pay a large rejected cost: "
        "that is exactly the gap between the throughput objective and the rejection objective "
        "the paper is about."
    )


if __name__ == "__main__":
    main()
