"""Scenario: an ISP backbone admitting video-conference circuits.

The introduction of the paper argues that for many operators rejections should
be *rare events*: customers notice a refused call much more than a slightly
slower one, so the operator wants to minimise the (weighted) number of refused
circuits rather than maximise raw throughput.

This example models a small ISP backbone (a ring of regions with a meshed
core), a day of circuit requests with business-hours hotspots and a mix of
cheap best-effort and expensive premium circuits, and compares:

* the paper's guess-and-double randomized algorithm,
* the throughput-maximising exponential-cost rule (AAP-style), and
* the natural preemptive greedy,

all against the exact offline optimum.  The punchline mirrors Section 1: the
throughput-style rule accepts plenty of traffic yet rejects far more *cost*
than necessary, while the paper's algorithm tracks the optimum within a
polylog factor.

Run with:  python examples/isp_admission_control.py
"""

from __future__ import annotations

from repro.analysis import evaluate_admission_run, format_records, format_table
from repro.core import run_admission
from repro.engine import make_admission_algorithm
from repro.instances.compiled import compile_instance
from repro.instances.request import RequestSequence
from repro.network.graph import CapacitatedGraph
from repro.offline import solve_admission_ilp
from repro.utils.rng import as_generator
from repro.workloads.costs import bimodal_costs


def build_backbone() -> CapacitatedGraph:
    """A ring of 8 regional PoPs plus 2 core routers meshed to every PoP."""
    edges = []
    for k in range(8):
        edges.append((f"pop{k}", f"pop{(k + 1) % 8}", 4))
        edges.append((f"pop{(k + 1) % 8}", f"pop{k}", 4))
    for core in ("core0", "core1"):
        for k in range(8):
            edges.append((core, f"pop{k}", 6))
            edges.append((f"pop{k}", core, 6))
    return CapacitatedGraph(edges)


def build_day_of_traffic(graph: CapacitatedGraph, num_requests: int = 200, seed: int = 11):
    """Circuit requests between random PoPs; premium circuits cost 40x more."""
    rng = as_generator(seed)
    pops = [v for v in graph.vertices() if str(v).startswith("pop")]
    costs = bimodal_costs(num_requests, cheap=1.0, expensive=40.0, expensive_fraction=0.15, random_state=rng)
    requests = []
    for i in range(num_requests):
        src, dst = rng.choice(len(pops), size=2, replace=False)
        path = graph.shortest_path(pops[int(src)], pops[int(dst)])
        requests.append(graph.request_from_path(i, path, cost=float(costs[i])))
    return graph.build_instance(RequestSequence(requests), name="isp-backbone-day")


def main() -> None:
    graph = build_backbone()
    instance = build_day_of_traffic(graph)
    print(instance.describe())

    optimum = solve_admission_ilp(instance, time_limit=30.0)
    print(f"Offline optimum: reject {optimum.num_rejections} circuits, cost {optimum.cost:.1f}\n")

    # Algorithms resolved from the engine registry; one shared compilation
    # streams every run through the array-native fast path.
    algorithms = {
        "Paper (doubling randomized)": make_admission_algorithm(
            "doubling", instance, random_state=3, backend="numpy"
        ),
        "Throughput-maximising (AAP-style)": make_admission_algorithm(
            "exponential-benefit", instance
        ),
        "Greedy preemptive": make_admission_algorithm("keep-expensive", instance),
    }
    compiled = compile_instance(instance)
    records = []
    detail_rows = []
    for label, algorithm in algorithms.items():
        result = run_admission(algorithm, instance, compiled=compiled)
        record = evaluate_admission_run(instance, result, ilp_time_limit=30.0)
        record.algorithm = label
        records.append(record)
        detail_rows.append(
            {
                "algorithm": label,
                "accepted": len(result.accepted_ids),
                "rejected": result.num_rejections,
                "rejected_cost": result.rejection_cost,
                "competitive_ratio": record.ratio,
            }
        )

    print(format_records(records, title="Competitive ratios vs offline optimum"))
    print()
    print(format_table(detail_rows, title="Operator's view: acceptances vs rejected cost"))
    print(
        "\nNote how an algorithm can accept many circuits and still pay a large rejected cost: "
        "that is exactly the gap between the throughput objective and the rejection objective "
        "the paper is about."
    )


if __name__ == "__main__":
    main()
