"""Quickstart: admission control to minimize rejections on a small network.

This example builds a small capacitated network, generates a congested request
sequence, runs the paper's randomized online algorithm (with guess-and-double
estimation of OPT) next to a simple baseline, and compares both against the
exact offline optimum.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DoublingAdmissionControl, run_admission
from repro.analysis import evaluate_admission_run, format_records
from repro.baselines import RejectWhenFull
from repro.network.topologies import grid_graph
from repro.offline import solve_admission_ilp
from repro.workloads import hotspot_workload, pareto_costs


def main() -> None:
    # 1. A 4x4 grid network where every link can carry 3 simultaneous circuits.
    graph = grid_graph(rows=4, cols=4, capacity=3)
    print(f"Network: {graph.num_vertices} routers, {graph.num_edges} directed links, capacity 3 each")

    # 2. A congested workload: 120 circuit requests, most of them squeezed
    #    through two hotspot links, with heavy-tailed rejection penalties.
    instance = hotspot_workload(
        graph,
        num_requests=120,
        num_hotspots=2,
        hotspot_fraction=0.6,
        cost_sampler=lambda count, rng: pareto_costs(count, shape=1.5, random_state=rng),
        random_state=7,
        name="quickstart-hotspot",
    )
    print(instance.describe())

    # 3. The offline optimum (what an omniscient operator would have rejected).
    optimum = solve_admission_ilp(instance)
    print(f"Offline optimum rejects {optimum.num_rejections} requests at cost {optimum.cost:.2f}\n")

    # 4. The paper's online algorithm vs the naive baseline.
    records = []
    paper_algo = DoublingAdmissionControl.for_instance(instance, random_state=0)
    records.append(evaluate_admission_run(instance, run_admission(paper_algo, instance)))

    baseline = RejectWhenFull.for_instance(instance)
    records.append(evaluate_admission_run(instance, run_admission(baseline, instance)))

    print(format_records(records, title="Online algorithms vs offline optimum"))
    print(
        "\nThe 'ratio' column is the competitive ratio; Theorem 3 guarantees it stays "
        "O(log^2(mc)) for the paper's algorithm no matter how adversarial the workload is."
    )


if __name__ == "__main__":
    main()
