"""Quickstart: admission control to minimize rejections on a small network.

This example is the one-screen tour of the unified run-spec API: declare
*what* to run as a frozen :class:`~repro.api.spec.RunSpec` (scenario x
algorithm x backend x execution mode x trials/seed), hand it to the
:class:`~repro.api.runner.Runner`, and read the uniform
:class:`~repro.api.results.ResultSet` back — the same front door the CLI,
the sweeps and the experiment harness use.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Runner, RunSpec


def main() -> None:
    runner = Runner()

    # 1. One declarative run: the "hotspot" scenario (a 4x4 grid network where
    #    most circuits squeeze through two hotspot links), the paper's
    #    guess-and-double algorithm, the vectorized backend, the compiled
    #    fast path, five independent trials.  Validation is eager: a typo in
    #    any key fails here, listing the known keys.
    spec = RunSpec(
        scenario="hotspot",
        scenario_params={"num_requests": 120},
        algorithm="doubling",
        backend="numpy",
        mode="compiled",
        trials=5,
        seed=7,
        offline="ilp",  # compare against the exact offline optimum
    )
    results = runner.run(spec)
    print(results.table(title="Paper's algorithm vs the exact offline optimum"))

    # 2. The same knobs, swept: RunSpec.grid expands scenarios x algorithms
    #    (x backends x modes) with stable per-cell seeds, so adding a scenario
    #    never changes another's numbers.
    grid = RunSpec.grid(
        ["hotspot", "cheap_expensive"],
        ["doubling", "reject-when-full"],
        backends=["numpy"],
        trials=3,
        seed=7,
    )
    sweep = runner.run(grid)
    print()
    print(sweep.comparison_table())

    # 3. Results are tidy rows (one trial per row) with a JSON/JSONL
    #    round-trip — aggregation is a group-by, not a bespoke result shape.
    worst = max(sweep, key=lambda row: row.ratio)
    print(
        f"\nWorst trial: {worst.algorithm} on {worst.source} "
        f"(ratio {worst.ratio:.2f}, feasible={worst.feasible})"
    )
    print(
        "\nThe 'ratio' columns are competitive ratios; Theorem 3 guarantees the "
        "paper's algorithm stays O(log^2(mc)) no matter how adversarial the workload is."
    )


if __name__ == "__main__":
    main()
