"""Quickstart: admission control to minimize rejections on a small network.

This example builds a small capacitated network, generates a congested request
sequence from the scenario registry, runs the paper's randomized online
algorithm (with guess-and-double estimation of OPT) next to a simple baseline
— both resolved by registry key and streamed through the engine's compiled
fast path — and compares them against the exact offline optimum.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import evaluate_admission_run, format_records
from repro.engine import EngineConfig, SimulationEngine
from repro.offline import solve_admission_ilp
from repro.scenarios import build_scenario


def main() -> None:
    # 1. A congested workload from the scenario registry: a 4x4 grid network
    #    where most circuits squeeze through two hotspot links, with
    #    heavy-tailed rejection penalties.
    instance = build_scenario("hotspot", random_state=7, num_requests=120)
    print(f"Network workload: {instance.describe()}")

    # 2. The offline optimum (what an omniscient operator would have rejected).
    optimum = solve_admission_ilp(instance)
    print(f"Offline optimum rejects {optimum.num_rejections} requests at cost {optimum.cost:.2f}\n")

    # 3. The paper's online algorithm vs the naive baseline, resolved from the
    #    algorithm registry and streamed through the compiled (array-native)
    #    fast path by the engine.
    engine = SimulationEngine(EngineConfig(backend="numpy"))
    records = []
    for key in ("doubling", "reject-when-full"):
        run = engine.run_admission(key, instance, random_state=0)
        records.append(evaluate_admission_run(instance, run.result))

    print(format_records(records, title="Online algorithms vs offline optimum"))
    print(
        "\nThe 'ratio' column is the competitive ratio; Theorem 3 guarantees it stays "
        "O(log^2(mc)) for the paper's algorithm no matter how adversarial the workload is."
    )


if __name__ == "__main__":
    main()
