"""Tests for set-cover workload generators (random + adversarial)."""

import pytest

from repro.baselines import CheapestSetOnline
from repro.instances.setcover import SetCoverInstance
from repro.offline import solve_set_multicover_ilp
from repro.workloads import (
    adaptive_uncovered_adversary,
    disjoint_blocks_instance,
    nested_family_instance,
    random_arrivals,
    random_set_system,
    regular_set_system,
    repetition_heavy_arrivals,
    repetition_stress_instance,
)


class TestRandomSetSystems:
    def test_every_element_covered(self):
        system = random_set_system(30, 8, 0.1, random_state=0)
        assert system.num_elements == 30
        assert all(system.degree(e) >= 1 for e in system.elements())

    def test_no_empty_sets(self):
        system = random_set_system(5, 10, 0.0, random_state=1)
        assert all(len(system.members(sid)) >= 1 for sid in system.set_ids())

    def test_costs_applied(self):
        system = random_set_system(10, 4, 0.5, costs=[1, 2, 3, 4], random_state=0)
        assert system.cost("S3") == 4.0

    def test_costs_length_checked(self):
        with pytest.raises(ValueError):
            random_set_system(10, 4, 0.5, costs=[1, 2], random_state=0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_set_system(0, 5)
        with pytest.raises(ValueError):
            random_set_system(5, 5, membership_probability=1.5)

    def test_regular_system_degrees(self):
        system = regular_set_system(20, 10, element_degree=3, random_state=0)
        assert all(system.degree(e) == 3 for e in system.elements())

    def test_regular_system_validation(self):
        with pytest.raises(ValueError):
            regular_set_system(10, 5, element_degree=6)


class TestArrivalGenerators:
    def test_random_arrivals_feasible(self):
        system = random_set_system(20, 8, 0.3, random_state=2)
        arrivals = random_arrivals(system, 60, random_state=2)
        instance = SetCoverInstance(system, arrivals)
        assert instance.is_feasible()

    def test_random_arrivals_respect_max_repetitions(self):
        system = random_set_system(10, 8, 0.5, random_state=3)
        arrivals = random_arrivals(system, 40, max_repetitions=1, random_state=3)
        demands = SetCoverInstance(system, arrivals).demands()
        assert all(d <= 1 for d in demands.values())

    def test_repetition_heavy_arrivals_feasible_and_repeating(self):
        system = random_set_system(20, 10, 0.4, random_state=4)
        arrivals = repetition_heavy_arrivals(system, random_state=4)
        instance = SetCoverInstance(system, arrivals)
        assert instance.is_feasible()
        assert instance.max_repetitions() >= 2

    def test_repetition_fraction_validated(self):
        system = random_set_system(5, 3, 0.5, random_state=0)
        with pytest.raises(ValueError):
            repetition_heavy_arrivals(system, repetition_fraction=0.0)

    def test_random_setcover_instance_convenience(self, random_cover_instance):
        assert random_cover_instance.system.num_elements == 20
        assert random_cover_instance.is_feasible()


class TestAdversarialSetCover:
    def test_nested_family_opt_is_one(self):
        instance = nested_family_instance(6)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(1.0)

    def test_nested_family_validation(self):
        with pytest.raises(ValueError):
            nested_family_instance(0)

    def test_disjoint_blocks_opt_buys_blocks(self):
        instance = disjoint_blocks_instance(4, 5, blocks_requested=2, random_state=0)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(2.0)

    def test_repetition_stress_requires_all_sets(self):
        instance = repetition_stress_instance(degree=5)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(5.0)

    def test_adaptive_adversary_plays_feasible_sequences(self):
        system = random_set_system(15, 8, 0.3, random_state=5)
        instance, algorithm = adaptive_uncovered_adversary(
            system, lambda s: CheapestSetOnline(s), num_arrivals=25, random_state=5
        )
        assert instance.is_feasible()
        assert instance.num_arrivals <= 25
        # The algorithm that played the sequence satisfied every demand.
        for element, demand in instance.demands().items():
            assert algorithm.coverage(element) >= demand

    def test_adaptive_adversary_without_repetitions(self):
        system = random_set_system(10, 6, 0.4, random_state=6)
        instance, _ = adaptive_uncovered_adversary(
            system, lambda s: CheapestSetOnline(s), num_arrivals=50, allow_repetitions=False, random_state=6
        )
        assert instance.max_repetitions() <= 1
