"""End-to-end integration tests tying workloads, algorithms, offline solvers and analysis together."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    BicriteriaOnlineSetCover,
    DoublingAdmissionControl,
    OnlineSetCoverViaAdmissionControl,
    RandomizedAdmissionControl,
    run_admission,
    run_setcover,
)
from repro.analysis import (
    check_admission_result,
    evaluate_admission_run,
    evaluate_setcover_run,
    run_admission_trials,
)
from repro.baselines import KeepExpensive, RejectWhenFull
from repro.network.topologies import grid_graph, line_graph
from repro.offline import solve_admission_ilp, solve_set_multicover_ilp
from repro.utils.mathx import log2_guarded
from repro.workloads import (
    hotspot_workload,
    line_interval_workload,
    overloaded_edge_adversary,
    random_path_workload,
    random_setcover_instance,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestAdmissionPipeline:
    def test_grid_hotspot_full_pipeline(self):
        graph = grid_graph(3, 3, capacity=2)
        instance = hotspot_workload(graph, 60, num_hotspots=2, hotspot_fraction=0.7, random_state=1)
        record = evaluate_admission_run(
            instance,
            run_admission(DoublingAdmissionControl.for_instance(instance, random_state=1), instance),
        )
        assert record.feasible
        assert record.ratio < record.bound.value * 4  # very generous polylog envelope

    def test_line_interval_pipeline(self):
        instance = line_interval_workload(12, 50, capacity=2, random_state=2)
        opt = solve_admission_ilp(instance)
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=2)
        result = run_admission(algo, instance)
        assert check_admission_result(instance, result).ok
        if opt.cost > 0:
            assert result.rejection_cost / opt.cost <= 8 * log2_guarded(instance.num_edges) * log2_guarded(
                instance.max_capacity
            )

    def test_paper_beats_nonpreemptive_on_average(self):
        """On congested random paths, the paper's algorithm should not be worse
        than the non-preemptive baseline by more than a small factor, and it
        should beat it on the weighted adversarial trap (tested elsewhere)."""
        graph = line_graph(10, capacity=1)
        instance = random_path_workload(graph, 40, random_state=3)
        paper = run_admission(DoublingAdmissionControl.for_instance(instance, random_state=3), instance)
        naive = run_admission(RejectWhenFull.for_instance(instance), instance)
        assert paper.rejection_cost <= 3 * max(naive.rejection_cost, 1.0) + 3

    def test_trials_runner_end_to_end(self):
        summary = run_admission_trials(
            instance_factory=lambda rng: overloaded_edge_adversary(10, 2, random_state=rng),
            algorithm_factory=lambda inst, rng: KeepExpensive.for_instance(inst),
            num_trials=3,
            random_state=4,
            label="integration",
        )
        assert summary.num_trials == 3
        assert summary.all_feasible()


class TestSetCoverPipeline:
    def test_reduction_and_bicriteria_on_same_instance(self):
        instance = random_setcover_instance(30, 14, 55, random_state=5)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())

        reduction = OnlineSetCoverViaAdmissionControl(instance.system, random_state=5)
        red_result = run_setcover(reduction, instance)
        red_record = evaluate_setcover_run(instance, red_result)
        assert red_record.feasible
        assert red_result.cost >= opt.cost - 1e-9

        bicriteria = BicriteriaOnlineSetCover(instance.system, eps=0.2)
        bic_result = run_setcover(bicriteria, instance)
        bic_record = evaluate_setcover_run(instance, bic_result, bicriteria_bound=True)
        assert bic_record.feasible  # bicriteria-satisfied counts as feasible

    def test_online_cost_at_least_offline(self):
        instance = random_setcover_instance(20, 10, 35, random_state=6)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        solver = OnlineSetCoverViaAdmissionControl(instance.system, random_state=6)
        result = run_setcover(solver, instance)
        assert result.cost >= opt.cost - 1e-9


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "adversarial_showdown.py"],
)
class TestExamplesRun:
    def test_example_executes(self, script):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip()
