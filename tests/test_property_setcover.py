"""Property-based tests (hypothesis) for the set-cover algorithms.

Properties:

* the bicriteria algorithm always meets its (1 - eps) k coverage target, never
  lets the potential exceed n^2, and never increases it during an augmentation;
* the reduction-based solver always produces a full multi-cover;
* the offline greedy / ILP / LP obey the expected cost ordering
  (LP <= ILP <= greedy <= buy-everything).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bicriteria import BicriteriaOnlineSetCover
from repro.core.protocols import run_setcover
from repro.core.setcover_reduction import OnlineSetCoverViaAdmissionControl
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.offline import (
    greedy_set_multicover,
    solve_set_multicover_ilp,
    solve_set_multicover_lp,
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def setcover_instances(draw, max_elements: int = 8, max_sets: int = 6, max_arrivals: int = 15):
    """Random small set systems plus feasible arrival sequences with repetitions."""
    num_elements = draw(st.integers(min_value=1, max_value=max_elements))
    num_sets = draw(st.integers(min_value=1, max_value=max_sets))
    elements = list(range(num_elements))
    sets = {}
    for s in range(num_sets):
        size = draw(st.integers(min_value=1, max_value=num_elements))
        members = draw(
            st.lists(st.sampled_from(elements), min_size=size, max_size=size, unique=True)
        )
        sets[f"S{s}"] = members
    # Guarantee every element is in at least one set so arrivals can be feasible.
    for j in elements:
        if not any(j in members for members in sets.values()):
            owner = draw(st.sampled_from(sorted(sets)))
            sets[owner] = list(set(sets[owner]) | {j})
    system = SetSystem(sets)

    num_arrivals = draw(st.integers(min_value=0, max_value=max_arrivals))
    counts = {j: 0 for j in elements}
    arrivals = []
    for _ in range(num_arrivals):
        candidates = [j for j in elements if counts[j] < system.degree(j)]
        if not candidates:
            break
        j = draw(st.sampled_from(candidates))
        counts[j] += 1
        arrivals.append(j)
    return SetCoverInstance(system, arrivals, name="hypothesis")


class TestBicriteriaProperties:
    @SETTINGS
    @given(instance=setcover_instances(), eps=st.sampled_from([0.1, 0.25, 0.5]))
    def test_coverage_target_met_at_every_step(self, instance, eps):
        algo = BicriteriaOnlineSetCover(instance.system, eps=eps)
        demands = {}
        for element in instance.arrivals:
            algo.process_element(element)
            demands[element] = demands.get(element, 0) + 1
            for e, k in demands.items():
                assert algo.coverage(e) >= (1 - eps) * k - 1e-9

    @SETTINGS
    @given(instance=setcover_instances(), eps=st.sampled_from([0.1, 0.3]))
    def test_potential_invariants(self, instance, eps):
        algo = BicriteriaOnlineSetCover(instance.system, eps=eps)
        run_setcover(algo, instance)
        assert algo.max_potential_seen <= max(algo.n, 2) ** 2 + 1e-6
        for trace in algo.traces:
            assert trace.potential_after <= trace.potential_before * (1 + 1e-9) + 1e-9
            assert len(trace.sets_from_selection) <= algo.selection_rounds

    @SETTINGS
    @given(instance=setcover_instances())
    def test_cost_never_exceeds_whole_family(self, instance):
        algo = BicriteriaOnlineSetCover(instance.system, eps=0.2)
        run_setcover(algo, instance)
        assert algo.cost() <= instance.system.total_cost() + 1e-9


class TestReductionProperties:
    @SETTINGS
    @given(instance=setcover_instances(), seed=st.integers(min_value=0, max_value=10**6))
    def test_reduction_always_satisfies_demands(self, instance, seed):
        solver = OnlineSetCoverViaAdmissionControl(instance.system, random_state=seed)
        result = run_setcover(solver, instance)
        for element, demand in instance.demands().items():
            assert result.coverage[element] >= demand
        assert result.extra["admission_feasible"]


class TestOfflineOrderingProperties:
    @SETTINGS
    @given(instance=setcover_instances())
    def test_lp_ilp_greedy_ordering(self, instance):
        demands = instance.demands()
        lp = solve_set_multicover_lp(instance.system, demands)
        ilp = solve_set_multicover_ilp(instance.system, demands)
        greedy = greedy_set_multicover(instance.system, demands)
        assert lp.cost <= ilp.cost + 1e-6
        assert ilp.cost <= greedy.cost + 1e-6
        assert greedy.cost <= instance.system.total_cost() + 1e-9

    @SETTINGS
    @given(instance=setcover_instances())
    def test_ilp_solution_is_feasible(self, instance):
        demands = instance.demands()
        solution = solve_set_multicover_ilp(instance.system, demands)
        for element, demand in demands.items():
            covering = instance.system.sets_containing(element) & solution.chosen
            assert len(covering) >= demand
