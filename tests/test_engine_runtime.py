"""Tests for the SimulationEngine runtime (builds, streaming, batching)."""

import pytest

from repro.core.protocols import run_admission, run_setcover
from repro.core.randomized import RandomizedAdmissionControl
from repro.engine.config import EngineConfig
from repro.engine.runtime import SimulationEngine
from repro.instances.canonical import small_set_cover, star_congestion


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "python"
        assert config.jobs == 1
        assert config.batching == "none"

    def test_resolve_accepts_backend_name(self):
        assert EngineConfig.resolve("numpy").backend == "numpy"
        assert EngineConfig.resolve(None) == EngineConfig()
        config = EngineConfig(jobs=4)
        assert EngineConfig.resolve(config) is config

    def test_resolve_rejects_garbage(self):
        with pytest.raises(TypeError):
            EngineConfig.resolve(42)

    def test_invalid_batching_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(batching="bogus")

    def test_effective_jobs(self):
        assert EngineConfig(jobs=3).effective_jobs == 3
        assert EngineConfig(jobs=0).effective_jobs >= 1


class TestSimulationEngineAdmission:
    def test_registry_key_build_matches_direct_run(self):
        instance = star_congestion(leaves=6, capacity=2)
        engine = SimulationEngine()
        run = engine.run_admission("randomized", instance, random_state=0)
        direct = run_admission(
            RandomizedAdmissionControl.for_instance(instance, random_state=0), instance
        )
        assert run.result.rejection_cost == direct.rejection_cost
        assert run.result.accepted_ids == direct.accepted_ids
        assert run.num_arrivals == len(instance.requests)
        assert run.seconds >= 0.0
        assert run.backend == "python"

    def test_prebuilt_algorithm_passes_through(self):
        instance = star_congestion(leaves=5, capacity=2)
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=1)
        engine = SimulationEngine()
        run = engine.run_admission(algo, instance)
        assert run.algorithm == "RandomizedAdmissionControl"

    def test_numpy_backend_threaded_through(self):
        instance = star_congestion(leaves=6, capacity=2)
        engine = SimulationEngine(EngineConfig(backend="numpy"))
        run = engine.run_admission("randomized", instance, random_state=0)
        assert run.backend == "numpy"
        reference = SimulationEngine().run_admission("randomized", instance, random_state=0)
        assert run.result.rejection_cost == pytest.approx(
            reference.result.rejection_cost, abs=1e-9
        )

    def test_batching_none_streams_singletons(self):
        instance = star_congestion(leaves=4, capacity=2)
        run = SimulationEngine().run_admission("reject-when-full", instance)
        assert run.num_batches == run.num_arrivals
        assert all(size == 1 for size in run.batch_sizes)

    def test_batching_by_tag_groups_consecutive_arrivals(self):
        from repro.core.setcover_reduction import admission_instance_from_setcover

        sc_instance = small_set_cover()
        reduced = admission_instance_from_setcover(sc_instance)
        engine = SimulationEngine(EngineConfig(batching="tag"))
        run = engine.run_admission("reject-when-full", reduced)
        # Phase-1 ("set") and phase-2 ("element") requests form two blocks.
        assert run.num_batches == 2
        assert run.num_arrivals == len(reduced.requests)


class TestSimulationEngineSetCover:
    def test_registry_key_runs_setcover(self):
        instance = small_set_cover()
        run = SimulationEngine().run_setcover("bicriteria", instance, eps=0.3)
        direct_result = run_setcover(
            SimulationEngine().build_setcover("bicriteria", instance, eps=0.3), instance
        )
        assert run.result.cost == pytest.approx(direct_result.cost)
        assert run.num_arrivals == len(instance.arrivals)
