"""Tests for the online baselines (admission control and set cover)."""

import pytest

from repro.analysis.invariants import check_admission_result
from repro.baselines import (
    CheapestSetOnline,
    ExponentialBenefitAdmission,
    GreedyDensityOnline,
    GreedySwap,
    KeepExpensive,
    RandomSetOnline,
    RejectWhenFull,
    ThresholdPreemption,
)
from repro.core.protocols import InfeasibleArrivalError, run_admission, run_setcover
from repro.instances.setcover import SetSystem
from repro.offline import solve_admission_ilp
from repro.workloads import (
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
    overloaded_edge_adversary,
)

ADMISSION_BASELINES = [RejectWhenFull, KeepExpensive, GreedySwap, ThresholdPreemption, ExponentialBenefitAdmission]


class TestAdmissionBaselinesFeasibility:
    @pytest.mark.parametrize("factory", ADMISSION_BASELINES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_always_feasible(self, factory, seed):
        instance = overloaded_edge_adversary(10, 2, num_hot_edges=2, random_state=seed)
        algo = factory.for_instance(instance)
        result = run_admission(algo, instance)
        assert result.feasible
        assert check_admission_result(instance, result).ok

    @pytest.mark.parametrize("factory", ADMISSION_BASELINES)
    def test_no_rejections_without_congestion(self, factory, free_instance):
        algo = factory.for_instance(free_instance)
        result = run_admission(algo, free_instance)
        assert result.rejection_cost == 0.0

    @pytest.mark.parametrize("factory", ADMISSION_BASELINES)
    def test_weighted_instances_supported(self, factory, weighted_instance):
        algo = factory.for_instance(weighted_instance)
        result = run_admission(algo, weighted_instance)
        assert result.feasible


class TestRejectWhenFull:
    def test_never_preempts(self, adversarial_instance):
        algo = RejectWhenFull.for_instance(adversarial_instance)
        result = run_admission(algo, adversarial_instance)
        assert not result.preempted_ids

    def test_pays_expensive_on_cheap_then_expensive(self):
        instance = cheap_then_expensive_adversary(4, 1, expensive_cost=10.0)
        opt = solve_admission_ilp(instance)
        algo = RejectWhenFull.for_instance(instance)
        result = run_admission(algo, instance)
        assert result.rejection_cost == pytest.approx(10.0 * opt.cost)


class TestKeepExpensive:
    def test_optimal_on_cheap_then_expensive(self):
        instance = cheap_then_expensive_adversary(4, 2, expensive_cost=10.0)
        opt = solve_admission_ilp(instance)
        algo = KeepExpensive.for_instance(instance)
        result = run_admission(algo, instance)
        assert result.rejection_cost == pytest.approx(opt.cost)

    def test_keeps_latest_on_long_vs_short(self):
        instance = long_vs_short_adversary(6, capacity=1)
        algo = KeepExpensive.for_instance(instance)
        result = run_admission(algo, instance)
        # The long request (id 0) gets preempted as soon as a short one conflicts.
        assert 0 in result.preempted_ids | result.rejected_ids


class TestGreedySwap:
    def test_swaps_only_when_profitable(self, weighted_instance):
        algo = GreedySwap.for_instance(weighted_instance)
        result = run_admission(algo, weighted_instance)
        # Expensive request arrives first; cheap one should simply be rejected.
        assert result.rejection_cost == pytest.approx(1.0)

    def test_accepts_expensive_after_cheap(self):
        instance = cheap_then_expensive_adversary(2, 1, expensive_cost=9.0)
        algo = GreedySwap.for_instance(instance)
        result = run_admission(algo, instance)
        assert result.rejection_cost == pytest.approx(solve_admission_ilp(instance).cost)


class TestThresholdPreemption:
    def test_threshold_factor_default_sqrt_m(self, adversarial_instance):
        algo = ThresholdPreemption.for_instance(adversarial_instance)
        assert algo.threshold_factor == pytest.approx(adversarial_instance.num_edges**0.5)

    def test_threshold_factor_validated(self, star_instance):
        with pytest.raises(ValueError):
            ThresholdPreemption(star_instance.capacities, threshold_factor=0.5)

    def test_preempts_only_much_cheaper(self):
        instance = cheap_then_expensive_adversary(1, 1, expensive_cost=100.0)
        algo = ThresholdPreemption.for_instance(instance, threshold_factor=10.0)
        result = run_admission(algo, instance)
        # The 100-cost request displaces the cheap one (100 >= 10 * 1).
        assert result.rejection_cost == pytest.approx(1.0)

    def test_does_not_preempt_similar_cost(self):
        instance = cheap_then_expensive_adversary(1, 1, expensive_cost=2.0)
        algo = ThresholdPreemption.for_instance(instance, threshold_factor=10.0)
        result = run_admission(algo, instance)
        assert result.rejection_cost == pytest.approx(2.0)


class TestExponentialBenefit:
    def test_parameter_validation(self, star_instance):
        with pytest.raises(ValueError):
            ExponentialBenefitAdmission(star_instance.capacities, mu=1.0)
        with pytest.raises(ValueError):
            ExponentialBenefitAdmission(star_instance.capacities, scale=0.0)

    def test_price_increases_with_load(self, star_instance):
        algo = ExponentialBenefitAdmission.for_instance(star_instance)
        request = star_instance.requests[0]
        before = algo.path_price(request)
        algo.process(request)
        after = algo.path_price(star_instance.requests[1])
        assert after >= before

    def test_rejects_more_cost_than_needed_on_benefit_trap(self):
        from repro.workloads import benefit_objective_trap

        instance = benefit_objective_trap(num_groups=6, group_size=5, capacity=1)
        opt = solve_admission_ilp(instance)
        algo = ExponentialBenefitAdmission.for_instance(instance, mu=1e6)
        result = run_admission(algo, instance)
        assert result.rejection_cost >= opt.cost


SETCOVER_BASELINES = [CheapestSetOnline, GreedyDensityOnline, RandomSetOnline]


class TestSetCoverBaselines:
    @pytest.mark.parametrize("factory", SETCOVER_BASELINES)
    def test_demands_satisfied(self, factory, random_cover_instance):
        algo = factory.for_instance(random_cover_instance)
        result = run_setcover(algo, random_cover_instance)
        assert result.satisfied

    @pytest.mark.parametrize("factory", SETCOVER_BASELINES)
    def test_repetitions_covered_by_distinct_sets(self, factory, repetition_instance):
        algo = factory.for_instance(repetition_instance)
        result = run_setcover(algo, repetition_instance)
        covering = repetition_instance.system.sets_containing(1) & result.chosen_sets
        assert len(covering) >= 3

    def test_cheapest_prefers_cheap_sets(self):
        system = SetSystem({"cheap": {1}, "costly": {1}}, {"cheap": 1.0, "costly": 5.0})
        algo = CheapestSetOnline(system)
        algo.process_element(1)
        assert algo.chosen_sets() == frozenset({"cheap"})

    def test_greedy_density_prefers_covering_pending_demand(self):
        system = SetSystem({"wide": {1, 2, 3}, "narrow": {1}})
        algo = GreedyDensityOnline(system)
        algo.process_element(1)
        assert "wide" in algo.chosen_sets()

    def test_infeasible_demand_raises(self):
        system = SetSystem({"A": {1}})
        algo = CheapestSetOnline(system)
        algo.process_element(1)
        with pytest.raises(InfeasibleArrivalError):
            algo.process_element(1)

    def test_random_baseline_reproducible(self, random_cover_instance):
        costs = []
        for _ in range(2):
            algo = RandomSetOnline(random_cover_instance.system, random_state=3)
            result = run_setcover(algo, random_cover_instance)
            costs.append(result.cost)
        assert costs[0] == costs[1]
