"""Tests for the network admission service (:mod:`repro.service`).

Four layers, mirroring the package:

* config — ``ServiceConfig`` validates eagerly with exact, actionable
  messages (the ``RunSpec`` contract applied to the service);
* wire — the versioned frame codec strictly rejects what it cannot speak;
* health — the monitor classifies shards from ``shard_stats()`` snapshots;
* end to end — an embedded :class:`~repro.service.ServiceThread` (and, for
  the SIGTERM path, a real ``repro serve --listen`` subprocess) produces a
  decision log byte-identical to the in-process engine over the same
  arrivals: the network path never changes a number (ARCHITECTURE.md
  invariant 10).
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys

import pytest

from repro.engine.registry import UnknownKeyError
from repro.engine.streaming import StreamingSession
from repro.instances.serialize import load_admission_trace
from repro.scenarios.trace import record_trace, stream_trace
from repro.service import (
    SERVICE_SCHEMA,
    AdmissionClient,
    HealthMonitor,
    ServiceConfig,
    ServiceConfigError,
    ServiceError,
    ServiceThread,
    WireFormatError,
    decode_frame,
    encode_frame,
    run_loadtest,
)
from repro.service.config import parse_address
from repro.service.loadtest import percentile
from repro.workloads.admission_traffic import adversarial_mix_workload

BACKENDS = ["python", "numpy"]


@pytest.fixture
def trace_path(tmp_path):
    """A recorded namespaced adversarial trace (69 arrivals, 8 edges)."""
    path = tmp_path / "trace.jsonl"
    record_trace(adversarial_mix_workload(num_edges=8, capacity=2, random_state=7), path)
    return path


def network_config(trace_path, **overrides):
    defaults = dict(
        trace=trace_path, listen="127.0.0.1:0", algorithm="fractional", seed=5
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestServiceConfig:
    def test_defaults_normalize(self, trace_path):
        config = ServiceConfig(trace=trace_path)
        assert config.trace == str(trace_path)
        assert not config.is_network
        assert config.num_shards == 1
        assert config.name == f"serve:{trace_path.stem}"

    def test_workers_normalize_to_shards(self, trace_path):
        assert ServiceConfig(trace=trace_path, workers=3).num_shards == 3
        assert ServiceConfig(trace=trace_path, shards=4).num_shards == 4

    def test_from_kwargs_rejects_unknown_fields(self, trace_path):
        with pytest.raises(ServiceConfigError) as err:
            ServiceConfig.from_kwargs(trace=str(trace_path), shardz=3, portt=1)
        message = str(err.value)
        assert "unknown ServiceConfig field(s) 'portt', 'shardz'" in message
        # The fix rides in the message: every known field is listed.
        assert "known fields:" in message
        assert "shards" in message and "listen" in message

    def test_missing_trace(self, tmp_path):
        with pytest.raises(ServiceConfigError, match="trace file not found"):
            ServiceConfig(trace=tmp_path / "nope.jsonl")

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(batch=0), "--batch must be >= 1"),
            (dict(batch_wait_ms=-1.0), "--batch-wait-ms must be >= 0, got -1.0"),
            (dict(resume=True), "--resume requires --checkpoint"),
            (dict(checkpoint_every=5), "--checkpoint-every requires --checkpoint"),
            (dict(shards=0), "--shards must be >= 1"),
            (dict(workers=0), "--workers must be >= 1"),
            (
                dict(shards=2, workers=3),
                "a worker pool runs one shard per worker; got --shards 2 with --workers 3",
            ),
            (
                dict(strategy="round_robin"),
                "--strategy round_robin routes across worker processes",
            ),
            (
                dict(listen="127.0.0.1:0", max_arrivals=10),
                "--max-arrivals applies to trace replay",
            ),
            (dict(listen="no-port"), "--listen must be HOST:PORT, got 'no-port'"),
        ],
    )
    def test_exact_error_messages(self, trace_path, kwargs, message):
        with pytest.raises(ServiceConfigError) as err:
            ServiceConfig(trace=trace_path, **kwargs)
        assert message in str(err.value)

    @pytest.mark.parametrize(
        "kwargs", [dict(algorithm="nope"), dict(strategy="nope", workers=2),
                   dict(backend="nope")]
    )
    def test_registry_keys_validate_eagerly(self, trace_path, kwargs):
        # Registry lookups fail with the known-key listing, not at first use.
        with pytest.raises(UnknownKeyError, match="nope"):
            ServiceConfig(trace=trace_path, **kwargs)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7411") == ("127.0.0.1", 7411)
        assert parse_address("[::1]:0") == ("[::1]", 0)
        with pytest.raises(ServiceConfigError, match="--connect must be HOST:PORT"):
            parse_address("127.0.0.1:x", flag="--connect")
        with pytest.raises(ServiceConfigError, match="port must be 0..65535"):
            parse_address("h:70000")


class TestWireSchema:
    def test_roundtrip_stamps_version(self):
        frame = decode_frame(encode_frame({"op": "stats", "seq": 3}))
        assert frame == {"v": SERVICE_SCHEMA, "op": "stats", "seq": 3}

    def test_rejects_unknown_version(self):
        data = json.dumps({"v": SERVICE_SCHEMA + 1, "op": "submit"})
        with pytest.raises(WireFormatError, match="unsupported service schema 2"):
            decode_frame(data)

    def test_rejects_missing_version(self):
        with pytest.raises(WireFormatError, match="unsupported service schema None"):
            decode_frame(json.dumps({"op": "submit"}))

    def test_rejects_invalid_json(self):
        with pytest.raises(WireFormatError, match="invalid JSON frame"):
            decode_frame(b"{nope}\n")

    def test_rejects_non_object(self):
        with pytest.raises(WireFormatError, match="frame must be a JSON object, got list"):
            decode_frame(b"[1, 2]\n")

    def test_rejects_missing_op(self):
        with pytest.raises(WireFormatError, match="missing its 'op' field"):
            decode_frame(json.dumps({"v": SERVICE_SCHEMA, "seq": 1}))


class TestHealthMonitor:
    def test_states_progress_from_healthy_to_stalled_to_dead(self):
        stats = {0: {"pid": 11, "alive": True, "pending": 0, "processed": 0, "decisions": 0}}
        clock = iter([0.0, 1.0, 7.0, 8.0]).__next__
        monitor = HealthMonitor(lambda: stats, stall_after=5.0, clock=clock)
        assert monitor.observe()["state"] == "healthy"          # t=0: idle
        stats[0].update(pending=3)
        assert monitor.observe()["state"] == "healthy"          # t=1: lag < stall_after
        assert monitor.observe()["state"] == "stalled"          # t=7: no progress for 6s
        assert monitor.unhealthy_shards()[0]["pending"] == 3
        stats[0].update(alive=False)
        assert monitor.observe()["state"] == "dead"             # t=8: worker gone
        assert monitor.state == "dead"

    def test_progress_resets_the_stall_clock(self):
        stats = {0: {"alive": True, "pending": 1, "processed": 0, "decisions": 0}}
        clock = iter([0.0, 6.0, 12.0]).__next__
        monitor = HealthMonitor(lambda: stats, stall_after=5.0, clock=clock)
        monitor.observe()
        stats[0].update(processed=10)
        assert monitor.observe()["state"] == "healthy"          # t=6: progressed
        assert monitor.observe()["state"] == "stalled"          # t=12: wedged again

    def test_every_backend_exports_shard_stats(self, trace_path):
        stream = stream_trace(trace_path)
        session = StreamingSession(stream.capacities, algorithm="fractional")
        stream.close()
        stats = session.shard_stats()
        assert set(stats) == {0}
        assert stats[0]["alive"] is True and stats[0]["processed"] == 0
        assert HealthMonitor(session.shard_stats).observe()["state"] == "healthy"


@pytest.mark.parametrize("backend", BACKENDS)
class TestNetworkEqualsInProcess:
    def test_submit_batch_entries_and_log_match_engine(self, trace_path, tmp_path, backend):
        """The wire path returns exactly the engine's entries, in order."""
        requests = list(load_admission_trace(str(trace_path)).requests)
        stream = stream_trace(trace_path)
        reference = StreamingSession(
            stream.capacities, algorithm="fractional", backend=backend, seed=5
        )
        stream.close()
        expected = []
        for lo in range(0, len(requests), 7):
            expected.extend(reference.submit_batch(requests[lo : lo + 7]))

        log = tmp_path / "decisions.jsonl"
        config = network_config(trace_path, backend=backend, log=log)
        got = []
        with ServiceThread(config) as thread:
            host, port = thread.address
            with AdmissionClient(host, port) as client:
                assert client.welcome["name"] == f"serve:{trace_path.stem}"
                for lo in range(0, len(requests), 7):
                    got.extend(client.submit_batch(requests[lo : lo + 7]))
                stats = client.stats()
        assert got == expected
        assert stats["processed"] == len(requests)
        assert stats["summary"]["fractional_cost"] == pytest.approx(
            reference.summary()["fractional_cost"]
        )
        assert stats["health"]["state"] == "healthy"
        # The --log is flushed on shutdown and matches the engine log exactly.
        logged = log.read_text().splitlines()
        assert logged == [json.dumps(e, sort_keys=True) for e in expected]

    def test_single_submit_returns_the_arrival_entry(self, trace_path, backend):
        requests = list(load_admission_trace(str(trace_path)).requests)
        config = network_config(trace_path, backend=backend)
        with ServiceThread(config) as thread:
            host, port = thread.address
            with AdmissionClient(host, port) as client:
                entry = client.submit(requests[0])
                assert entry["id"] == requests[0].request_id
                assert entry["event"] != "preempt"
                assert client.processed == 1
                assert client.last_entries[-1] == entry or entry in client.last_entries


class TestProtocolErrors:
    def test_unknown_op_errors_but_keeps_connection(self, trace_path):
        with ServiceThread(network_config(trace_path)) as thread:
            host, port = thread.address
            with AdmissionClient(host, port) as client:
                client._fh.write(encode_frame({"op": "explode", "seq": 99}))
                client._fh.flush()
                reply = client._read_frame()
                assert reply["op"] == "error"
                assert "unknown op 'explode'" in reply["error"]
                # The connection survives a recoverable error.
                assert client.stats()["processed"] == 0

    def test_wrong_version_frame_is_rejected_and_closes(self, trace_path):
        with ServiceThread(network_config(trace_path)) as thread:
            host, port = thread.address
            with socket.create_connection((host, port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                decode_frame(fh.readline())  # welcome
                fh.write((json.dumps({"v": 99, "op": "stats", "seq": 1}) + "\n").encode())
                fh.flush()
                reply = decode_frame(fh.readline())
                assert reply["op"] == "error"
                assert "unsupported service schema 99" in reply["error"]
                assert fh.readline() == b""  # hung up: the stream is poisoned

    def test_malformed_json_is_rejected_and_closes(self, trace_path):
        with ServiceThread(network_config(trace_path)) as thread:
            host, port = thread.address
            with socket.create_connection((host, port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                decode_frame(fh.readline())  # welcome
                fh.write(b"{this is not json\n")
                fh.flush()
                reply = decode_frame(fh.readline())
                assert reply["op"] == "error" and "invalid JSON frame" in reply["error"]
                assert fh.readline() == b""

    def test_bad_request_payload_is_reported_per_frame(self, trace_path):
        with ServiceThread(network_config(trace_path)) as thread:
            host, port = thread.address
            with AdmissionClient(host, port) as client:
                with pytest.raises(ServiceError, match="bad submit frame"):
                    client._call({"op": "submit", "request": {"id": "r1"}})
                with pytest.raises(ServiceError, match="request must be a JSON object"):
                    client._call({"op": "submit", "request": [1, 2]})
                # Recoverable: the next well-formed call succeeds.
                assert client.stats()["decisions"] == 0

    def test_client_rejects_non_service_peer(self):
        with socket.socket() as server:
            server.bind(("127.0.0.1", 0))
            server.listen(1)
            host, port = server.getsockname()

            import threading

            def peer():
                conn, _ = server.accept()
                conn.sendall(b'{"hello": "world"}\n')
                conn.close()

            thread = threading.Thread(target=peer, daemon=True)
            thread.start()
            client = AdmissionClient(host, port, timeout=10)
            with pytest.raises(ServiceError, match="malformed frame from the service"):
                client.connect()
            thread.join(timeout=5)


class TestDrainAndStats:
    def test_drain_is_a_durability_barrier(self, trace_path, tmp_path):
        requests = list(load_admission_trace(str(trace_path)).requests)
        log = tmp_path / "log.jsonl"
        checkpoint = tmp_path / "ck.json"
        config = network_config(trace_path, log=log, checkpoint=checkpoint)
        with ServiceThread(config) as thread:
            host, port = thread.address
            with AdmissionClient(host, port) as client:
                client.submit_batch(requests[:10])
                reply = client.drain()
                assert reply["op"] == "drained"
                assert reply["processed"] == 10
                assert reply["checkpointed"] is True
                # Both artifacts are durable *before* the reply arrives.
                assert checkpoint.exists()
                assert len(log.read_text().splitlines()) == reply["decisions"]

    def test_drain_without_checkpoint_flushes_the_log(self, trace_path, tmp_path):
        requests = list(load_admission_trace(str(trace_path)).requests)
        log = tmp_path / "log.jsonl"
        with ServiceThread(network_config(trace_path, log=log)) as thread:
            host, port = thread.address
            with AdmissionClient(host, port) as client:
                client.submit_batch(requests[:5])
                reply = client.drain()
                assert reply["checkpointed"] is False
                assert len(log.read_text().splitlines()) == reply["decisions"]


class TestSigtermResumeSubprocess:
    """Real ``repro serve --listen`` processes: SIGTERM mid-stream, resume."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupted_network_log_is_byte_identical(self, trace_path, tmp_path, backend):
        from repro.service.smoke import ServerProcess, drive

        requests = list(load_admission_trace(str(trace_path)).requests)
        half = len(requests) // 2
        full_log = tmp_path / "full.jsonl"
        part_log = tmp_path / "part.jsonl"
        checkpoint = tmp_path / "ck.json"
        base = ["--trace", str(trace_path), "--listen", "127.0.0.1:0",
                "--algorithm", "fractional", "--seed", "5", "--backend", backend]

        server = ServerProcess([*base, "--log", str(full_log)])
        drive(server.wait_listening(), requests)
        server.sigterm_and_wait()
        assert any("SIGTERM: drained in-flight requests" in line for line in server.lines)

        server = ServerProcess([*base, "--log", str(part_log), "--checkpoint", str(checkpoint)])
        drive(server.wait_listening(), requests[:half])
        server.sigterm_and_wait()
        assert checkpoint.exists()

        server = ServerProcess(
            ["--trace", str(trace_path), "--listen", "127.0.0.1:0", "--resume",
             "--checkpoint", str(checkpoint), "--log", str(part_log)]
        )
        address = server.wait_listening()
        with AdmissionClient(*address) as client:
            assert client.welcome["processed"] == half
        drive(address, requests[half:])
        server.sigterm_and_wait()
        assert any(f"resumed at arrival {half}" in line for line in server.lines)

        assert part_log.read_bytes() == full_log.read_bytes()

    def test_resume_worker_count_mismatch_is_exit_2(self, trace_path, tmp_path):
        from repro.service.smoke import ServerProcess, drive

        checkpoint = tmp_path / "ck.json"
        server = ServerProcess(
            ["--trace", str(trace_path), "--listen", "127.0.0.1:0", "--workers", "2",
             "--algorithm", "fractional", "--checkpoint", str(checkpoint)]
        )
        requests = list(load_admission_trace(str(trace_path)).requests)
        drive(server.wait_listening(), requests[:10])
        server.sigterm_and_wait()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--trace", str(trace_path),
             "--listen", "127.0.0.1:0", "--resume", "--checkpoint", str(checkpoint),
             "--workers", "3"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 2
        assert "error: checkpoint was written by a 2-worker pool" in proc.stdout


class TestLoadtest:
    def test_percentile_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 50) == 25.0
        assert percentile(values, 100) == 40.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_run_loadtest_measures_a_live_service(self, trace_path):
        requests = list(load_admission_trace(str(trace_path)).requests)
        with ServiceThread(network_config(trace_path)) as thread:
            host, port = thread.address
            result = run_loadtest(host, port, requests, concurrency=2, batch=4)
        assert result.errors == 0
        assert result.requests == len(requests)
        record = result.record()
        assert record["requests_per_sec"] > 0
        assert record["p99_ms"] >= record["p50_ms"] > 0

    def test_loadtest_cli_writes_measurements(self, trace_path, tmp_path):
        from repro.cli import main

        import io

        out_json = tmp_path / "loadtest.json"
        with ServiceThread(network_config(trace_path)) as thread:
            host, port = thread.address
            buffer = io.StringIO()
            code = main(
                ["loadtest", "--connect", f"{host}:{port}", "--trace", str(trace_path),
                 "--batch", "4", "--max-arrivals", "20", "--out", str(out_json)],
                out=buffer,
            )
        assert code == 0
        assert "req/s" in buffer.getvalue()
        record = json.loads(out_json.read_text())
        assert record["requests"] == 20
        assert record["errors"] == 0

    def test_loadtest_cli_rejects_bad_address(self, trace_path):
        from repro.cli import main

        import io

        buffer = io.StringIO()
        code = main(
            ["loadtest", "--connect", "nope", "--trace", str(trace_path)], out=buffer
        )
        assert code == 2
        assert "--connect must be HOST:PORT" in buffer.getvalue()
