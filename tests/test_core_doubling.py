"""Tests for the guess-and-double wrappers (Section 2 preprocessing)."""

import pytest

from repro.core.doubling import (
    AlphaSchedule,
    DoublingAdmissionControl,
    DoublingFractionalAdmissionControl,
)
from repro.core.protocols import run_admission
from repro.instances.request import Request
from repro.offline import solve_admission_ilp
from repro.workloads import cheap_then_expensive_adversary, single_edge_workload, pareto_costs
from repro.analysis.invariants import check_admission_result


class TestAlphaSchedule:
    def test_no_guess_before_overload(self):
        schedule = AlphaSchedule(m=2, c=1)
        capacities = {"a": 1, "b": 1}
        assert not schedule.observe_request(Request(0, {"a"}, 3.0), capacities)
        assert schedule.alpha is None
        assert schedule.cost_limit() == float("inf")

    def test_first_guess_is_cheapest_on_overloaded_edge(self):
        schedule = AlphaSchedule(m=2, c=1)
        capacities = {"a": 1, "b": 1}
        schedule.observe_request(Request(0, {"a"}, 3.0), capacities)
        initialised = schedule.observe_request(Request(1, {"a"}, 2.0), capacities)
        assert initialised
        assert schedule.alpha == pytest.approx(2.0)
        assert schedule.num_phases == 1

    def test_maybe_double_grows_geometrically(self):
        schedule = AlphaSchedule(m=4, c=2, threshold_factor=1.0)
        schedule.alpha = 1.0
        schedule.phase_alphas.append(1.0)
        limit = schedule.cost_limit()
        assert schedule.maybe_double(limit * 3.5)
        assert schedule.alpha >= 4.0
        assert schedule.num_phases >= 3

    def test_maybe_double_noop_below_limit(self):
        schedule = AlphaSchedule(m=4, c=2)
        schedule.alpha = 1.0
        assert not schedule.maybe_double(0.1)


class TestDoublingFractional:
    def test_no_cost_without_overload(self, free_instance):
        algo = DoublingFractionalAdmissionControl.for_instance(free_instance)
        result = algo.process_sequence(free_instance.requests)
        assert result.fractional_cost == 0.0
        assert algo.alpha is None

    def test_alpha_initialised_on_first_overload(self, overload_instance):
        algo = DoublingFractionalAdmissionControl.for_instance(overload_instance)
        algo.process_sequence(overload_instance.requests)
        assert algo.alpha is not None
        assert algo.alpha >= 1.0

    def test_invariants_hold(self, adversarial_instance):
        algo = DoublingFractionalAdmissionControl.for_instance(adversarial_instance)
        algo.process_sequence(adversarial_instance.requests)
        assert algo.check_invariants() == []

    def test_run_result_reflects_final_alpha(self, overload_instance):
        algo = DoublingFractionalAdmissionControl.for_instance(overload_instance)
        result = algo.process_sequence(overload_instance.requests)
        assert result.alpha == algo.alpha

    def test_fractions_exposed(self, overload_instance):
        algo = DoublingFractionalAdmissionControl.for_instance(overload_instance)
        algo.process_sequence(overload_instance.requests)
        fractions = algo.fractions()
        assert set(fractions) == set(overload_instance.requests.ids())
        assert all(0.0 <= f <= 1.0 for f in fractions.values())


class TestDoublingRandomized:
    def test_feasible_and_complete(self, adversarial_instance):
        algo = DoublingAdmissionControl.for_instance(adversarial_instance, random_state=0)
        result = run_admission(algo, adversarial_instance)
        assert result.feasible
        assert check_admission_result(adversarial_instance, result).ok
        assert result.extra["num_phases"] >= 1

    def test_result_uses_wrapper_name(self, adversarial_instance):
        algo = DoublingAdmissionControl.for_instance(adversarial_instance, random_state=0, name="wrapped")
        result = run_admission(algo, adversarial_instance)
        assert result.algorithm == "wrapped"

    def test_delegation_of_state_queries(self, star_instance):
        algo = DoublingAdmissionControl.for_instance(star_instance, random_state=0)
        run_admission(algo, star_instance)
        # Attribute delegation to the inner randomized algorithm.
        assert isinstance(algo.rejection_cost(), float)
        assert algo.is_feasible()

    def test_protects_expensive_requests_on_weighted_trap(self):
        instance = cheap_then_expensive_adversary(8, 2, expensive_cost=50.0)
        opt = solve_admission_ilp(instance)
        algo = DoublingAdmissionControl.for_instance(instance, random_state=1)
        result = run_admission(algo, instance)
        # Doubling finds alpha ~ OPT and then R_big protects the expensive requests:
        # the final cost should be within a small factor of OPT, far below the
        # 50x a non-preemptive algorithm pays.
        assert result.rejection_cost <= 6 * opt.cost

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_heavy_tailed_costs_stay_bounded(self, seed):
        instance = single_edge_workload(
            16, 64, capacity=2, concentration=1.3,
            cost_sampler=lambda n, r: pareto_costs(n, shape=1.3, random_state=r),
            random_state=seed,
        )
        opt = solve_admission_ilp(instance)
        algo = DoublingAdmissionControl.for_instance(instance, random_state=seed)
        result = run_admission(algo, instance)
        assert result.feasible
        if opt.cost > 0:
            assert result.rejection_cost / opt.cost <= 80.0  # generous sanity bound

    def test_alpha_phases_monotone(self, adversarial_instance):
        algo = DoublingAdmissionControl.for_instance(adversarial_instance, random_state=0)
        result = run_admission(algo, adversarial_instance)
        phases = result.extra["alpha_phases"]
        assert all(b >= a for a, b in zip(phases, phases[1:]))
