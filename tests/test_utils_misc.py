"""Unit tests for repro.utils.timing, repro.utils.logging and repro.utils.validation."""

import io
import logging

import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestTimer:
    def test_section_records_total_and_count(self):
        timer = Timer()
        with timer.section("work"):
            pass
        with timer.section("work"):
            pass
        assert timer.counts["work"] == 2
        assert timer.total("work") >= 0.0

    def test_mean_of_untimed_section_is_zero(self):
        assert Timer().mean("nothing") == 0.0

    def test_summary_contains_section_names(self):
        timer = Timer()
        with timer.section("alpha"):
            pass
        assert "alpha" in timer.summary()

    def test_exception_still_records(self):
        timer = Timer()
        with pytest.raises(RuntimeError), timer.section("boom"):
            raise RuntimeError("x")
        assert timer.counts["boom"] == 1


class TestTimed:
    def test_returns_value_and_duration(self):
        wrapped = timed(lambda x: x * 2)
        value, duration = wrapped(21)
        assert value == 42
        assert duration >= 0.0


class TestLogging:
    def test_get_logger_prefixes_namespace(self):
        assert get_logger("core.fractional").name == "repro.core.fractional"
        assert get_logger("repro.analysis").name == "repro.analysis"

    def test_configure_logging_attaches_single_handler(self):
        stream = io.StringIO()
        configure_logging(logging.INFO, stream=stream)
        configure_logging(logging.INFO, stream=stream)
        logger = logging.getLogger("repro")
        assert len(logger.handlers) == 1
        get_logger("test").info("hello")
        assert "hello" in stream.getvalue()


class TestValidation:
    def test_check_positive_accepts_and_returns_float(self):
        assert check_positive(3, "x") == 3.0

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(ValueError):
            check_positive(-1.5, "x")

    def test_check_positive_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_integer(self):
        assert check_integer(4, "k") == 4
        with pytest.raises(TypeError):
            check_integer(4.5, "k")
        with pytest.raises(ValueError):
            check_integer(1, "k", minimum=2)
        with pytest.raises(TypeError):
            check_integer(True, "k")

    def test_check_in_range(self):
        assert check_in_range(0.3, "x", 0.0, 1.0) == 0.3
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", 0.0, 1.0)
        with pytest.raises(TypeError):
            check_in_range("a", "x", 0.0, 1.0)
