"""RunSpec eager-validation tests: every bad spec fails at construction time.

The satellite contract: unknown algorithm/scenario/backend keys, streaming x
offline-algorithm conflicts, and non-positive trials/jobs all raise with
self-describing messages — asserted exactly — before any worker runs.
"""

import pytest

from repro.api import RunSpec, RunSpecError
from repro.engine.registry import ADMISSION_ALGORITHMS, SETCOVER_ALGORITHMS, WEIGHT_BACKENDS, UnknownKeyError
from repro.engine.runtime import ensure_builtin_registrations
from repro.engine.streaming import STREAMING_ALGORITHMS
from repro.scenarios.registry import SCENARIOS, ensure_builtin_scenarios
from repro.workloads import cheap_then_expensive_adversary


def _spec(**overrides):
    base = dict(scenario="bursty", algorithm="fractional")
    base.update(overrides)
    return RunSpec(**base)


class TestSourceValidation:
    def test_no_source_is_exact_error(self):
        with pytest.raises(RunSpecError) as err:
            RunSpec(algorithm="fractional")
        assert str(err.value) == (
            "RunSpec needs exactly one source — pass scenario=, trace=, instance=, "
            "or factory= (got none)"
        )

    def test_two_sources_is_exact_error(self):
        instance = cheap_then_expensive_adversary(num_edges=4, capacity=1)
        with pytest.raises(RunSpecError) as err:
            RunSpec(algorithm="fractional", scenario="bursty", instance=instance)
        assert str(err.value) == (
            "RunSpec needs exactly one source — pass scenario=, trace=, instance=, "
            "or factory= (got scenario, instance)"
        )

    def test_missing_trace_file(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(RunSpecError, match="trace file not found"):
            RunSpec(algorithm="fractional", trace=missing)

    def test_scenario_params_require_scenario_source(self):
        instance = cheap_then_expensive_adversary(num_edges=4, capacity=1)
        with pytest.raises(RunSpecError) as err:
            RunSpec(
                algorithm="fractional", instance=instance,
                scenario_params={"num_requests": 5},
            )
        assert str(err.value) == (
            "scenario_params requires a scenario= or trace= source; got a instance= source"
        )

    def test_non_callable_factory(self):
        with pytest.raises(RunSpecError, match="factory must be callable"):
            RunSpec(algorithm="fractional", factory="not-a-callable")


class TestRegistryKeyValidation:
    def test_unknown_admission_algorithm_exact_message(self):
        ensure_builtin_registrations()
        known = ", ".join(ADMISSION_ALGORITHMS.keys())
        with pytest.raises(UnknownKeyError) as err:
            _spec(algorithm="nope")
        assert str(err.value) == f"unknown admission algorithm 'nope'; known: {known}"

    def test_unknown_setcover_algorithm_exact_message(self):
        ensure_builtin_registrations()
        known = ", ".join(SETCOVER_ALGORITHMS.keys())
        with pytest.raises(UnknownKeyError) as err:
            _spec(problem="setcover", mode="batch", algorithm="nope")
        assert str(err.value) == f"unknown set-cover algorithm 'nope'; known: {known}"

    def test_unknown_scenario_exact_message(self):
        ensure_builtin_scenarios()
        known = ", ".join(SCENARIOS.keys())
        with pytest.raises(UnknownKeyError) as err:
            _spec(scenario="no-such-scenario")
        assert str(err.value) == f"unknown scenario 'no-such-scenario'; known: {known}"

    def test_unknown_backend_exact_message(self):
        ensure_builtin_registrations()
        known = ", ".join(WEIGHT_BACKENDS.keys())
        with pytest.raises(UnknownKeyError) as err:
            _spec(backend="cuda")
        assert str(err.value) == f"unknown weight backend 'cuda'; known: {known}"

    def test_keys_are_case_normalised(self):
        spec = _spec(algorithm="Fractional", backend="NumPy")
        assert spec.algorithm == "fractional"
        assert spec.backend == "numpy"


class TestCountValidation:
    @pytest.mark.parametrize("trials", [0, -3])
    def test_non_positive_trials_exact_message(self, trials):
        with pytest.raises(RunSpecError) as err:
            _spec(trials=trials)
        assert str(err.value) == f"trials must be a positive integer, got {trials!r}"

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_non_positive_jobs_exact_message(self, jobs):
        with pytest.raises(RunSpecError) as err:
            _spec(jobs=jobs)
        assert str(err.value) == (
            f"jobs must be a positive integer, got {jobs!r} (resolve 'all cores' with "
            f"repro.engine.config.resolve_jobs before building the spec)"
        )

    def test_fractional_trials_rejected(self):
        with pytest.raises(RunSpecError, match="trials must be a positive integer"):
            _spec(trials=2.5)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(RunSpecError, match="seed must be an integer"):
            _spec(seed="twelve")


class TestModeValidation:
    def test_unknown_mode(self):
        with pytest.raises(RunSpecError) as err:
            _spec(mode="warp")
        assert str(err.value) == (
            "mode must be one of 'batch', 'compiled', 'streaming'; got 'warp'"
        )

    def test_unknown_problem(self):
        with pytest.raises(RunSpecError) as err:
            _spec(problem="matching")
        assert str(err.value) == (
            "problem must be one of 'admission', 'setcover'; got 'matching'"
        )

    def test_unknown_offline(self):
        with pytest.raises(RunSpecError) as err:
            _spec(offline="oracle")
        assert str(err.value) == "offline must be one of 'lp', 'ilp'; got 'oracle'"

    def test_default_mode_per_problem(self):
        assert _spec().mode == "compiled"
        assert _spec(problem="setcover", algorithm="reduction").mode == "batch"


class TestStreamingConflicts:
    def test_offline_style_algorithm_cannot_stream_exact_message(self):
        known = ", ".join(STREAMING_ALGORITHMS.keys())
        with pytest.raises(RunSpecError) as err:
            _spec(algorithm="reject-when-full", mode="streaming")
        assert str(err.value) == (
            f"algorithm 'reject-when-full' cannot run in mode='streaming'; "
            f"streaming-capable algorithms: {known}. "
            f"Use mode='batch' or mode='compiled' for offline-style algorithms."
        )

    def test_setcover_cannot_stream_exact_message(self):
        with pytest.raises(RunSpecError) as err:
            _spec(problem="setcover", algorithm="reduction", mode="streaming")
        assert str(err.value) == (
            "set-cover specs support only mode='batch' (there is no compiled or "
            "streaming path for set cover); got mode='streaming'"
        )

    def test_setcover_cannot_compile(self):
        with pytest.raises(RunSpecError, match="only mode='batch'"):
            _spec(problem="setcover", algorithm="reduction", mode="compiled")

    @pytest.mark.parametrize("key", ["fractional", "randomized", "doubling"])
    def test_streaming_capable_keys_pass(self, key):
        # (doubling-fractional streams too, but has no admission-registry
        # builder, so a spec cannot name it; sessions build it directly.)
        assert _spec(algorithm=key, mode="streaming").mode == "streaming"


class TestNormalisationAndGrid:
    def test_params_become_sorted_tuples(self):
        spec = _spec(scenario_params={"b": 2, "a": 1}, algorithm_params={"z": 3})
        assert spec.scenario_params == (("a", 1), ("b", 2))
        assert spec.algorithm_params == (("z", 3),)
        assert spec.scenario_param_dict() == {"a": 1, "b": 2}

    def test_default_label(self):
        assert _spec().label == "bursty x fractional"

    def test_replace_revalidates(self):
        spec = _spec()
        with pytest.raises(RunSpecError, match="trials must be a positive integer"):
            spec.replace(trials=0)
        assert spec.replace(trials=4).trials == 4

    def test_trace_source_resolves_to_scenario(self, tmp_path):
        from repro.scenarios import build_scenario, record_trace

        trace = record_trace(build_scenario("cheap_expensive"), tmp_path / "t.jsonl")
        spec = RunSpec(trace=trace, algorithm="fractional")
        assert spec.source_key == "trace:t"

    def test_grid_shape_and_seeds(self):
        from repro.utils.rng import stable_seed

        specs = RunSpec.grid(
            ["bursty", "flash_crowd"], ["fractional", "randomized"],
            backends=["python", "numpy"], trials=2, seed=11,
        )
        assert len(specs) == 8
        # Per-cell seeds depend on (seed, scenario, algorithm) only — the
        # sweep-compatible derivation — so both backends share a cell seed.
        for spec in specs:
            assert spec.seed == stable_seed(11, spec.source_key, spec.algorithm, "sweep")
        assert specs[0].trials == 2

    def test_grid_rejects_empty_and_duplicate_axes(self):
        with pytest.raises(RunSpecError, match="need at least one scenario"):
            RunSpec.grid([], ["fractional"])
        with pytest.raises(RunSpecError, match="need at least one algorithm"):
            RunSpec.grid(["bursty"], [])
        with pytest.raises(RunSpecError, match="duplicate scenario keys"):
            RunSpec.grid(["bursty", "bursty"], ["fractional"])
        with pytest.raises(RunSpecError, match="duplicate algorithm keys"):
            RunSpec.grid(["bursty"], ["fractional", "fractional"])
