"""ResultSet tests: tidy rows, aggregation, filtering, JSON/JSONL round-trip."""

import math

import pytest

from repro.api import ResultRow, ResultSet


def make_row(**overrides):
    base = dict(
        source="bursty",
        algorithm="fractional",
        backend="python",
        mode="compiled",
        problem="admission",
        trial=0,
        label="bursty x fractional",
        instance="bursty-0",
        online_cost=12.0,
        offline_cost=10.0,
        offline_kind="lp:optimal",
        ratio=1.2,
        bound=6.0,
        normalized_ratio=0.2,
        feasible=True,
        seed=7,
        extra={"num_augmentations": 3},
    )
    base.update(overrides)
    return ResultRow(**base)


@pytest.fixture
def results():
    return ResultSet(
        [
            make_row(trial=0, ratio=1.0),
            make_row(trial=1, ratio=3.0),
            make_row(algorithm="randomized", ratio=2.0, feasible=False),
            make_row(source="flash_crowd", algorithm="randomized", ratio=4.0),
        ]
    )


class TestCollection:
    def test_len_iter_getitem(self, results):
        assert len(results) == 4
        assert [row.trial for row in results][:2] == [0, 1]
        assert results[0].ratio == 1.0

    def test_filter_is_conjunctive(self, results):
        sub = results.filter(source="bursty", algorithm="randomized")
        assert len(sub) == 1
        assert sub[0].ratio == 2.0

    def test_ratios_and_stats(self, results):
        assert results.ratios() == [1.0, 3.0, 2.0, 4.0]
        assert results.ratio_stats().mean == pytest.approx(2.5)
        assert not results.all_feasible()
        assert results.filter(source="flash_crowd").all_feasible()

    def test_extend_chains(self, results):
        merged = ResultSet().extend(results).extend([make_row(trial=9)])
        assert len(merged) == 5


class TestAggregation:
    def test_aggregate_default_grouping(self, results):
        rows = results.aggregate()
        assert [(r["source"], r["algorithm"], r["trials"]) for r in rows] == [
            ("bursty", "fractional", 2),
            ("bursty", "randomized", 1),
            ("flash_crowd", "randomized", 1),
        ]
        first = rows[0]
        assert first["ratio_mean"] == pytest.approx(2.0)
        assert first["ratio_max"] == pytest.approx(3.0)
        assert first["online_mean"] == pytest.approx(12.0)
        assert first["feasible"] is True
        assert rows[1]["feasible"] is False

    def test_aggregate_by_backend(self, results):
        rows = results.aggregate(by=("backend",))
        assert len(rows) == 1
        assert rows[0]["trials"] == 4

    def test_tables_render(self, results):
        table = results.table()
        assert "ratio_mean" in table
        pivot = results.comparison_table()
        assert "ratio[fractional]" in pivot
        assert "ratio[randomized]" in pivot
        assert "flash_crowd" in pivot

    def test_comparison_table_fills_missing_cells_with_nan(self, results):
        pivot = results.comparison_table()
        # flash_crowd never ran fractional; the cell renders as NaN, not KeyError.
        assert "nan" in pivot.lower()


class TestRoundTrip:
    def test_json_round_trip(self, results, tmp_path):
        path = results.save(tmp_path / "results.json")
        loaded = ResultSet.load(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in results]

    def test_jsonl_round_trip(self, results, tmp_path):
        path = results.save(tmp_path / "results.jsonl")
        assert len(path.read_text().splitlines()) == len(results)
        loaded = ResultSet.load(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in results]

    def test_unknown_schema_rejected(self, results, tmp_path):
        path = results.save(tmp_path / "results.json")
        payload = path.read_text().replace('"schema": 1', '"schema": 99')
        path.write_text(payload)
        with pytest.raises(ValueError, match="unknown result schema 99"):
            ResultSet.load(path)

    def test_unknown_jsonl_schema_rejected_with_line_number(self, results, tmp_path):
        path = results.save(tmp_path / "results.jsonl")
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"schema": 1', '"schema": 99')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"results\.jsonl:2: unknown result schema 99"):
            ResultSet.load(path)

    def test_non_serialisable_extras_degrade_to_repr(self, tmp_path):
        row = make_row(extra={"callback": print})
        path = ResultSet([row]).save(tmp_path / "weird.json")
        loaded = ResultSet.load(path)
        assert "print" in loaded[0].extra["callback"]

    def test_live_record_not_serialised(self, tmp_path):
        row = make_row()
        row.record = object()  # stand-in for a CompetitiveRecord
        loaded = ResultSet.load(ResultSet([row]).save(tmp_path / "r.json"))
        assert loaded[0].record is None

    def test_empty_set_round_trips(self, tmp_path):
        for name in ("empty.json", "empty.jsonl"):
            loaded = ResultSet.load(ResultSet().save(tmp_path / name))
            assert len(loaded) == 0


class TestFacadeRows:
    def test_runner_rows_are_tidy_and_serialisable(self, tmp_path):
        from repro.api import Runner, RunSpec

        results = Runner().run(
            RunSpec(scenario="cheap_expensive", algorithm="fractional", trials=2, seed=3)
        )
        assert len(results) == 2
        assert [row.trial for row in results] == [0, 1]
        for row in results:
            assert row.source == "cheap_expensive"
            assert row.mode == "compiled"
            assert row.record is not None
            assert math.isfinite(row.ratio)
            assert row.extra["online_seconds"] >= 0
        loaded = ResultSet.load(results.save(tmp_path / "run.jsonl"))
        assert loaded.ratios() == results.ratios()
