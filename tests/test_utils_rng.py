"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators, stable_seed


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9, size=10)
        b = as_generator(2).integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_streams(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.integers(0, 10**9, 10), b.integers(0, 10**9, 10))

    def test_reproducible_from_same_master(self):
        first = [g.integers(0, 10**9) for g in spawn_generators(99, 3)]
        second = [g.integers(0, 10**9) for g in spawn_generators(99, 3)]
        assert first == second

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(5), 3)
        assert len(gens) == 3


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(1, "abc", 2.5) == stable_seed(1, "abc", 2.5)

    def test_different_inputs_differ(self):
        assert stable_seed(1, "a") != stable_seed(1, "b")

    def test_within_31_bits(self):
        for parts in [(0,), ("x", 1, 2), (tuple(range(10)),)]:
            seed = stable_seed(*parts)
            assert 0 <= seed < 2**31

    def test_usable_as_numpy_seed(self):
        gen = np.random.default_rng(stable_seed("workload", 3))
        assert isinstance(gen, np.random.Generator)


class TestDeriveSeed:
    def test_deterministic_for_int(self):
        assert derive_seed(7, salt=3) == derive_seed(7, salt=3)

    def test_salt_changes_value(self):
        assert derive_seed(7, salt=1) != derive_seed(7, salt=2)

    def test_non_negative(self):
        assert derive_seed(123, salt=0) >= 0
