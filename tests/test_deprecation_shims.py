"""Deprecation shims: the legacy entry points warn but keep their numerics."""

import warnings

import pytest

from repro.analysis.trials import run_admission_trials, run_setcover_trials
from repro.engine.runtime import make_admission_algorithm, make_setcover_algorithm
from repro.workloads import bursty_workload, random_setcover_instance


def admission_factory(rng):
    return bursty_workload(num_edges=10, num_requests=50, capacity=3, random_state=rng)


def admission_algorithm(instance, rng):
    return make_admission_algorithm("randomized", instance, random_state=rng)


def setcover_factory(rng):
    return random_setcover_instance(20, 10, 30, random_state=rng)


def setcover_algorithm(instance, rng):
    return make_setcover_algorithm("reduction", instance, random_state=rng)


class TestRunAdmissionTrialsShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="run_admission_trials.*RunSpec"):
            run_admission_trials(
                admission_factory, admission_algorithm,
                num_trials=1, random_state=5, offline="lp",
            )

    def test_numerics_unchanged_under_the_warning(self):
        """The shim delegates to the same suite the facade uses: same numbers."""
        from repro.api import Runner, RunSpec

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_admission_trials(
                admission_factory, admission_algorithm,
                num_trials=3, random_state=17, offline="lp",
            )
        facade = Runner().run(
            RunSpec(
                factory=admission_factory, algorithm=admission_algorithm,
                mode="compiled", trials=3, seed=17, offline="lp",
            )
        )
        assert facade.ratios() == pytest.approx(legacy.ratios(), abs=1e-9)
        assert [r.online_cost for r in facade] == pytest.approx(
            [rec.online_cost for rec in legacy.records], abs=1e-9
        )


class TestRunSetcoverTrialsShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="run_setcover_trials.*setcover"):
            run_setcover_trials(
                setcover_factory, setcover_algorithm,
                num_trials=1, random_state=5, offline="lp",
            )

    def test_numerics_unchanged_under_the_warning(self):
        from repro.api import Runner, RunSpec

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_setcover_trials(
                setcover_factory, setcover_algorithm,
                num_trials=2, random_state=9, offline="lp",
            )
        facade = Runner().run(
            RunSpec(
                problem="setcover", factory=setcover_factory,
                algorithm=setcover_algorithm, trials=2, seed=9, offline="lp",
            )
        )
        assert facade.ratios() == pytest.approx(legacy.ratios(), abs=1e-9)


class TestScenarioSweepShim:
    def test_emits_deprecation_warning(self):
        from repro.engine.sweep import ScenarioSweep

        with pytest.warns(DeprecationWarning, match="ScenarioSweep.*RunSpec.grid"):
            ScenarioSweep(["cheap_expensive"], ["fractional"], num_trials=1)

    def test_numerics_unchanged_under_the_warning(self):
        from repro.api import Runner, RunSpec
        from repro.engine.sweep import ScenarioSweep

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ScenarioSweep(
                ["cheap_expensive", "bursty"], ["fractional", "randomized"],
                num_trials=2, seed=23, offline="lp",
            ).run()
        facade = Runner().run(
            RunSpec.grid(
                ["cheap_expensive", "bursty"], ["fractional", "randomized"],
                seed=23, trials=2, offline="lp",
            )
        )
        for (scenario, algorithm), summary in legacy.summaries.items():
            cell = facade.filter(source=scenario, algorithm=algorithm)
            assert cell.ratios() == pytest.approx(summary.ratios(), abs=1e-9)

    def test_streaming_baseline_fallback_still_works(self):
        """Legacy sweeps could stream baselines; the shim must keep that."""
        from repro.engine.sweep import ScenarioSweep

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            batch = ScenarioSweep(
                ["cheap_expensive"], ["reject-when-full"], num_trials=1, seed=3,
            ).run()
            streamed = ScenarioSweep(
                ["cheap_expensive"], ["reject-when-full"], num_trials=1, seed=3,
                streaming=True,
            ).run()
        cell = ("cheap_expensive", "reject-when-full")
        assert streamed.summaries[cell].ratios() == pytest.approx(
            batch.summaries[cell].ratios(), abs=1e-9
        )
