"""Tests for the parallel trial executor and deterministic seed derivation."""

import numpy as np
import pytest

from repro.analysis.trials import run_admission_trials
from repro.engine.executor import derive_seed_pairs, execute, is_picklable
from repro.utils.rng import spawn_generators
from repro.workloads import overloaded_edge_adversary


def _square(x):  # module-level: picklable, process-pool eligible
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


class TestExecute:
    def test_serial_matches_map(self):
        assert execute(_square, range(6), jobs=1) == [0, 1, 4, 9, 16, 25]

    def test_parallel_process_pool_matches_serial(self):
        assert execute(_square, range(10), jobs=2) == [x * x for x in range(10)]

    def test_parallel_with_closures_falls_back_to_threads(self):
        offset = 7
        fn = lambda x: x + offset  # noqa: E731 — closure, not picklable
        assert not is_picklable(fn)
        assert execute(fn, range(5), jobs=2) == [7, 8, 9, 10, 11]

    def test_zero_jobs_means_all_cores(self):
        assert execute(_square, range(4), jobs=0) == [0, 1, 4, 9]

    def test_empty_items(self):
        assert execute(_square, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError):
            execute(_fail_on_three, range(5), jobs=2)
        with pytest.raises(ValueError):
            execute(_fail_on_three, range(5), jobs=1)


class TestSeedDerivation:
    def test_matches_spawn_generators(self):
        """Trial t's streams equal spawn_generators' children 2t and 2t+1."""
        pairs = derive_seed_pairs(1234, 4)
        legacy = spawn_generators(1234, 8)
        for t, (instance_seed, algo_seed) in enumerate(pairs):
            expected_inst = legacy[2 * t].integers(0, 1000, size=5)
            expected_algo = legacy[2 * t + 1].integers(0, 1000, size=5)
            got_inst = np.random.default_rng(instance_seed).integers(0, 1000, size=5)
            got_algo = np.random.default_rng(algo_seed).integers(0, 1000, size=5)
            assert list(expected_inst) == list(got_inst)
            assert list(expected_algo) == list(got_algo)

    def test_pairs_are_picklable(self):
        assert is_picklable(derive_seed_pairs(0, 3))

    def test_generator_input_supported(self):
        pairs = derive_seed_pairs(np.random.default_rng(5), 2)
        assert len(pairs) == 2
        assert all(isinstance(s, int) for pair in pairs for s in pair)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seed_pairs(0, -1)


class TestParallelTrials:
    def _summary(self, jobs):
        return run_admission_trials(
            instance_factory=lambda rng: overloaded_edge_adversary(
                8, 2, num_hot_edges=2, random_state=rng
            ),
            algorithm_factory=lambda instance, rng: __import__(
                "repro.core.randomized", fromlist=["RandomizedAdmissionControl"]
            ).RandomizedAdmissionControl.for_instance(instance, random_state=rng),
            num_trials=4,
            random_state=777,
            offline="lp",
            jobs=jobs,
        )

    def test_jobs_do_not_change_results(self):
        """jobs=1 and jobs=3 produce bit-identical trial records."""
        serial = self._summary(jobs=1)
        parallel = self._summary(jobs=3)
        assert serial.num_trials == parallel.num_trials == 4
        assert serial.ratios() == parallel.ratios()
        assert [r.online_cost for r in serial.records] == [
            r.online_cost for r in parallel.records
        ]
