"""Tests for the scenario subsystem: registry, generators, trace round-trip.

The trace round-trip tests are the honesty gate of the record/replay format:
a replayed trace must produce decision logs identical (to 1e-9, in practice
bit-for-bit) to the original instance, under both weight backends, with
diagnostics recording on and off.
"""

import pickle

import numpy as np
import pytest

from repro.core.fractional import FractionalAdmissionControl
from repro.core.protocols import run_admission
from repro.core.randomized import RandomizedAdmissionControl
from repro.engine.registry import DuplicateKeyError, UnknownKeyError
from repro.instances.compiled import compile_instance
from repro.instances.serialize import (
    dump_admission_trace,
    load_admission_trace,
    trace_lines,
)
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    build_scenario,
    get_scenario,
    load_trace,
    record_trace,
    scenario_from_trace,
    scenario_keys,
)

TOL = 1e-9
BACKENDS = ("python", "numpy")

#: Every built-in scenario family the registry must expose.
EXPECTED_KEYS = {
    "bursty",
    "zipf_costs",
    "diurnal",
    "flash_crowd",
    "adversarial_mix",
    "topology_stress",
    "random_paths",
    "hotspot",
    "line_intervals",
    "overloaded_edges",
    "cheap_expensive",
}


def request_tuples(instance):
    return [(r.request_id, r.edges, r.cost, r.tag) for r in instance.requests]


class TestScenarioRegistry:
    def test_builtin_keys_registered(self):
        assert EXPECTED_KEYS <= set(scenario_keys())

    def test_unknown_key_lists_known(self):
        with pytest.raises(UnknownKeyError, match="bursty"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("bursty")
        with pytest.raises(DuplicateKeyError):
            SCENARIOS.register("bursty", scenario)

    def test_build_is_deterministic_per_seed(self):
        a = build_scenario("bursty", random_state=42)
        b = build_scenario("bursty", random_state=42)
        assert request_tuples(a) == request_tuples(b)
        assert a.capacities == b.capacities

    def test_overrides_apply_over_defaults(self):
        small = build_scenario("bursty", random_state=0, num_requests=25)
        assert small.num_requests == 25
        defaults = dict(get_scenario("bursty").defaults)
        assert defaults["num_requests"] != 25

    def test_scenarios_are_picklable(self):
        for key in EXPECTED_KEYS:
            clone = pickle.loads(pickle.dumps(get_scenario(key)))
            assert clone.key == get_scenario(key).key


class TestGenerativeFamilies:
    @pytest.mark.parametrize("key", sorted(EXPECTED_KEYS))
    def test_builds_and_compiles(self, key):
        instance = build_scenario(key, random_state=3)
        assert instance.num_requests > 0
        compiled = compile_instance(instance)
        assert compiled.num_requests == instance.num_requests
        assert list(compiled.edge_order) == list(instance.capacities)

    def test_bursty_tags_burst_episodes(self):
        instance = build_scenario("bursty", random_state=1)
        tags = {r.tag for r in instance.requests if r.tag}
        assert tags and all(t.startswith("burst") for t in tags)

    def test_flash_crowd_has_spike_window(self):
        instance = build_scenario("flash_crowd", random_state=1)
        spikes = [r.request_id for r in instance.requests if r.tag == "spike"]
        assert spikes
        # The crowd is concentrated: all spike arrivals inside the window.
        n = instance.num_requests
        assert min(spikes) >= 0.4 * n and max(spikes) <= 0.65 * n

    def test_diurnal_tags_days(self):
        instance = build_scenario("diurnal", random_state=1)
        assert {r.tag for r in instance.requests} == {"day0", "day1"}

    def test_zipf_costs_are_heavy_tailed(self):
        instance = build_scenario("zipf_costs", random_state=1)
        costs = [r.cost for r in instance.requests]
        assert min(costs) >= 1.0
        assert max(costs) > 10.0 * np.median(costs)

    def test_adversarial_mix_preserves_block_order(self):
        from repro.workloads import adversarial_mix_workload

        instance = adversarial_mix_workload(random_state=5)
        # Within each block, the cheap-then-expensive structure (and every
        # other construction) relies on arrival order; the interleaving must
        # keep each block's requests in their original relative order.  Block
        # membership is recoverable from the edge namespace prefix.
        by_block = {}
        for request in instance.requests:
            prefix = next(iter(request.edges)).split(":")[0]
            by_block.setdefault(prefix, []).append(request)
        assert len(by_block) == 3
        cheap_block = by_block["b1"]  # "cheap-expensive" is the second default block
        costs = [r.cost for r in cheap_block]
        # Per edge namespace the cheap requests (cost 1) precede expensive ones.
        first_expensive = costs.index(50.0)
        assert all(c == 1.0 for c in costs[:first_expensive])

    def test_flash_crowd_rejects_window_past_trace_end(self):
        from repro.workloads import flash_crowd_workload

        with pytest.raises(ValueError, match="spike window"):
            flash_crowd_workload(spike_start=0.9, spike_duration=0.5, random_state=0)

    def test_topology_stress_rejects_unknown_topology(self):
        from repro.workloads import topology_stress_workload

        with pytest.raises(ValueError, match="unknown topology"):
            topology_stress_workload("torus", random_state=0)

    @pytest.mark.parametrize("topology", ["line", "ring", "star", "tree", "grid", "complete"])
    def test_topology_stress_all_shapes(self, topology):
        from repro.workloads import topology_stress_workload

        instance = topology_stress_workload(topology, num_requests=20, random_state=0)
        assert instance.num_requests == 20


class TestTraceFormat:
    def test_round_trip_preserves_everything(self, tmp_path):
        instance = build_scenario("bursty", random_state=9, num_requests=60)
        path = record_trace(instance, tmp_path / "bursty.jsonl")
        replayed = load_trace(path)
        assert replayed.name == instance.name
        assert replayed.capacities == instance.capacities
        assert list(replayed.capacities) == list(instance.capacities)  # interning order
        assert request_tuples(replayed) == request_tuples(instance)

    def test_trace_is_byte_deterministic(self, tmp_path):
        instance = build_scenario("flash_crowd", random_state=2, num_requests=40)
        assert list(trace_lines(instance)) == list(trace_lines(instance))

    def test_tuple_edge_ids_round_trip(self, tmp_path):
        # Network workloads use (u, v) tuple edge ids; the tagged-list
        # encoding must bring them back as tuples.
        instance = build_scenario("random_paths", random_state=4, num_requests=30)
        path = tmp_path / "paths.jsonl"
        dump_admission_trace(instance, str(path))
        replayed = load_admission_trace(str(path))
        assert replayed.capacities == instance.capacities
        assert request_tuples(replayed) == request_tuples(instance)

    def test_rejects_wrong_kind_and_schema(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            load_admission_trace(['{"kind": "nope", "schema": 1}'])
        with pytest.raises(ValueError, match="schema"):
            load_admission_trace(['{"kind": "admission-trace", "schema": 99, "capacities": []}'])
        with pytest.raises(ValueError, match="empty trace"):
            load_admission_trace([])

    def test_scenario_from_trace_registers_and_replays(self, tmp_path):
        instance = build_scenario("cheap_expensive")
        path = record_trace(instance, tmp_path / "trap.jsonl")
        scenario = scenario_from_trace(path, register=False)
        assert scenario.key == "trace:trap"
        assert request_tuples(scenario.build()) == request_tuples(instance)
        # random_state is accepted and ignored: a trace is deterministic.
        assert request_tuples(scenario.build(random_state=123)) == request_tuples(instance)

    def test_scenario_from_trace_registration_is_strict(self, tmp_path):
        instance = build_scenario("cheap_expensive")
        path = record_trace(instance, tmp_path / "strict.jsonl")
        scenario = scenario_from_trace(path, key="trace-strict-test")
        try:
            assert isinstance(get_scenario("trace-strict-test"), Scenario)
            with pytest.raises(DuplicateKeyError):
                scenario_from_trace(path, key="trace-strict-test")
        finally:
            SCENARIOS.unregister(scenario.key)

    def test_missing_trace_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scenario_from_trace(tmp_path / "absent.jsonl")

    def test_trace_scenario_is_picklable(self, tmp_path):
        instance = build_scenario("cheap_expensive")
        path = record_trace(instance, tmp_path / "pickle.jsonl")
        scenario = scenario_from_trace(path, register=False)
        clone = pickle.loads(pickle.dumps(scenario))
        assert request_tuples(clone.build()) == request_tuples(instance)


class TestTraceReplayEquivalence:
    """Record -> replay must reproduce decision logs exactly (both backends)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("record", [True, False])
    def test_fractional_replay_identical(self, tmp_path, backend, record):
        instance = build_scenario("zipf_costs", random_state=6, num_requests=80)
        replayed = load_trace(record_trace(instance, tmp_path / "frac.jsonl"))
        original = FractionalAdmissionControl.for_instance(
            instance, backend=backend, record=record
        )
        original.process_sequence(compile_instance(instance))
        replay = FractionalAdmissionControl.for_instance(
            replayed, backend=backend, record=record
        )
        replay.process_sequence(compile_instance(replayed))
        assert original.fractional_cost() == pytest.approx(replay.fractional_cost(), abs=TOL)
        fa, fb = original.fractions(), replay.fractions()
        assert set(fa) == set(fb)
        for rid in fa:
            assert fa[rid] == pytest.approx(fb[rid], abs=TOL), rid

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_replay_decision_logs_identical(self, tmp_path, backend, seed):
        instance = build_scenario("bursty", random_state=seed, num_requests=80)
        replayed = load_trace(record_trace(instance, tmp_path / f"rand{seed}.jsonl"))

        def decisions(inst):
            algo = RandomizedAdmissionControl.for_instance(
                inst, random_state=seed, backend=backend
            )
            result = run_admission(algo, inst, compiled=compile_instance(inst))
            return (
                [(d.request_id, d.kind, d.at_request) for d in result.decisions],
                result.rejection_cost,
            )

        log_a, cost_a = decisions(instance)
        log_b, cost_b = decisions(replayed)
        assert log_a == log_b
        assert cost_a == pytest.approx(cost_b, abs=TOL)
