"""Equivalence pins: `Runner.run(RunSpec(...))` reproduces every legacy path.

The facade owns no numerics: a spec in ``batch`` / ``compiled`` /
``streaming`` mode must reproduce the decision logs and competitive ratios of
the corresponding legacy entry point (direct ``run_admission``, the compiled
fast path, a hand-driven :class:`StreamingSession`), and a ``RunSpec.grid``
must reproduce :class:`ScenarioSweep` — at 1e-9, on both weight backends.
"""

import warnings

import pytest

from repro.analysis.competitive import evaluate_admission_run
from repro.api import Runner, RunSpec
from repro.core.protocols import run_admission
from repro.engine.config import EngineConfig
from repro.engine.executor import derive_seed_pairs
from repro.engine.runtime import make_admission_algorithm
from repro.engine.streaming import StreamingSession
from repro.instances.compiled import compile_instance
from repro.utils.rng import as_generator
from repro.workloads import bursty_workload

BACKENDS = ["python", "numpy"]
SEEDS = [3, 11, 20050718]


def make_instance(seed=7):
    return bursty_workload(num_edges=12, num_requests=90, capacity=3, random_state=seed)


def capture_decisions(instance, algorithm):
    """Probe: the full decision log as comparable tuples."""
    return {
        "decisions": [
            (d.request_id, str(d.kind), d.at_request) for d in algorithm.decisions()
        ]
    }


def legacy_algorithm(instance, key, master_seed, backend, **kwargs):
    """Build the algorithm with the exact rng a single-trial spec derives."""
    _, algo_seed = derive_seed_pairs(master_seed, 1)[0]
    return make_admission_algorithm(
        key, instance, random_state=as_generator(algo_seed),
        backend=EngineConfig(backend=backend), **kwargs
    )


def decision_log(result):
    return [(d.request_id, str(d.kind), d.at_request) for d in result.decisions]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
class TestBatchAndCompiledEquivalence:
    def run_spec(self, instance, mode, backend, seed):
        [row] = Runner().run(
            RunSpec(
                instance=instance, algorithm="doubling", backend=backend,
                mode=mode, trials=1, seed=seed, offline="lp",
                probe=capture_decisions,
            )
        )
        return row

    def test_batch_mode_matches_direct_run(self, backend, seed):
        instance = make_instance()
        row = self.run_spec(instance, "batch", backend, seed)
        algorithm = legacy_algorithm(instance, "doubling", seed, backend)
        result = run_admission(algorithm, instance)
        record = evaluate_admission_run(instance, result, offline="lp")
        assert row.extra["decisions"] == decision_log(result)
        assert row.online_cost == pytest.approx(record.online_cost, abs=1e-9)
        assert row.ratio == pytest.approx(record.ratio, abs=1e-9)

    def test_compiled_mode_matches_compiled_run(self, backend, seed):
        instance = make_instance()
        row = self.run_spec(instance, "compiled", backend, seed)
        algorithm = legacy_algorithm(instance, "doubling", seed, backend)
        result = run_admission(algorithm, instance, compiled=compile_instance(instance))
        record = evaluate_admission_run(instance, result, offline="lp")
        assert row.extra["decisions"] == decision_log(result)
        assert row.online_cost == pytest.approx(record.online_cost, abs=1e-9)
        assert row.ratio == pytest.approx(record.ratio, abs=1e-9)

    def test_streaming_mode_matches_session(self, backend, seed):
        instance = make_instance()
        row = self.run_spec(instance, "streaming", backend, seed)
        algorithm = legacy_algorithm(instance, "doubling", seed, backend)
        session = StreamingSession(
            instance.capacities, algorithm=algorithm, name=instance.name
        )
        session.submit_stream(iter(instance.requests))
        result = algorithm.result()
        record = evaluate_admission_run(instance, result, offline="lp")
        assert row.extra["decisions"] == decision_log(result)
        assert row.online_cost == pytest.approx(record.online_cost, abs=1e-9)
        assert row.ratio == pytest.approx(record.ratio, abs=1e-9)


@pytest.mark.parametrize("backend", BACKENDS)
class TestModeCrossEquivalence:
    """The three execution modes agree with each other on every algorithm."""

    @pytest.mark.parametrize("algorithm", ["fractional", "randomized", "doubling"])
    def test_modes_agree(self, backend, algorithm):
        instance = make_instance()
        ratios = {}
        for mode in ("batch", "compiled", "streaming"):
            results = Runner().run(
                RunSpec(
                    instance=instance, algorithm=algorithm, backend=backend,
                    mode=mode, trials=2, seed=5, offline="lp",
                )
            )
            ratios[mode] = results.ratios()
        assert ratios["batch"] == pytest.approx(ratios["compiled"], abs=1e-9)
        assert ratios["batch"] == pytest.approx(ratios["streaming"], abs=1e-9)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSweepEquivalence:
    def test_grid_reproduces_scenario_sweep(self, backend):
        kwargs = dict(
            scenarios=["cheap_expensive", "bursty"],
            algorithms=["fractional", "randomized"],
            backend=backend, num_trials=2, seed=13, offline="lp",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.engine.sweep import ScenarioSweep

            legacy = ScenarioSweep(**kwargs).run()
        grid = RunSpec.grid(
            kwargs["scenarios"], kwargs["algorithms"], backends=[backend],
            seed=13, trials=2, offline="lp",
        )
        results = Runner().run(grid)
        for (scenario, algorithm), summary in legacy.summaries.items():
            cell = results.filter(source=scenario, algorithm=algorithm)
            assert cell.ratios() == pytest.approx(summary.ratios(), abs=1e-9)
            assert [r.online_cost for r in cell] == pytest.approx(
                [rec.online_cost for rec in summary.records], abs=1e-9
            )

    def test_trials_deprecated_runner_matches_facade(self, backend):
        """run_admission_trials (the deprecated batch-trials path) == facade."""
        from repro.analysis.trials import run_admission_trials

        def factory(rng):
            return bursty_workload(num_edges=10, num_requests=60, capacity=3, random_state=rng)

        def algorithm_factory(instance, rng):
            return make_admission_algorithm(
                "randomized", instance, random_state=rng,
                backend=EngineConfig(backend=backend),
            )

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_admission_trials(
                factory, algorithm_factory, num_trials=3, random_state=21,
                offline="lp", jobs=1,
            )
        results = Runner().run(
            RunSpec(
                factory=factory, algorithm=algorithm_factory, backend=backend,
                mode="compiled", trials=3, seed=21, offline="lp",
            )
        )
        assert results.ratios() == pytest.approx(legacy.ratios(), abs=1e-9)


class TestCliRoutesThroughFacade:
    def test_repro_run_uses_facade(self, monkeypatch):
        """`repro run E1` executes through Runner.run_summary."""
        import io

        from repro.api import runner as runner_module
        from repro.cli import main

        calls = []
        original = runner_module.Runner.run_summary

        def spy(self, spec):
            calls.append(spec)
            return original(self, spec)

        monkeypatch.setattr(runner_module.Runner, "run_summary", spy)
        out = io.StringIO()
        code = main(["run", "E1", "--quick", "--trials", "1"], out=out)
        assert code == 0
        assert calls, "repro run must dispatch through the run-spec facade"

    def test_repro_sweep_uses_facade(self, monkeypatch):
        import io

        from repro.api import runner as runner_module
        from repro.cli import main

        calls = []
        original = runner_module.Runner.run_summary

        def spy(self, spec):
            calls.append(spec)
            return original(self, spec)

        monkeypatch.setattr(runner_module.Runner, "run_summary", spy)
        out = io.StringIO()
        code = main(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms",
             "fractional", "--trials", "1"],
            out=out,
        )
        assert code == 0
        assert len(calls) == 1
        assert calls[0].source_key == "cheap_expensive"
