"""Tests for the canonical instances and the JSON serialisation round-trip."""

import pytest

from repro.instances import canonical, serialize
from repro.offline import solve_admission_ilp, solve_set_multicover_ilp


class TestCanonicalAdmission:
    """The canonical instances have the optima their docstrings claim."""

    def test_single_edge_overload_optimum(self):
        instance = canonical.single_edge_overload(extra=3, capacity=2)
        assert solve_admission_ilp(instance).cost == pytest.approx(3.0)

    def test_two_edge_chain_optimum(self):
        assert solve_admission_ilp(canonical.two_edge_chain()).cost == pytest.approx(1.0)

    def test_star_congestion_optimum(self):
        instance = canonical.star_congestion(leaves=5, capacity=2)
        assert solve_admission_ilp(instance).cost == pytest.approx(3.0)

    def test_disjoint_paths_optimum_is_zero(self):
        instance = canonical.disjoint_paths_no_rejection(paths=4)
        assert solve_admission_ilp(instance).cost == 0.0

    def test_triangle_weighted_optimum(self):
        assert solve_admission_ilp(canonical.triangle_weighted()).cost == pytest.approx(1.0)


class TestCanonicalSetCover:
    def test_small_set_cover_optimum(self):
        instance = canonical.small_set_cover()
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(2.0)

    def test_repetition_set_cover_optimum(self):
        instance = canonical.repetition_set_cover()
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(3.0)

    def test_nested_set_cover_optimum_is_one(self):
        instance = canonical.nested_set_cover(levels=5)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(1.0)

    def test_nested_levels_validated(self):
        assert canonical.nested_set_cover(levels=3).system.num_sets == 3


class TestSerializationAdmission:
    def test_round_trip_preserves_structure(self, weighted_instance):
        payload = serialize.admission_to_dict(weighted_instance)
        rebuilt = serialize.admission_from_dict(payload)
        assert rebuilt.capacities == weighted_instance.capacities
        assert rebuilt.num_requests == weighted_instance.num_requests
        assert rebuilt.requests.cost_by_id() == weighted_instance.requests.cost_by_id()

    def test_round_trip_preserves_optimum(self, star_instance):
        rebuilt = serialize.admission_from_dict(serialize.admission_to_dict(star_instance))
        assert solve_admission_ilp(rebuilt).cost == solve_admission_ilp(star_instance).cost

    def test_file_round_trip(self, tmp_path, chain_instance):
        path = tmp_path / "instance.json"
        serialize.dump_admission(chain_instance, str(path))
        rebuilt = serialize.load_admission(str(path))
        assert rebuilt.num_requests == chain_instance.num_requests

    def test_tuple_edge_ids_round_trip(self):
        from repro.instances.admission import AdmissionInstance
        from repro.instances.request import Request

        instance = AdmissionInstance(
            {("u", "v"): 1}, [Request(0, {("u", "v")}, 1.0)], name="tuple-edges"
        )
        rebuilt = serialize.admission_from_dict(serialize.admission_to_dict(instance))
        assert ("u", "v") in rebuilt.capacities

    def test_wrong_kind_rejected(self, small_cover_instance):
        payload = serialize.setcover_to_dict(small_cover_instance)
        with pytest.raises(ValueError):
            serialize.admission_from_dict(payload)


class TestSerializationSetCover:
    def test_round_trip_preserves_structure(self, small_cover_instance):
        payload = serialize.setcover_to_dict(small_cover_instance)
        rebuilt = serialize.setcover_from_dict(payload)
        assert rebuilt.system.num_sets == small_cover_instance.system.num_sets
        assert rebuilt.arrivals == small_cover_instance.arrivals
        assert rebuilt.demands() == small_cover_instance.demands()

    def test_file_round_trip(self, tmp_path, repetition_instance):
        path = tmp_path / "cover.json"
        serialize.dump_setcover(repetition_instance, str(path))
        rebuilt = serialize.load_setcover(str(path))
        assert rebuilt.max_repetitions() == 3

    def test_wrong_kind_rejected(self, star_instance):
        payload = serialize.admission_to_dict(star_instance)
        with pytest.raises(ValueError):
            serialize.setcover_from_dict(payload)

    def test_unsupported_id_type_raises(self):
        from repro.instances.serialize import _encode_id

        with pytest.raises(TypeError):
            _encode_id(object())
