"""Tests for the canonical instances and the JSON serialisation round-trip."""

import pytest

from repro.instances import canonical, serialize
from repro.offline import solve_admission_ilp, solve_set_multicover_ilp


class TestCanonicalAdmission:
    """The canonical instances have the optima their docstrings claim."""

    def test_single_edge_overload_optimum(self):
        instance = canonical.single_edge_overload(extra=3, capacity=2)
        assert solve_admission_ilp(instance).cost == pytest.approx(3.0)

    def test_two_edge_chain_optimum(self):
        assert solve_admission_ilp(canonical.two_edge_chain()).cost == pytest.approx(1.0)

    def test_star_congestion_optimum(self):
        instance = canonical.star_congestion(leaves=5, capacity=2)
        assert solve_admission_ilp(instance).cost == pytest.approx(3.0)

    def test_disjoint_paths_optimum_is_zero(self):
        instance = canonical.disjoint_paths_no_rejection(paths=4)
        assert solve_admission_ilp(instance).cost == 0.0

    def test_triangle_weighted_optimum(self):
        assert solve_admission_ilp(canonical.triangle_weighted()).cost == pytest.approx(1.0)


class TestCanonicalSetCover:
    def test_small_set_cover_optimum(self):
        instance = canonical.small_set_cover()
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(2.0)

    def test_repetition_set_cover_optimum(self):
        instance = canonical.repetition_set_cover()
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(3.0)

    def test_nested_set_cover_optimum_is_one(self):
        instance = canonical.nested_set_cover(levels=5)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(1.0)

    def test_nested_levels_validated(self):
        assert canonical.nested_set_cover(levels=3).system.num_sets == 3


class TestSerializationAdmission:
    def test_round_trip_preserves_structure(self, weighted_instance):
        payload = serialize.admission_to_dict(weighted_instance)
        rebuilt = serialize.admission_from_dict(payload)
        assert rebuilt.capacities == weighted_instance.capacities
        assert rebuilt.num_requests == weighted_instance.num_requests
        assert rebuilt.requests.cost_by_id() == weighted_instance.requests.cost_by_id()

    def test_round_trip_preserves_optimum(self, star_instance):
        rebuilt = serialize.admission_from_dict(serialize.admission_to_dict(star_instance))
        assert solve_admission_ilp(rebuilt).cost == solve_admission_ilp(star_instance).cost

    def test_file_round_trip(self, tmp_path, chain_instance):
        path = tmp_path / "instance.json"
        serialize.dump_admission(chain_instance, str(path))
        rebuilt = serialize.load_admission(str(path))
        assert rebuilt.num_requests == chain_instance.num_requests

    def test_tuple_edge_ids_round_trip(self):
        from repro.instances.admission import AdmissionInstance
        from repro.instances.request import Request

        instance = AdmissionInstance(
            {("u", "v"): 1}, [Request(0, {("u", "v")}, 1.0)], name="tuple-edges"
        )
        rebuilt = serialize.admission_from_dict(serialize.admission_to_dict(instance))
        assert ("u", "v") in rebuilt.capacities

    def test_wrong_kind_rejected(self, small_cover_instance):
        payload = serialize.setcover_to_dict(small_cover_instance)
        with pytest.raises(ValueError):
            serialize.admission_from_dict(payload)


class TestSerializationSetCover:
    def test_round_trip_preserves_structure(self, small_cover_instance):
        payload = serialize.setcover_to_dict(small_cover_instance)
        rebuilt = serialize.setcover_from_dict(payload)
        assert rebuilt.system.num_sets == small_cover_instance.system.num_sets
        assert rebuilt.arrivals == small_cover_instance.arrivals
        assert rebuilt.demands() == small_cover_instance.demands()

    def test_file_round_trip(self, tmp_path, repetition_instance):
        path = tmp_path / "cover.json"
        serialize.dump_setcover(repetition_instance, str(path))
        rebuilt = serialize.load_setcover(str(path))
        assert rebuilt.max_repetitions() == 3

    def test_wrong_kind_rejected(self, star_instance):
        payload = serialize.admission_to_dict(star_instance)
        with pytest.raises(ValueError):
            serialize.setcover_from_dict(payload)

    def test_unsupported_id_type_raises(self):
        from repro.instances.serialize import _encode_id

        with pytest.raises(TypeError):
            _encode_id(object())


class TestTraceLoaderHardening:
    """The JSONL trace loader fails loudly (TraceFormatError) on malformed input."""

    def _trace_lines(self, instance):
        return list(serialize.trace_lines(instance))

    @pytest.fixture
    def instance(self, weighted_instance):
        return weighted_instance

    def test_trailing_blank_lines_tolerated(self, instance):
        lines = self._trace_lines(instance) + ["", "   ", "\n"]
        rebuilt = serialize.load_admission_trace(lines)
        assert rebuilt.num_requests == instance.num_requests

    def test_interior_blank_lines_tolerated(self, instance):
        lines = self._trace_lines(instance)
        lines.insert(1, "")
        lines.insert(3, "   \n")
        rebuilt = serialize.load_admission_trace(lines)
        assert rebuilt.num_requests == instance.num_requests

    def test_duplicate_header_rejected(self, instance):
        lines = self._trace_lines(instance)
        lines.insert(2, lines[0])  # a second header mid-stream
        with pytest.raises(serialize.TraceFormatError, match="duplicate header"):
            serialize.load_admission_trace(lines)

    def test_unknown_schema_version_rejected(self, instance):
        lines = self._trace_lines(instance)
        header = lines[0].replace('"schema": 1', '"schema": 99')
        with pytest.raises(serialize.TraceFormatError, match="schema"):
            serialize.load_admission_trace([header] + lines[1:])

    def test_wrong_kind_rejected(self):
        with pytest.raises(serialize.TraceFormatError, match="kind"):
            serialize.load_admission_trace(['{"kind": "nope", "schema": 1}'])

    def test_empty_trace_rejected(self):
        with pytest.raises(serialize.TraceFormatError, match="empty trace"):
            serialize.load_admission_trace([])
        with pytest.raises(serialize.TraceFormatError, match="empty trace"):
            serialize.load_admission_trace(["", "  "])

    def test_invalid_json_line_reports_line_number(self, instance):
        lines = self._trace_lines(instance)
        lines.insert(1, "{not json")
        with pytest.raises(serialize.TraceFormatError, match="line 2"):
            serialize.load_admission_trace(lines)

    def test_missing_request_fields_rejected(self, instance):
        lines = self._trace_lines(instance)
        lines.append('{"id": 999, "edges": ["a"]}')  # no cost
        with pytest.raises(serialize.TraceFormatError, match="missing fields"):
            serialize.load_admission_trace(lines)

    def test_non_object_request_line_rejected(self, instance):
        lines = self._trace_lines(instance)
        lines.append("[1, 2, 3]")
        with pytest.raises(serialize.TraceFormatError, match="JSON object"):
            serialize.load_admission_trace(lines)

    def test_trace_format_error_is_a_value_error(self):
        # Backwards compatibility: callers that caught ValueError keep working.
        assert issubclass(serialize.TraceFormatError, ValueError)

    def test_stream_reads_header_eagerly_and_requests_lazily(self, instance, tmp_path):
        path = tmp_path / "t.jsonl"
        serialize.dump_admission_trace(instance, str(path))
        stream = serialize.stream_admission_trace(str(path))
        assert stream.capacities == instance.capacities
        first = next(iter(stream))
        assert first.request_id == instance.requests[0].request_id
        stream.close()

    def test_stream_second_iteration_rejected(self, instance):
        stream = serialize.stream_admission_trace(serialize.trace_lines(instance))
        assert len(list(stream)) == instance.num_requests
        with pytest.raises(ValueError, match="already consumed"):
            list(stream)

    def test_stream_skip_advances_without_parsing(self, instance):
        lines = list(serialize.trace_lines(instance))
        # Corrupt a line inside the skipped prefix: skip must not parse it.
        lines[1] = "{definitely not json"
        stream = serialize.stream_admission_trace(lines)
        assert stream.skip(1) == 1
        rest = list(stream)
        assert [r.request_id for r in rest] == [
            r.request_id for r in list(instance.requests)[1:]
        ]
        with pytest.raises(ValueError):
            serialize.stream_admission_trace(lines).skip(-1)

    def test_stream_skip_past_end_returns_short_count(self, instance):
        stream = serialize.stream_admission_trace(serialize.trace_lines(instance))
        assert stream.skip(instance.num_requests + 50) == instance.num_requests
