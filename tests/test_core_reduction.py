"""Tests for the Section-4 reduction (online set cover with repetitions -> admission control)."""

import pytest

from repro.core.protocols import run_setcover
from repro.core.randomized import RandomizedAdmissionControl
from repro.core.setcover_reduction import (
    PHASE1_TAG,
    PHASE2_TAG,
    OnlineSetCoverViaAdmissionControl,
    admission_instance_from_setcover,
    build_reduction,
    element_edge,
)
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.offline import solve_set_multicover_ilp
from repro.workloads import nested_family_instance, random_setcover_instance
from repro.workloads.setcover_random import random_set_system, repetition_heavy_arrivals


class TestBuildReduction:
    def test_capacities_equal_degrees(self, simple_system):
        capacities, phase1, mapping = build_reduction(simple_system)
        for element in simple_system.elements():
            assert capacities[element_edge(element)] == simple_system.degree(element)

    def test_one_phase1_request_per_set(self, simple_system):
        capacities, phase1, mapping = build_reduction(simple_system)
        assert len(phase1) == simple_system.num_sets
        assert set(mapping.values()) == set(simple_system.set_ids())
        for request in phase1:
            assert request.tag == PHASE1_TAG
            set_id = mapping[request.request_id]
            assert request.edges == frozenset(
                element_edge(j) for j in simple_system.members(set_id)
            )
            assert request.cost == pytest.approx(simple_system.cost(set_id))

    def test_maximum_capacity_at_most_m(self, random_cover_instance):
        capacities, _, _ = build_reduction(random_cover_instance.system)
        assert max(capacities.values()) <= random_cover_instance.system.num_sets


class TestMaterializedInstance:
    def test_phase_structure(self, small_cover_instance):
        instance = admission_instance_from_setcover(small_cover_instance)
        m = small_cover_instance.system.num_sets
        assert instance.num_requests == m + small_cover_instance.num_arrivals
        phase1 = [r for r in instance.requests if r.tag == PHASE1_TAG]
        phase2 = [r for r in instance.requests if r.tag == PHASE2_TAG]
        assert len(phase1) == m
        assert len(phase2) == small_cover_instance.num_arrivals
        assert all(r.num_edges == 1 for r in phase2)

    def test_phase1_alone_is_feasible(self, small_cover_instance):
        instance = admission_instance_from_setcover(small_cover_instance)
        phase1_ids = [r.request_id for r in instance.requests if r.tag == PHASE1_TAG]
        assert instance.check_feasible(phase1_ids).feasible


class TestOnlineSetCoverViaAdmission:
    def test_phase1_all_accepted_initially(self, simple_system):
        solver = OnlineSetCoverViaAdmissionControl(simple_system, random_state=0)
        # No element has arrived yet, so nothing should have been purchased.
        assert solver.chosen_sets() == frozenset()
        assert solver.cost() == 0.0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_demands_always_satisfied(self, seed):
        instance = random_setcover_instance(25, 12, 50, random_state=seed)
        solver = OnlineSetCoverViaAdmissionControl(instance.system, random_state=seed)
        result = run_setcover(solver, instance)
        assert result.satisfied
        for element, demand in instance.demands().items():
            assert result.coverage[element] >= demand

    def test_coverage_maintained_after_each_arrival(self):
        instance = random_setcover_instance(15, 8, 30, random_state=5)
        solver = OnlineSetCoverViaAdmissionControl(instance.system, random_state=5)
        demands = {}
        for element in instance.arrivals:
            solver.process_element(element)
            demands[element] = demands.get(element, 0) + 1
            for e, k in demands.items():
                assert solver.coverage(e) >= k

    def test_repetitions_covered_by_distinct_sets(self, repetition_instance):
        solver = OnlineSetCoverViaAdmissionControl(repetition_instance.system, random_state=1)
        result = run_setcover(solver, repetition_instance)
        covering = repetition_instance.system.sets_containing(1) & result.chosen_sets
        assert len(covering) >= 3

    def test_admission_stays_feasible(self, random_cover_instance):
        solver = OnlineSetCoverViaAdmissionControl(random_cover_instance.system, random_state=2)
        result = run_setcover(solver, random_cover_instance)
        assert result.extra["admission_feasible"]

    def test_cost_bounded_by_total_family_cost(self, random_cover_instance):
        solver = OnlineSetCoverViaAdmissionControl(random_cover_instance.system, random_state=3)
        result = run_setcover(solver, random_cover_instance)
        assert result.cost <= random_cover_instance.system.total_cost() + 1e-9

    def test_reasonable_ratio_on_nested_family(self):
        instance = nested_family_instance(10)
        solver = OnlineSetCoverViaAdmissionControl(instance.system, random_state=4)
        result = run_setcover(solver, instance)
        opt = solve_set_multicover_ilp(instance.system, instance.demands())
        assert opt.cost == pytest.approx(1.0)
        # Polylog bound with a generous constant.
        assert result.cost <= 10 * 4 * 4

    def test_doubling_backend(self, small_cover_instance):
        solver = OnlineSetCoverViaAdmissionControl(
            small_cover_instance.system, algorithm="doubling", random_state=0
        )
        result = run_setcover(solver, small_cover_instance)
        assert result.satisfied

    def test_custom_factory_backend(self, small_cover_instance):
        def factory(capacities):
            return RandomizedAdmissionControl(
                capacities, weighted=False, force_accept_tags={PHASE2_TAG}, random_state=7
            )

        solver = OnlineSetCoverViaAdmissionControl(small_cover_instance.system, algorithm=factory)
        result = run_setcover(solver, small_cover_instance)
        assert result.satisfied

    def test_unknown_backend_rejected(self, simple_system):
        with pytest.raises(ValueError):
            OnlineSetCoverViaAdmissionControl(simple_system, algorithm="magic")

    def test_weighted_systems_supported(self):
        system = SetSystem({"cheap": {1, 2}, "costly": {1, 2}}, {"cheap": 1.0, "costly": 10.0})
        instance = SetCoverInstance(system, [1, 2])
        solver = OnlineSetCoverViaAdmissionControl(system, random_state=0)
        result = run_setcover(solver, instance)
        assert result.satisfied

    def test_weighted_inference(self, simple_system):
        solver = OnlineSetCoverViaAdmissionControl(simple_system, random_state=0)
        assert not solver.weighted

    def test_repetition_heavy_workload(self):
        system = random_set_system(20, 10, 0.4, random_state=8)
        arrivals = repetition_heavy_arrivals(system, random_state=8)
        instance = SetCoverInstance(system, arrivals)
        solver = OnlineSetCoverViaAdmissionControl(system, random_state=8)
        result = run_setcover(solver, instance)
        assert result.satisfied
