"""Tests for the command-line interface (python -m repro ...)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert not args.quick
        assert args.trials == 3

    def test_demo_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "unknown"])


class TestListCommand:
    def test_lists_all_ten_experiments(self):
        code, output = run_cli(["list"])
        assert code == 0
        for k in range(1, 11):
            assert f"E{k}" in output

    def test_lists_every_registry_section(self):
        code, output = run_cli(["list"])
        assert code == 0
        for heading in ("[experiments]", "[admission algorithms]", "[set-cover algorithms]",
                        "[streaming algorithms]", "[scenarios]", "[weight backends]",
                        "[routing strategies]"):
            assert heading in output
        assert "fractional" in output
        assert "bursty" in output
        assert "numpy" in output
        assert "least_loaded" in output

    def test_list_single_section(self):
        code, output = run_cli(["list", "backends"])
        assert code == 0
        assert output.split() == ["numpy", "python"]

    def test_list_strategies_section(self):
        code, output = run_cli(["list", "strategies"])
        assert code == 0
        assert output.split() == ["cost_aware", "least_loaded", "namespace", "round_robin"]

    def test_list_algorithms_keeps_registry_headings(self):
        # Keys like "doubling" appear in several registries; the headings are
        # what disambiguates them whenever more than one section prints.
        code, output = run_cli(["list", "algorithms"])
        assert code == 0
        for heading in ("[admission algorithms]", "[set-cover algorithms]",
                        "[streaming algorithms]"):
            assert heading in output

    def test_list_scenarios_matches_sweep_list_alias(self):
        code_new, scenarios = run_cli(["list", "scenarios"])
        code_old, alias = run_cli(["sweep", "--list"])
        assert code_new == code_old == 0
        assert scenarios == alias

    def test_list_rejects_unknown_section(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "nonsense"])


class TestRunCommand:
    def test_run_single_experiment_quick(self):
        code, output = run_cli(["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5"])
        assert code == 0
        assert "[E2]" in output
        assert "Lemma 1" in output

    def test_run_lowercase_id(self):
        code, output = run_cli(["run", "e10", "--quick", "--trials", "1"])
        assert code == 0
        assert "[E10]" in output

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_cli(["run", "E42", "--quick"])


class TestDemoCommand:
    def test_admission_demo(self):
        code, output = run_cli(["demo", "admission", "--seed", "1"])
        assert code == 0
        assert "Admission control vs offline optimum" in output
        assert "DoublingAdmissionControl" in output

    def test_setcover_demo(self):
        code, output = run_cli(["demo", "setcover", "--seed", "1"])
        assert code == 0
        assert "Online set cover with repetitions" in output

    def test_demo_numpy_backend(self):
        code, output = run_cli(["demo", "admission", "--seed", "1", "--backend", "numpy"])
        assert code == 0
        assert "Admission control vs offline optimum" in output


class TestEngineFlags:
    def test_run_backend_and_jobs_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.backend == "python"
        assert args.jobs == 1

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--backend", "cuda"])

    def test_run_with_numpy_backend(self):
        code, output = run_cli(
            ["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5",
             "--backend", "numpy"]
        )
        assert code == 0
        assert "[E2]" in output

    def test_run_single_with_jobs(self):
        code, output = run_cli(
            ["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5", "--jobs", "2"]
        )
        assert code == 0
        assert "[E2]" in output


class TestSweepCommand:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios == "bursty,zipf_costs,flash_crowd"
        assert args.algorithms == "fractional,randomized,doubling"
        assert args.offline == "lp"
        assert args.jobs == 1

    def test_sweep_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "cuda"])

    def test_sweep_list_scenarios(self):
        code, output = run_cli(["sweep", "--list"])
        assert code == 0
        for key in ("bursty", "zipf_costs", "flash_crowd", "diurnal", "topology_stress"):
            assert key in output

    def test_sweep_small_matrix(self):
        code, output = run_cli(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms",
             "fractional,reject-when-full", "--trials", "1", "--seed", "3"]
        )
        assert code == 0
        assert "Cross-scenario comparison" in output
        assert "cheap_expensive" in output
        assert "ratio[fractional]" in output
        assert "ratio[reject-when-full]" in output

    def test_sweep_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="scenario"):
            run_cli(["sweep", "--scenarios", "no-such-scenario", "--algorithms", "fractional"])

    def test_sweep_out_writes_json(self, tmp_path):
        import json

        out_path = tmp_path / "sweep.json"
        code, output = run_cli(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms", "reject-when-full",
             "--trials", "1", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenarios"] == ["cheap_expensive"]
        assert payload["algorithms"] == ["reject-when-full"]
        assert len(payload["cells"]) == 1

    def test_sweep_replays_recorded_trace(self, tmp_path):
        from repro.scenarios import build_scenario, record_trace

        trace = record_trace(build_scenario("cheap_expensive"), tmp_path / "t.jsonl")
        code, output = run_cli(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms", "reject-when-full",
             "--trials", "1", "--trace", str(trace)]
        )
        assert code == 0
        assert "trace:t" in output


class TestServeCommand:
    @pytest.fixture
    def trace_path(self, tmp_path):
        from repro.scenarios import record_trace
        from repro.workloads import bursty_workload

        instance = bursty_workload(num_edges=12, num_requests=80, capacity=3, random_state=7)
        return record_trace(instance, tmp_path / "t.jsonl")

    def test_serve_whole_trace(self, trace_path):
        code, output = run_cli(
            ["serve", "--trace", str(trace_path), "--algorithm", "doubling", "--seed", "5"]
        )
        assert code == 0
        assert "processed 80 arrivals" in output
        assert '"rejection_cost"' in output

    def test_serve_checkpoint_then_resume(self, trace_path, tmp_path):
        checkpoint = tmp_path / "ck.json"
        log = tmp_path / "log.jsonl"
        code, _ = run_cli(
            ["serve", "--trace", str(trace_path), "--algorithm", "randomized",
             "--backend", "numpy", "--seed", "3", "--checkpoint", str(checkpoint),
             "--max-arrivals", "40", "--log", str(log)]
        )
        assert code == 0
        assert checkpoint.exists()
        code, output = run_cli(
            ["serve", "--trace", str(trace_path), "--resume",
             "--checkpoint", str(checkpoint), "--log", str(log)]
        )
        assert code == 0
        assert "resumed at arrival 40" in output
        full_log = tmp_path / "full.jsonl"
        code, _ = run_cli(
            ["serve", "--trace", str(trace_path), "--algorithm", "randomized",
             "--backend", "numpy", "--seed", "3", "--log", str(full_log)]
        )
        assert code == 0
        assert log.read_text() == full_log.read_text()

    def test_serve_sharded(self, tmp_path):
        from repro.scenarios import record_trace
        from repro.workloads import adversarial_mix_workload

        trace = record_trace(
            adversarial_mix_workload(num_edges=8, capacity=2, random_state=3),
            tmp_path / "mix.jsonl",
        )
        code, output = run_cli(
            ["serve", "--trace", str(trace), "--shards", "3", "--algorithm", "doubling"]
        )
        assert code == 0
        assert '"num_shards": 3' in output

    def test_serve_sharded_resume_log_is_byte_identical(self, tmp_path):
        # Regression: router decision entries must come out in arrival order,
        # not shard order — shard-grouped emission made the combined log
        # depend on batch boundaries, which shift across a resume.
        from repro.scenarios import record_trace
        from repro.workloads import adversarial_mix_workload

        trace = record_trace(
            adversarial_mix_workload(num_edges=8, capacity=2, random_state=3),
            tmp_path / "mix.jsonl",
        )
        checkpoint = tmp_path / "ck.json"
        log = tmp_path / "log.jsonl"
        base = ["serve", "--trace", str(trace), "--shards", "3",
                "--algorithm", "doubling", "--seed", "2"]
        code, _ = run_cli(
            base + ["--checkpoint", str(checkpoint), "--max-arrivals", "30",
                    "--log", str(log)]
        )
        assert code == 0
        code, _ = run_cli(
            ["serve", "--trace", str(trace), "--shards", "3", "--resume",
             "--checkpoint", str(checkpoint), "--log", str(log)]
        )
        assert code == 0
        full_log = tmp_path / "full.jsonl"
        code, _ = run_cli(base + ["--log", str(full_log)])
        assert code == 0
        assert log.read_text() == full_log.read_text()

    def test_serve_resume_truncates_replayed_log_lines(self, trace_path, tmp_path):
        # Regression: decisions between the last checkpoint and an interrupt
        # are reprocessed on resume; their already-flushed log lines must be
        # truncated, not duplicated.
        checkpoint = tmp_path / "ck.json"
        log = tmp_path / "log.jsonl"
        code, _ = run_cli(
            ["serve", "--trace", str(trace_path), "--algorithm", "doubling",
             "--seed", "5", "--checkpoint", str(checkpoint),
             "--max-arrivals", "40", "--log", str(log)]
        )
        assert code == 0
        # Simulate a crash window: extra lines flushed after the checkpoint.
        with open(log, "a", encoding="utf-8") as fh:
            fh.write('{"event": "accept", "id": 9999}\n')
        code, _ = run_cli(
            ["serve", "--trace", str(trace_path), "--resume",
             "--checkpoint", str(checkpoint), "--log", str(log)]
        )
        assert code == 0
        full_log = tmp_path / "full.jsonl"
        code, _ = run_cli(
            ["serve", "--trace", str(trace_path), "--algorithm", "doubling",
             "--seed", "5", "--log", str(full_log)]
        )
        assert code == 0
        assert log.read_text() == full_log.read_text()

    def test_serve_resume_requires_checkpoint(self, trace_path):
        code, output = run_cli(["serve", "--trace", str(trace_path), "--resume"])
        assert code == 2
        assert "--resume requires --checkpoint" in output

    def test_serve_checkpoint_every_requires_checkpoint(self, trace_path):
        code, output = run_cli(
            ["serve", "--trace", str(trace_path), "--checkpoint-every", "50"]
        )
        assert code == 2
        assert "--checkpoint-every requires --checkpoint" in output

    def test_serve_resume_dispatches_on_checkpoint_kind(self, tmp_path):
        # Regression: a sharded checkpoint must resume as a router even when
        # --shards is not repeated (the checkpoint is self-describing).
        from repro.scenarios import record_trace
        from repro.workloads import adversarial_mix_workload

        trace = record_trace(
            adversarial_mix_workload(num_edges=8, capacity=2, random_state=3),
            tmp_path / "mix.jsonl",
        )
        checkpoint = tmp_path / "ck.json"
        code, _ = run_cli(
            ["serve", "--trace", str(trace), "--shards", "3", "--algorithm", "doubling",
             "--checkpoint", str(checkpoint), "--max-arrivals", "30"]
        )
        assert code == 0
        code, output = run_cli(
            ["serve", "--trace", str(trace), "--resume", "--checkpoint", str(checkpoint)]
        )
        assert code == 0
        assert '"num_shards": 3' in output

    def test_serve_sharded_plain_string_edges_single_namespace(self, trace_path):
        # Non-namespaced edge ids all share one namespace: sharding degrades
        # to one live shard instead of rejecting multi-edge requests.
        code, output = run_cli(
            ["serve", "--trace", str(trace_path), "--shards", "4",
             "--algorithm", "fractional"]
        )
        assert code == 0
        assert "processed 80 arrivals" in output

    def test_serve_sweep_streaming_flag_parses(self):
        args = build_parser().parse_args(["sweep", "--streaming"])
        assert args.streaming


class TestBenchCommand:
    def test_bench_without_baseline_passes(self, tmp_path):
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--stream-requests", "400", "--service-requests", "100",
             "--baseline", str(tmp_path / "missing.json")]
        )
        assert code == 0
        assert "weight_update[python]" in output
        assert "weight_update[numpy]" in output
        assert "scaling_10k[python]" in output
        assert "scaling_10k[numpy]" in output
        assert "sweep_small[python]" in output
        assert "sweep_small[numpy]" in output
        assert "service_loadtest[numpy]" in output
        assert "benchmark gate passed" in output

    def test_bench_write_then_gate_roundtrip(self, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--stream-requests", "400", "--service-requests", "100",
             "--baseline", str(baseline), "--write-baseline"]
        )
        assert code == 0
        assert baseline.exists()
        payload = json.loads(baseline.read_text())
        assert set(payload["benchmarks"]) == {
            "weight_update[python]", "weight_update[numpy]",
            "scaling_10k[python]", "scaling_10k[numpy]",
            "scaling_10k_scalar[python]", "scaling_10k_scalar[numpy]",
            "sweep_small[python]", "sweep_small[numpy]",
            "stream_resume[python]", "stream_resume[numpy]",
            "service_loadtest[numpy]",
        }
        # Inflate the stored seconds so scheduler noise on a loaded machine
        # cannot trip the 2x gate; this test checks the roundtrip wiring, the
        # regression branch is covered by test_bench_fails_on_regression.
        payload["benchmarks"] = {k: v * 10 for k, v in payload["benchmarks"].items()}
        baseline.write_text(json.dumps(payload))
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--stream-requests", "400", "--service-requests", "100",
             "--baseline", str(baseline)]
        )
        assert code == 0
        assert "benchmark gate passed" in output

    def test_bench_fails_on_regression(self, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        # A baseline claiming the benchmarks once ran in a nanosecond forces
        # the >2x regression branch deterministically.
        baseline.write_text(json.dumps({
            "schema": 1,
            "benchmarks": {
                "weight_update[python]": 1e-9,
                "weight_update[numpy]": 1e-9,
            },
        }))
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--stream-requests", "400", "--service-requests", "100",
             "--baseline", str(baseline)]
        )
        assert code == 1
        assert "FAIL" in output
