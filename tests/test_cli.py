"""Tests for the command-line interface (python -m repro ...)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert not args.quick
        assert args.trials == 3

    def test_demo_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "unknown"])


class TestListCommand:
    def test_lists_all_ten_experiments(self):
        code, output = run_cli(["list"])
        assert code == 0
        for k in range(1, 11):
            assert f"E{k}" in output


class TestRunCommand:
    def test_run_single_experiment_quick(self):
        code, output = run_cli(["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5"])
        assert code == 0
        assert "[E2]" in output
        assert "Lemma 1" in output

    def test_run_lowercase_id(self):
        code, output = run_cli(["run", "e10", "--quick", "--trials", "1"])
        assert code == 0
        assert "[E10]" in output

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_cli(["run", "E42", "--quick"])


class TestDemoCommand:
    def test_admission_demo(self):
        code, output = run_cli(["demo", "admission", "--seed", "1"])
        assert code == 0
        assert "Admission control vs offline optimum" in output
        assert "DoublingAdmissionControl" in output

    def test_setcover_demo(self):
        code, output = run_cli(["demo", "setcover", "--seed", "1"])
        assert code == 0
        assert "Online set cover with repetitions" in output
