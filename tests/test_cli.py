"""Tests for the command-line interface (python -m repro ...)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert not args.quick
        assert args.trials == 3

    def test_demo_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "unknown"])


class TestListCommand:
    def test_lists_all_ten_experiments(self):
        code, output = run_cli(["list"])
        assert code == 0
        for k in range(1, 11):
            assert f"E{k}" in output


class TestRunCommand:
    def test_run_single_experiment_quick(self):
        code, output = run_cli(["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5"])
        assert code == 0
        assert "[E2]" in output
        assert "Lemma 1" in output

    def test_run_lowercase_id(self):
        code, output = run_cli(["run", "e10", "--quick", "--trials", "1"])
        assert code == 0
        assert "[E10]" in output

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_cli(["run", "E42", "--quick"])


class TestDemoCommand:
    def test_admission_demo(self):
        code, output = run_cli(["demo", "admission", "--seed", "1"])
        assert code == 0
        assert "Admission control vs offline optimum" in output
        assert "DoublingAdmissionControl" in output

    def test_setcover_demo(self):
        code, output = run_cli(["demo", "setcover", "--seed", "1"])
        assert code == 0
        assert "Online set cover with repetitions" in output

    def test_demo_numpy_backend(self):
        code, output = run_cli(["demo", "admission", "--seed", "1", "--backend", "numpy"])
        assert code == 0
        assert "Admission control vs offline optimum" in output


class TestEngineFlags:
    def test_run_backend_and_jobs_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.backend == "python"
        assert args.jobs == 1

    def test_run_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--backend", "cuda"])

    def test_run_with_numpy_backend(self):
        code, output = run_cli(
            ["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5",
             "--backend", "numpy"]
        )
        assert code == 0
        assert "[E2]" in output

    def test_run_single_with_jobs(self):
        code, output = run_cli(
            ["run", "E2", "--quick", "--trials", "1", "--ilp-time-limit", "5", "--jobs", "2"]
        )
        assert code == 0
        assert "[E2]" in output


class TestSweepCommand:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.scenarios == "bursty,zipf_costs,flash_crowd"
        assert args.algorithms == "fractional,randomized,doubling"
        assert args.offline == "lp"
        assert args.jobs == 1

    def test_sweep_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "cuda"])

    def test_sweep_list_scenarios(self):
        code, output = run_cli(["sweep", "--list"])
        assert code == 0
        for key in ("bursty", "zipf_costs", "flash_crowd", "diurnal", "topology_stress"):
            assert key in output

    def test_sweep_small_matrix(self):
        code, output = run_cli(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms",
             "fractional,reject-when-full", "--trials", "1", "--seed", "3"]
        )
        assert code == 0
        assert "Cross-scenario comparison" in output
        assert "cheap_expensive" in output
        assert "ratio[fractional]" in output
        assert "ratio[reject-when-full]" in output

    def test_sweep_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="scenario"):
            run_cli(["sweep", "--scenarios", "no-such-scenario", "--algorithms", "fractional"])

    def test_sweep_out_writes_json(self, tmp_path):
        import json

        out_path = tmp_path / "sweep.json"
        code, output = run_cli(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms", "reject-when-full",
             "--trials", "1", "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenarios"] == ["cheap_expensive"]
        assert payload["algorithms"] == ["reject-when-full"]
        assert len(payload["cells"]) == 1

    def test_sweep_replays_recorded_trace(self, tmp_path):
        from repro.scenarios import build_scenario, record_trace

        trace = record_trace(build_scenario("cheap_expensive"), tmp_path / "t.jsonl")
        code, output = run_cli(
            ["sweep", "--scenarios", "cheap_expensive", "--algorithms", "reject-when-full",
             "--trials", "1", "--trace", str(trace)]
        )
        assert code == 0
        assert "trace:t" in output


class TestBenchCommand:
    def test_bench_without_baseline_passes(self, tmp_path):
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--baseline", str(tmp_path / "missing.json")]
        )
        assert code == 0
        assert "weight_update[python]" in output
        assert "weight_update[numpy]" in output
        assert "scaling_10k[python]" in output
        assert "scaling_10k[numpy]" in output
        assert "sweep_small[python]" in output
        assert "sweep_small[numpy]" in output
        assert "benchmark gate passed" in output

    def test_bench_write_then_gate_roundtrip(self, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--baseline", str(baseline), "--write-baseline"]
        )
        assert code == 0
        assert baseline.exists()
        payload = json.loads(baseline.read_text())
        assert set(payload["benchmarks"]) == {
            "weight_update[python]", "weight_update[numpy]",
            "scaling_10k[python]", "scaling_10k[numpy]",
            "sweep_small[python]", "sweep_small[numpy]",
        }
        # Inflate the stored seconds so scheduler noise on a loaded machine
        # cannot trip the 2x gate; this test checks the roundtrip wiring, the
        # regression branch is covered by test_bench_fails_on_regression.
        payload["benchmarks"] = {k: v * 10 for k, v in payload["benchmarks"].items()}
        baseline.write_text(json.dumps(payload))
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--baseline", str(baseline)]
        )
        assert code == 0
        assert "benchmark gate passed" in output

    def test_bench_fails_on_regression(self, tmp_path):
        import json

        baseline = tmp_path / "baseline.json"
        # A baseline claiming the benchmarks once ran in a nanosecond forces
        # the >2x regression branch deterministically.
        baseline.write_text(json.dumps({
            "schema": 1,
            "benchmarks": {
                "weight_update[python]": 1e-9,
                "weight_update[numpy]": 1e-9,
            },
        }))
        code, output = run_cli(
            ["bench", "--quick", "--requests", "200", "--scaling-requests", "400",
             "--baseline", str(baseline)]
        )
        assert code == 1
        assert "FAIL" in output
