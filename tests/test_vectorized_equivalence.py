"""Equivalence gate for the whole-trace vectorized executor.

The executor (:mod:`repro.engine.vectorized`) must be indistinguishable from
the per-arrival reference path: same decision log, same fractions, same
fractional cost, same augmentation count, same exported weight state — on
every backend, with and without diagnostics recording, across canonical,
random, unit-cost, alpha-classed and forced-tag workloads.  The repo-wide
tolerance contract is 1e-9 relative; in practice the executor is bit-exact
(the bulk path performs zero float operations and the dense path calls the
same kernels in the same order), so most asserts below are plain ``==``.

Also pinned here:

* the batched randomized-rounding coins (:func:`repro.engine.sampling.
  bernoulli_batch`) are stream-identical to per-request scalar draws, so a
  seeded randomized run is unchanged by the batching;
* :func:`repro.engine.sampling.inverse_weighted_sample`'s contract;
* the numba restore kernel's *logic* (exercised as plain Python, so the gate
  runs in environments without numba) matches the scalar reference backend;
  backend-registration tests auto-skip when numba is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fractional import FractionalAdmissionControl
from repro.core.randomized import RandomizedAdmissionControl
from repro.core.protocols import run_admission
from repro.engine.numba_backend import NUMBA_AVAILABLE, NumbaWeightBackend, mwu_edge_restore
from repro.engine.registry import WEIGHT_BACKENDS
from repro.engine.sampling import bernoulli_batch, inverse_weighted_sample
from repro.engine.backends import SUM_TOLERANCE, make_weight_backend
from repro.engine.streaming import StreamingSession
from repro.instances.admission import AdmissionInstance
from repro.instances.compiled import compile_instance
from repro.instances.request import Request, RequestSequence
from repro.workloads.admission_adversarial import overloaded_edge_adversary

BACKENDS = [k for k in WEIGHT_BACKENDS.keys() if k in ("python", "numpy", "numba")]

RANDOM_SEEDS = list(range(10))


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def random_instance(seed: int, *, num_requests: int = 120) -> AdmissionInstance:
    """Small random multi-edge instance with tight capacities (lots of kills)."""
    rng = np.random.default_rng(1000 + seed)
    edges = [f"e{j}" for j in range(12)]
    capacities = {e: int(rng.integers(1, 4)) for e in edges}
    requests = []
    for rid in range(num_requests):
        k = int(rng.integers(1, 4))
        path = rng.choice(len(edges), size=k, replace=False)
        requests.append(
            Request(rid, frozenset(edges[j] for j in path), float(rng.uniform(0.5, 6.0)))
        )
    return AdmissionInstance(capacities, RequestSequence(requests), name=f"vec-rand-{seed}")


def unit_cost_instance() -> AdmissionInstance:
    """Unit-cost adversary (drives the ``unweighted`` classification branch)."""
    return overloaded_edge_adversary(16, 2, num_hot_edges=4, random_state=5)


def tagged_instance() -> AdmissionInstance:
    """Instance where some arrivals carry a force-accept tag (SYNC class)."""
    base = random_instance(3, num_requests=80)
    requests = [
        Request(r.request_id, r.edges, r.cost, tag="vip" if r.request_id % 7 == 0 else None)
        for r in base.requests
    ]
    return AdmissionInstance(base.capacities, RequestSequence(requests), name="vec-tagged")


def run_pair(instance: AdmissionInstance, *, backend: str, record: bool, **kwargs):
    """Run the same compiled trace vectorized and per-arrival; return both algos."""
    compiled = compile_instance(instance)
    algos = []
    for vectorized in (True, False):
        algo = FractionalAdmissionControl.for_instance(
            instance, backend=backend, record=record, **kwargs
        )
        algo.process_compiled_sequence(compiled, vectorized=vectorized)
        algos.append(algo)
    return algos


def assert_equivalent(vec: FractionalAdmissionControl, ref: FractionalAdmissionControl):
    """The full executor contract: decisions, costs, counters, weight state."""
    vec_log = [(d.request_id, d.cost_class, d.fraction_rejected) for d in vec.decisions()]
    ref_log = [(d.request_id, d.cost_class, d.fraction_rejected) for d in ref.decisions()]
    assert vec_log == ref_log
    assert vec.num_augmentations == ref.num_augmentations
    vc, rc = vec.fractional_cost(), ref.fractional_cost()
    assert vc == pytest.approx(rc, rel=1e-9, abs=1e-9)
    assert vec.export_state() == ref.export_state()


# ---------------------------------------------------------------------------
# Vectorized executor vs per-arrival reference
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("record", [True, False])
def test_canonical_adversary_equivalence(backend, record):
    instance = overloaded_edge_adversary(24, 2, num_hot_edges=6, random_state=2)
    vec, ref = run_pair(instance, backend=backend, record=record)
    assert_equivalent(vec, ref)
    assert vec.num_augmentations > 0  # the workload actually exercises restores


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_random_instances_equivalence(backend, seed):
    vec, ref = run_pair(random_instance(seed), backend=backend, record=False)
    assert_equivalent(vec, ref)


@pytest.mark.parametrize("record", [True, False])
def test_unit_cost_equivalence(record):
    vec, ref = run_pair(unit_cost_instance(), backend="numpy", record=record)
    assert_equivalent(vec, ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_alpha_classing_equivalence(backend):
    """Small/big cost classes (alpha set) synchronize correctly."""
    rng = np.random.default_rng(77)
    base = random_instance(7, num_requests=100)
    requests = [
        Request(r.request_id, r.edges, float(rng.choice([0.001, 0.5, 1.5, 4.0, 9.0])))
        for r in base.requests
    ]
    instance = AdmissionInstance(base.capacities, RequestSequence(requests), name="vec-alpha")
    vec, ref = run_pair(instance, backend=backend, record=True, alpha=1.0)
    assert_equivalent(vec, ref)
    classes = {d.cost_class for d in vec.decisions()}
    assert len(classes) > 1  # the alpha thresholds actually fired


def test_forced_tag_equivalence():
    vec, ref = run_pair(
        tagged_instance(), backend="numpy", record=False, force_accept_tags=("vip",)
    )
    assert_equivalent(vec, ref)


def test_duplicate_request_raises_at_same_position():
    """Replayed arrivals raise identically (classified SYNC, not bulk-absorbed).

    ``RequestSequence`` rejects duplicate ids at construction, so the only way
    a duplicate reaches the executor is replaying a compiled trace into an
    already-populated algorithm — which must fail on the first arrival on
    both paths, with the same decision count and message.
    """
    instance = random_instance(1, num_requests=40)
    compiled = compile_instance(instance)
    errors = []
    for vectorized in (True, False):
        algo = FractionalAdmissionControl.for_instance(instance, backend="numpy")
        algo.process_compiled_sequence(compiled, vectorized=vectorized)
        with pytest.raises(ValueError) as exc:
            algo.process_compiled_sequence(compiled, vectorized=vectorized)
        errors.append((str(exc.value), len(algo.decisions())))
    assert errors[0] == errors[1]


def test_streaming_session_vectorized_equivalence():
    instance = random_instance(4)
    logs = []
    for vectorized in (True, False):
        session = StreamingSession(
            instance.capacities, "fractional", backend="numpy", vectorized=vectorized
        )
        session.submit_stream(iter(instance.requests), batch_size=16)
        logs.append(session.decision_log())
    assert logs[0] == logs[1]


# ---------------------------------------------------------------------------
# Randomized rounding: batched coins are stream-identical
# ---------------------------------------------------------------------------


def test_bernoulli_batch_stream_identity():
    """rng.random(k) consumes the PCG64 stream exactly like k scalar draws."""
    probs = np.random.default_rng(3).uniform(0.01, 0.99, size=257)
    batched = bernoulli_batch(np.random.default_rng(42), probs)
    rng = np.random.default_rng(42)
    scalar = np.array([rng.random() < p for p in probs])
    assert np.array_equal(batched, scalar)


def test_bernoulli_batch_scalar_rng_fallback():
    """Duck-typed generators exposing only scalar random() still work."""

    class ScalarOnly:
        def __init__(self):
            self._rng = np.random.default_rng(9)

        def random(self):
            return self._rng.random()

    got = bernoulli_batch(ScalarOnly(), [0.2, 0.8, 0.5])
    rng = np.random.default_rng(9)
    expected = [rng.random() < p for p in (0.2, 0.8, 0.5)]
    assert got.tolist() == expected


def test_randomized_identical_across_execution_paths():
    """Same seed -> identical randomized decisions, compiled or per-request.

    The step-3 coins are drawn through :func:`bernoulli_batch`; stream
    identity means the execution path never perturbs a seeded trajectory.
    """
    instance = overloaded_edge_adversary(32, 2, num_hot_edges=8, random_state=11)
    compiled = compile_instance(instance)
    logs = []
    for use_compiled in (True, False):
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=123)
        run_admission(algo, instance, compiled=compiled if use_compiled else None)
        logs.append([(d.request_id, d.kind, d.at_request) for d in algo.decisions()])
    assert logs[0] == logs[1]


def test_inverse_weighted_sample_contract():
    rng = np.random.default_rng(0)
    weights = np.array([0.0, 1.0, 2.0, 0.0, 3.0])
    sample = inverse_weighted_sample(rng, weights, 3)
    assert len(sample) == 3
    assert len(set(sample.tolist())) == 3
    assert not {0, 3} & set(sample.tolist())  # zero weights never sampled
    # k larger than the nonzero support clamps
    assert len(inverse_weighted_sample(rng, weights, 10)) == 3
    assert len(inverse_weighted_sample(rng, weights, 0)) == 0
    assert len(inverse_weighted_sample(rng, np.zeros(4), 2)) == 0
    with pytest.raises(ValueError):
        inverse_weighted_sample(rng, weights, -1)
    with pytest.raises(ValueError):
        inverse_weighted_sample(rng, np.array([1.0, -0.5]), 1)


def test_inverse_weighted_sample_prefers_heavy_weights():
    rng = np.random.default_rng(5)
    heavy = sum(
        int(inverse_weighted_sample(rng, np.array([1.0, 1e9]), 1)[0] == 1)
        for _ in range(200)
    )
    assert heavy >= 195


# ---------------------------------------------------------------------------
# Numba restore kernel (plain-Python logic; backend tests gate on install)
# ---------------------------------------------------------------------------


def _reference_restore(w, cost, cap, seed, tol):
    """Straight transliteration of the paper's restore loop (test oracle)."""
    w = list(w)
    alive = [True] * len(w)
    n_alive = len(w)
    n_e = n_alive - cap
    augmentations = 0
    if sum(w) >= n_e * (1.0 - tol):
        return w, alive, 0
    w = [seed if x == 0.0 else x for x in w]
    while True:
        for i in range(len(w)):
            if alive[i]:
                w[i] *= 1.0 + 1.0 / (n_e * cost[i])
                if w[i] >= 1.0:
                    alive[i] = False
                    n_alive -= 1
        augmentations += 1
        n_e = n_alive - cap
        if n_e <= 0:
            break
        if sum(w[i] for i in range(len(w)) if alive[i]) >= n_e * (1.0 - tol):
            break
    return w, alive, augmentations


@pytest.mark.parametrize("case", range(8))
def test_mwu_edge_restore_matches_reference(case):
    rng = np.random.default_rng(200 + case)
    n = int(rng.integers(3, 40))
    cap = int(rng.integers(1, max(2, n - 1)))
    w = np.where(rng.random(n) < 0.4, 0.0, rng.uniform(0.0, 0.9, size=n))
    cost = rng.uniform(0.5, 8.0, size=n)
    seed = 1.0 / (64.0 * max(cap, 1))

    kernel_w = w.copy()
    alive = np.ones(n, dtype=np.bool_)
    augs = mwu_edge_restore(kernel_w, cost, alive, cap, seed, SUM_TOLERANCE)
    ref_w, ref_alive, ref_augs = _reference_restore(w.tolist(), cost.tolist(), cap, seed, SUM_TOLERANCE)
    assert augs == ref_augs
    assert alive.tolist() == ref_alive
    assert kernel_w.tolist() == ref_w  # bit-exact: same scalar operations


@pytest.mark.parametrize("record", [True, False])
def test_numba_backend_matches_python_backend(record):
    """The NumbaWeightBackend class (plain kernel when numba is absent) agrees
    with the scalar reference to the repo's 1e-9 contract."""
    capacities = {j: 2 if j < 3 else 1000 for j in range(8)}
    rng = np.random.default_rng(31)
    arrivals = [
        (rid, (rid % 3, int(rng.integers(3, 8))), float(rng.uniform(1.0, 6.0)))
        for rid in range(150)
    ]
    ref = make_weight_backend("python", capacities, g=64.0)
    nb = NumbaWeightBackend(capacities, g=64.0)
    for rid, edges, cost in arrivals:
        ref.process_arrival_indexed(rid, edges, cost, record=record)
        nb.process_arrival_indexed(rid, edges, cost, record=record)
    assert nb.total_augmentations == ref.total_augmentations
    assert nb.fractional_cost() == pytest.approx(ref.fractional_cost(), rel=1e-9)
    ref_fracs = ref.fractional_rejections()
    nb_fracs = nb.fractional_rejections()
    assert set(nb_fracs) == set(ref_fracs)
    for rid, frac in ref_fracs.items():
        assert nb_fracs[rid] == pytest.approx(frac, rel=1e-9, abs=1e-12)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
def test_numba_backend_registered():
    assert "numba" in WEIGHT_BACKENDS
    assert WEIGHT_BACKENDS.get("numba") is NumbaWeightBackend


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
def test_numba_backend_not_registered_without_numba():
    assert "numba" not in WEIGHT_BACKENDS
