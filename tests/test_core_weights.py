"""Unit tests for the shared fractional weight mechanism (Section 2 machinery)."""

import pytest

from repro.core.weights import FractionalWeightState


def make_state(capacities=None, g=2.0, max_capacity=None):
    return FractionalWeightState(capacities or {"e": 1}, g=g, max_capacity=max_capacity)


class TestRegistration:
    def test_register_starts_at_zero_weight(self):
        state = make_state()
        state.register(0, ["e"], 1.0)
        assert state.weight(0) == 0.0
        assert state.requests_on("e") == {0}
        assert state.alive_requests("e") == {0}

    def test_duplicate_registration_rejected(self):
        state = make_state()
        state.register(0, ["e"], 1.0)
        with pytest.raises(ValueError):
            state.register(0, ["e"], 1.0)

    def test_unknown_edge_rejected(self):
        state = make_state()
        with pytest.raises(ValueError):
            state.register(0, ["missing"], 1.0)

    def test_non_positive_cost_rejected(self):
        state = make_state()
        with pytest.raises(ValueError):
            state.register(0, ["e"], 0.0)

    def test_seed_weight_formula(self):
        state = FractionalWeightState({"e": 4}, g=8.0)
        assert state.seed_weight == pytest.approx(1.0 / 32.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FractionalWeightState({"e": -1}, g=1.0)


class TestExcessAndConstraint:
    def test_excess_below_capacity_is_negative(self):
        state = make_state({"e": 3})
        state.register(0, ["e"], 1.0)
        assert state.excess("e") == -2
        assert state.constraint_satisfied("e")

    def test_constraint_violated_when_over_capacity(self):
        state = make_state({"e": 1})
        state.register(0, ["e"], 1.0)
        state.register(1, ["e"], 1.0)
        assert state.excess("e") == 1
        assert not state.constraint_satisfied("e")


class TestArrivalProcessing:
    def test_no_augmentation_when_under_capacity(self):
        state = make_state({"e": 2})
        outcome = state.process_arrival(0, ["e"], 1.0)
        assert outcome.num_augmentations == 0
        assert state.fractional_cost() == 0.0

    def test_augmentation_restores_constraint(self):
        state = make_state({"e": 1}, g=1.0)
        state.process_arrival(0, ["e"], 1.0)
        outcome = state.process_arrival(1, ["e"], 1.0)
        assert outcome.num_augmentations >= 1
        assert state.constraint_satisfied("e")
        assert state.check_invariants() == []

    def test_deltas_reported_for_increased_weights(self):
        state = make_state({"e": 1}, g=1.0)
        state.process_arrival(0, ["e"], 1.0)
        outcome = state.process_arrival(1, ["e"], 1.0)
        assert set(outcome.deltas) <= {0, 1}
        assert all(delta > 0 for delta in outcome.deltas.values())

    def test_weights_monotone_nondecreasing(self):
        state = make_state({"e": 2}, g=1.0)
        history = []
        for i in range(6):
            state.process_arrival(i, ["e"], 1.0)
            history.append(state.weights())
        for earlier, later in zip(history, history[1:]):
            for rid, weight in earlier.items():
                assert later[rid] >= weight - 1e-12

    def test_dead_requests_removed_from_all_edges(self):
        state = make_state({"a": 1, "b": 1}, g=1.0)
        state.process_arrival(0, ["a", "b"], 1.0)
        # Overload both edges until request 0 dies.
        rid = 1
        while not state.is_dead(0) and rid < 20:
            state.process_arrival(rid, ["a"], 1.0)
            rid += 1
        assert state.is_dead(0)
        assert 0 not in state.alive_requests("a")
        assert 0 not in state.alive_requests("b")

    def test_fractional_cost_counts_min_weight_one(self):
        state = make_state({"e": 1}, g=1.0)
        for i in range(5):
            state.process_arrival(i, ["e"], 1.0)
        cost = state.fractional_cost()
        manual = sum(min(w, 1.0) for w in state.weights().values())
        assert cost == pytest.approx(manual)

    def test_multi_edge_request_restores_every_edge(self):
        state = make_state({"a": 1, "b": 1}, g=1.0)
        state.process_arrival(0, ["a"], 1.0)
        state.process_arrival(1, ["b"], 1.0)
        state.process_arrival(2, ["a", "b"], 1.0)
        assert state.constraint_satisfied("a")
        assert state.constraint_satisfied("b")
        assert state.check_invariants() == []


class TestCapacityReduction:
    def test_reduction_triggers_augmentation(self):
        state = make_state({"e": 2}, g=1.0)
        state.process_arrival(0, ["e"], 1.0)
        state.process_arrival(1, ["e"], 1.0)
        outcome = state.process_capacity_reduction("e", triggered_by=99)
        assert state.capacity("e") == 1
        assert outcome.num_augmentations >= 1
        assert state.constraint_satisfied("e")

    def test_reduction_never_goes_negative(self):
        state = make_state({"e": 1}, g=1.0)
        state.process_capacity_reduction("e", triggered_by=0)
        state.process_capacity_reduction("e", triggered_by=1)
        assert state.capacity("e") == 0

    def test_unknown_edge_rejected(self):
        state = make_state()
        with pytest.raises(ValueError):
            state.decrease_capacity("missing")


class TestAugmentationRecords:
    def test_history_records_trigger_and_edge(self):
        state = make_state({"e": 1}, g=1.0)
        state.process_arrival(0, ["e"], 1.0)
        state.process_arrival(1, ["e"], 1.0)
        history = state.history()
        assert len(history) == state.total_augmentations
        assert all(record.edge == "e" for record in history)
        assert history[-1].triggered_by == 1
        assert history[0].excess >= 1

    def test_seeded_requests_recorded(self):
        state = make_state({"e": 1}, g=1.0)
        state.process_arrival(0, ["e"], 1.0)
        state.process_arrival(1, ["e"], 1.0)
        seeded = {rid for record in state.history() for rid in record.seeded}
        assert seeded == {0, 1}

    def test_weight_growth_is_multiplicative(self):
        state = make_state({"e": 1}, g=4.0, max_capacity=1)
        state.process_arrival(0, ["e"], 2.0)
        state.process_arrival(1, ["e"], 2.0)
        # Every augmentation multiplies both (still alive) weights by exactly
        # (1 + 1/(n_e * p)) = 1.5 with n_e = 1, p = 2, starting from the seed.
        assert state.history()[0].excess == 1
        augmentations = state.total_augmentations
        assert augmentations >= 1
        expected = state.seed_weight * 1.5**augmentations
        for weight in state.weights().values():
            assert weight == pytest.approx(expected)


class TestInvariants:
    def test_invariants_hold_after_stress(self):
        state = make_state({f"e{k}": 2 for k in range(5)}, g=1.0)
        for i in range(40):
            edges = [f"e{i % 5}", f"e{(i + 1) % 5}"]
            state.process_arrival(i, edges, 1.0)
        assert state.check_invariants() == []

    def test_invariant_checker_detects_corruption(self):
        state = make_state({"e": 1}, g=1.0)
        state.process_arrival(0, ["e"], 1.0)
        state.process_arrival(1, ["e"], 1.0)
        state._weights[0] = -0.5  # corrupt on purpose
        assert any("negative" in problem for problem in state.check_invariants())
