"""Unit tests for SetSystem and SetCoverInstance."""

import pytest

from repro.instances.setcover import CoverAssignment, SetCoverInstance, SetSystem


class TestSetSystem:
    def test_basic_counts(self, simple_system):
        assert simple_system.num_sets == 3
        assert simple_system.num_elements == 4

    def test_members_and_costs(self, simple_system):
        assert simple_system.members("A") == frozenset({1, 2})
        assert simple_system.cost("A") == 1.0
        assert simple_system.is_unit_cost()

    def test_sets_containing(self, simple_system):
        assert simple_system.sets_containing(2) == frozenset({"A", "B"})
        assert simple_system.degree(3) == 2

    def test_sets_containing_unknown_element(self, simple_system):
        with pytest.raises(KeyError):
            simple_system.sets_containing(99)

    def test_max_degree(self, simple_system):
        assert simple_system.max_degree() == 2

    def test_total_cost(self, simple_system):
        assert simple_system.total_cost() == 3.0

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            SetSystem({})

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            SetSystem({"A": []})

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            SetSystem({"A": {1}}, {"A": -1.0})

    def test_cost_for_unknown_set_rejected(self):
        with pytest.raises(ValueError):
            SetSystem({"A": {1}}, {"B": 1.0})

    def test_explicit_ground_set_allows_isolated_elements(self):
        system = SetSystem({"A": {1}}, elements=[1, 2])
        assert system.num_elements == 2
        assert system.degree(2) == 0

    def test_explicit_ground_set_must_cover_members(self):
        with pytest.raises(ValueError):
            SetSystem({"A": {1, 5}}, elements=[1, 2])

    def test_custom_costs(self):
        system = SetSystem({"A": {1}, "B": {1}}, {"A": 2.5})
        assert system.cost("A") == 2.5
        assert system.cost("B") == 1.0
        assert not system.is_unit_cost()

    def test_as_dict_copy(self, simple_system):
        d = simple_system.as_dict()
        d["A"] = frozenset()
        assert simple_system.members("A") == frozenset({1, 2})


class TestCoverAssignment:
    def test_covers_respects_multiplicity(self, simple_system):
        cover = CoverAssignment(chosen=frozenset({"A", "B"}), cost=2.0)
        assert cover.covers(simple_system, {2: 2})
        assert not cover.covers(simple_system, {3: 2})
        assert not cover.covers(simple_system, {4: 1})


class TestSetCoverInstance:
    def test_demands(self, repetition_instance):
        assert repetition_instance.demands() == {1: 3, 2: 1}
        assert repetition_instance.max_repetitions() == 3

    def test_prefix_demands(self, repetition_instance):
        assert repetition_instance.prefix_demands(2) == {1: 1, 2: 1}

    def test_is_feasible(self, repetition_instance, simple_system):
        assert repetition_instance.is_feasible()
        infeasible = SetCoverInstance(simple_system, [1, 1, 1])  # degree of 1 is only 1
        assert not infeasible.is_feasible()

    def test_unknown_arrival_rejected(self, simple_system):
        with pytest.raises(ValueError):
            SetCoverInstance(simple_system, [99])

    def test_iter_arrivals_counts_repetitions(self, repetition_instance):
        ks = [k for _, element, k in repetition_instance.iter_arrivals() if element == 1]
        assert ks == [1, 2, 3]

    def test_describe(self, repetition_instance):
        text = repetition_instance.describe()
        assert "max repetition 3" in text

    def test_num_arrivals(self, small_cover_instance):
        assert small_cover_instance.num_arrivals == 4
