"""Unit tests for AdmissionInstance."""

import pytest

from repro.instances.admission import AdmissionInstance
from repro.instances.request import Request, RequestSequence


class TestConstruction:
    def test_basic_properties(self, star_instance):
        assert star_instance.num_edges == 7  # hub + 6 leaves
        assert star_instance.max_capacity == 2
        assert star_instance.min_capacity == 1
        assert star_instance.num_requests == 6
        assert star_instance.parameter_mc() == 14

    def test_capacity_accessor(self, star_instance):
        assert star_instance.capacity("hub") == 2

    def test_requests_referencing_unknown_edges_rejected(self):
        with pytest.raises(ValueError):
            AdmissionInstance({"a": 1}, [Request(0, {"a", "missing"}, 1.0)])

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            AdmissionInstance({"a": 0}, [Request(0, {"a"}, 1.0)])

    def test_accepts_plain_request_iterable(self):
        instance = AdmissionInstance({"a": 1}, [Request(0, {"a"}, 1.0)])
        assert isinstance(instance.requests, RequestSequence)

    def test_is_unit_cost(self, star_instance, weighted_instance):
        assert star_instance.is_unit_cost()
        assert not weighted_instance.is_unit_cost()


class TestFeasibility:
    def test_accepting_all_when_under_capacity(self, free_instance):
        report = free_instance.check_feasible(free_instance.requests.ids())
        assert report.feasible
        assert bool(report)

    def test_overload_detected(self, overload_instance):
        report = overload_instance.check_feasible(overload_instance.requests.ids())
        assert not report.feasible
        edge, load, cap = report.violations[0]
        assert edge == "e0"
        assert load == 5
        assert cap == 2

    def test_accepting_within_capacity_is_feasible(self, overload_instance):
        report = overload_instance.check_feasible([0, 1])
        assert report.feasible

    def test_rejection_cost(self, weighted_instance):
        assert weighted_instance.rejection_cost([1]) == 1.0
        assert weighted_instance.rejection_cost([0, 1]) == 11.0
        assert weighted_instance.rejection_cost([]) == 0.0


class TestBounds:
    def test_max_excess(self, overload_instance):
        assert overload_instance.max_excess() == 3

    def test_total_excess(self, star_instance):
        # hub sees 6 requests with capacity 2 -> excess 4; leaves are fine.
        assert star_instance.total_excess() == 4

    def test_lower_bound_rejections(self, star_instance, free_instance):
        assert star_instance.lower_bound_rejections() == 4
        assert free_instance.lower_bound_rejections() == 0


class TestMisc:
    def test_restrict_to_prefix(self, star_instance):
        prefix = star_instance.restrict_to_prefix(3)
        assert prefix.num_requests == 3
        assert prefix.num_edges == star_instance.num_edges

    def test_describe_mentions_sizes(self, star_instance):
        text = star_instance.describe()
        assert "m=7" in text
        assert "unweighted" in text

    def test_edges_order_stable(self, star_instance):
        assert star_instance.edges()[0] == "hub"

    def test_capacities_returns_copy(self, star_instance):
        caps = star_instance.capacities
        caps["hub"] = 99
        assert star_instance.capacity("hub") == 2
