"""Tests for the multi-process shard pool: equivalence, checkpoints, hygiene.

Three contracts are load-bearing:

* **Bit-compatibility** — the pool's ``namespace`` strategy must reproduce
  the in-process :class:`ShardedStreamRouter` (and, through it, the single
  session) decision-for-decision: scale-out must never change the answer.
* **Resume equivalence** — a pool checkpointed, killed, and restored into
  fresh worker processes must finish the stream with the same decisions as
  an uninterrupted pool.
* **Shared-memory hygiene** — every published trace segment must be gone
  from the host after ``close()``/``terminate()``, pass or fail.
"""

import json

import pytest

from repro.api import RunSpec, Runner
from repro.api.spec import RunSpecError
from repro.engine.registry import UnknownKeyError
from repro.engine.shards import (
    POOL_CHECKPOINT_KIND,
    ProcessShardPool,
    ROUTING_STRATEGIES,
    SharedCompiledTrace,
    attach_shared_trace,
    make_strategy,
)
from repro.engine.streaming import (
    ShardedStreamRouter,
    StreamingSession,
    validate_shard_partition,
)
from repro.instances.compiled import compile_instance
from repro.instances.serialize import CheckpointFormatError
from repro.workloads.admission_traffic import adversarial_mix_workload, bursty_workload

BACKENDS = ("python", "numpy")

#: Explicit g so every execution path prices fractions identically regardless
#: of how capacities are partitioned across shards (the default g is 2*m*c,
#: which is partition-dependent by construction).
G = 8.0


def mix_instance(seed=3):
    """Namespaced multi-block workload: the shard partition has real spread."""
    return adversarial_mix_workload(num_edges=8, capacity=2, random_state=seed)


def flat_instance(seed=0, num_requests=60):
    """Single-namespace workload for replica-strategy tests."""
    return bursty_workload(
        num_edges=10, num_requests=num_requests, capacity=3, num_hot_edges=3, random_state=seed
    )


def assert_logs_equal(expected, actual, tol=1e-9):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a["id"] == b["id"]
        assert a["event"] == b["event"]
        if "fraction" in a:
            assert abs(a["fraction"] - b["fraction"]) <= tol


def total_cost(summary):
    return sum(line["fractional_cost"] for line in summary["shards"].values())


class TestNamespaceEquivalence:
    """Pool(namespace) == in-process router == single session, per backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pool_matches_router_decision_for_decision(self, backend):
        mix = mix_instance()
        router = ShardedStreamRouter(
            mix.capacities, 2, algorithm="fractional", backend=backend, seed=7,
            algorithm_kwargs={"g": G},
        )
        router.submit_batch(list(mix.requests))
        with ProcessShardPool(
            mix.capacities, 2, "fractional", strategy="namespace", backend=backend,
            seed=7, algorithm_kwargs={"g": G},
        ) as pool:
            pool.submit_batch(list(mix.requests))
            pool_logs = pool.decision_logs()
            pool_summary = pool.summary()
        router_logs = router.decision_logs()
        assert set(pool_logs) == set(router_logs)
        for shard in router_logs:
            assert_logs_equal(router_logs[shard], pool_logs[shard])
        assert abs(total_cost(pool_summary) - total_cost(router.summary())) <= 1e-9

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_count_invariance(self, backend):
        mix = mix_instance()
        costs = {}
        for workers in (1, 2, 4):
            with ProcessShardPool(
                mix.capacities, workers, "fractional", strategy="namespace",
                backend=backend, seed=11, algorithm_kwargs={"g": G}, retain_log=False,
            ) as pool:
                pool.submit_stream(iter(mix.requests))
                costs[workers] = total_cost(pool.summary())
        reference = costs[1]
        assert all(abs(c - reference) <= 1e-9 * max(abs(reference), 1.0) for c in costs.values())

    def test_shard_of_matches_router_partition(self):
        mix = mix_instance()
        router = ShardedStreamRouter(mix.capacities, 3, algorithm="fractional", seed=0)
        with ProcessShardPool(
            mix.capacities, 3, "fractional", strategy="namespace", seed=0, retain_log=False
        ) as pool:
            for request in mix.requests:
                assert pool.shard_of(request) == router.shard_of(request)


class TestPoolCheckpointResume:
    def test_checkpoint_kill_restore_matches_uninterrupted(self):
        mix = mix_instance()
        requests = list(mix.requests)
        cut = len(requests) // 2

        with ProcessShardPool(
            mix.capacities, 2, "fractional", seed=5, algorithm_kwargs={"g": G}
        ) as full:
            full.submit_batch(requests)
            expected_logs = full.decision_logs()
            expected_cost = total_cost(full.summary())

        first = ProcessShardPool(
            mix.capacities, 2, "fractional", seed=5, algorithm_kwargs={"g": G}
        )
        try:
            first.submit_batch(requests[:cut])
            document = json.loads(json.dumps(first.checkpoint()))
        finally:
            first.terminate()  # kill without drain: restore starts fresh processes

        assert document["kind"] == POOL_CHECKPOINT_KIND
        resumed = ProcessShardPool.restore(document)
        try:
            assert resumed.num_processed == cut
            resumed.submit_batch(requests[cut:])
            resumed_logs = resumed.decision_logs()
            assert abs(total_cost(resumed.summary()) - expected_cost) <= 1e-9
        finally:
            resumed.close()
        for shard in expected_logs:
            assert_logs_equal(expected_logs[shard], resumed_logs[shard])

    def test_restore_rejects_worker_count_mismatch(self):
        mix = mix_instance()
        with ProcessShardPool(mix.capacities, 2, "fractional", seed=1) as pool:
            pool.submit_stream(iter(mix.requests))
            document = json.loads(json.dumps(pool.checkpoint()))
        document["num_workers"] = 3
        with pytest.raises(CheckpointFormatError):
            ProcessShardPool.restore(document)

    def test_round_robin_cursor_survives_restore(self):
        flat = flat_instance()
        requests = list(flat.requests)
        with ProcessShardPool(
            flat.capacities, 2, "fractional", strategy="round_robin", seed=2,
            algorithm_kwargs={"g": G}, retain_log=False,
        ) as pool:
            pool.submit_batch(requests[:31])
            document = json.loads(json.dumps(pool.checkpoint()))
        assert document["strategy"] == "round_robin"
        resumed = ProcessShardPool.restore(document, retain_log=False)
        try:
            # 31 arrivals in: an even split would leave both depths equal, so a
            # forgotten cursor would re-route arrival 32 to worker 0 twice.
            assert resumed._strategy.export_state() == {"cursor": 31 % 2}
        finally:
            resumed.close()


class TestRoutingStrategies:
    def test_registry_rejects_unknown_strategy(self):
        with pytest.raises(UnknownKeyError) as excinfo:
            make_strategy("fastest", 2)
        message = str(excinfo.value)
        assert "fastest" in message
        for key in ROUTING_STRATEGIES.keys():
            assert key in message

    def test_pool_constructor_rejects_unknown_strategy(self):
        mix = mix_instance()
        with pytest.raises(UnknownKeyError):
            ProcessShardPool(mix.capacities, 2, "fractional", strategy="fastest")

    def test_round_robin_cycles(self):
        strategy = make_strategy("round_robin", 3)
        picks = [strategy.route([1.0], [0, 0, 0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_min_depth(self):
        strategy = make_strategy("least_loaded", 3)
        assert strategy.route([1.0], [4, 1, 2]) == 1
        assert strategy.route([1.0], [2, 2, 2]) == 0  # ties break to low index

    def test_cost_aware_prefers_fast_shards_for_expensive_work(self):
        strategy = make_strategy("cost_aware", 2, shard_speeds=(1.0, 4.0))
        first = strategy.route([32.0], [0, 0])
        assert first == 1  # 4x-speed shard wins the expensive bucket
        # Pile enough assigned cost onto shard 1 and the slow shard gets work.
        for _ in range(8):
            strategy.route([32.0], [0, 0])
        assert 0 in {strategy.route([0.5], [0, 0]) for _ in range(12)}

    @pytest.mark.parametrize("strategy", ("round_robin", "least_loaded", "cost_aware"))
    def test_replica_strategies_process_every_arrival(self, strategy):
        flat = flat_instance()
        with ProcessShardPool(
            flat.capacities, 2, "fractional", strategy=strategy, seed=0,
            algorithm_kwargs={"g": G}, retain_log=False,
        ) as pool:
            # Replica routing is per-batch: small batches give the strategy
            # enough routing decisions to exercise both workers.
            pool.submit_stream(iter(flat.requests), batch_size=6)
            summary = pool.summary()
        assert summary["processed"] == flat.num_requests
        processed = [line["processed"] for line in summary["shards"].values()]
        assert sum(processed) == flat.num_requests
        if strategy in ("round_robin", "cost_aware"):
            # Deterministic alternation; least_loaded is timing-dependent
            # (depths reflect in-flight pipeline state), so only the total
            # is pinned for it.
            assert all(count > 0 for count in processed)


class TestSharedTrace:
    def test_attach_maps_identical_arrays(self):
        compiled = compile_instance(flat_instance())
        trace = SharedCompiledTrace(compiled)
        try:
            mapped, segments = attach_shared_trace(trace.handle())
            try:
                assert mapped.num_requests == compiled.num_requests
                assert (mapped.costs == compiled.costs).all()
                assert (mapped.indptr == compiled.indptr).all()
                assert (mapped.indices == compiled.indices).all()
            finally:
                for segment in segments:
                    segment.close()
        finally:
            trace.close()

    def test_shared_range_matches_in_process_session(self):
        flat = flat_instance()
        compiled = compile_instance(flat)
        session = StreamingSession(
            flat.capacities, algorithm="fractional", seed=0, algorithm_kwargs={"g": G}
        )
        session.submit_compiled_range(compiled, 0, compiled.num_requests)
        with ProcessShardPool(
            flat.capacities, 1, "fractional", strategy="round_robin", seed=0,
            algorithm_kwargs={"g": G},
        ) as pool:
            pool.publish_trace(compiled)
            pool.submit_range(0, compiled.num_requests)
            pool.drain()
            pool_logs = pool.decision_logs()
            pool_cost = total_cost(pool.summary())
        assert_logs_equal(session.decision_log(), pool_logs[0])
        assert abs(pool_cost - session.summary()["fractional_cost"]) <= 1e-9

    def test_no_segment_leaks_after_close(self):
        flat = flat_instance()
        compiled = compile_instance(flat)
        pool = ProcessShardPool(
            flat.capacities, 2, "fractional", strategy="round_robin", retain_log=False
        )
        try:
            pool.publish_trace(compiled)
            names = pool.trace_segment_names()
            assert names
        finally:
            pool.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_publish_trace_rejected_for_partitioned_strategy(self):
        mix = mix_instance()
        compiled = compile_instance(mix)
        with (
            ProcessShardPool(mix.capacities, 2, "fractional", retain_log=False) as pool,
            pytest.raises(TypeError),
        ):
            pool.publish_trace(compiled)


class TestRouterPartitionValidation:
    def test_router_restore_rejects_shard_count_mismatch(self):
        mix = mix_instance()
        router = ShardedStreamRouter(mix.capacities, 2, algorithm="fractional", seed=1)
        router.submit_batch(list(mix.requests))
        document = json.loads(json.dumps(router.checkpoint()))
        document["num_shards"] = 4
        with pytest.raises(CheckpointFormatError) as excinfo:
            ShardedStreamRouter.restore(document)
        assert "num_shards" in str(excinfo.value)

    def test_router_restore_rejects_swapped_shards(self):
        mix = mix_instance()
        router = ShardedStreamRouter(mix.capacities, 2, algorithm="fractional", seed=1)
        router.submit_batch(list(mix.requests))
        document = json.loads(json.dumps(router.checkpoint()))
        document["shards"] = list(reversed(document["shards"]))
        with pytest.raises(CheckpointFormatError):
            ShardedStreamRouter.restore(document)

    def test_validate_shard_partition_passes_valid_checkpoint(self):
        mix = mix_instance()
        router = ShardedStreamRouter(mix.capacities, 2, algorithm="fractional", seed=1)
        router.submit_batch(list(mix.requests))
        document = json.loads(json.dumps(router.checkpoint()))
        validate_shard_partition(document["shards"], 2)


class TestRunSpecSharding:
    def test_workers_spec_matches_plain_and_router(self):
        runner = Runner()
        base = dict(
            scenario="adversarial_mix", algorithm="fractional",
            mode="streaming", trials=1, seed=3, algorithm_params={"g": G},
        )
        plain = runner.run(RunSpec(**base)).rows[0].online_cost
        routed = runner.run(RunSpec(**base, shards=2)).rows[0].online_cost
        pooled = runner.run(RunSpec(**base, shards=2, workers=2)).rows[0].online_cost
        assert abs(routed - pooled) <= 1e-9 * max(abs(routed), 1.0)
        assert abs(plain - pooled) <= 1e-9 * max(abs(plain), 1.0)

    def test_spec_rejects_replica_strategy_without_workers(self):
        with pytest.raises(RunSpecError):
            RunSpec(
                scenario="adversarial_mix", algorithm="fractional",
                mode="streaming", shards=2, strategy="round_robin",
            )

    def test_spec_rejects_unknown_strategy(self):
        with pytest.raises(UnknownKeyError):
            RunSpec(
                scenario="adversarial_mix", algorithm="fractional",
                mode="streaming", workers=2, strategy="fastest",
            )

    def test_spec_normalizes_workers_to_shards(self):
        spec = RunSpec(
            scenario="adversarial_mix", algorithm="fractional",
            mode="streaming", workers=2,
        )
        assert spec.shards == 2
