"""Tests for the Section-2 fractional admission-control algorithm."""

import pytest

from repro.core.bounds import lemma1_augmentation_bound
from repro.core.fractional import CostClass, FractionalAdmissionControl
from repro.instances.request import Request
from repro.offline import solve_admission_lp
from repro.workloads import overloaded_edge_adversary, single_edge_workload, uniform_costs


class TestConstruction:
    def test_for_instance_infers_unweighted(self, star_instance):
        algo = FractionalAdmissionControl.for_instance(star_instance)
        assert algo.unweighted
        assert algo.g == 1.0

    def test_weighted_default_g(self, weighted_instance):
        algo = FractionalAdmissionControl.for_instance(weighted_instance)
        assert algo.g == pytest.approx(2.0 * weighted_instance.num_edges * weighted_instance.max_capacity)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FractionalAdmissionControl({})
        with pytest.raises(ValueError):
            FractionalAdmissionControl({"e": 1}, alpha=-1.0)
        with pytest.raises(ValueError):
            FractionalAdmissionControl({"e": 1}, g=0.0)

    def test_thresholds_with_alpha(self):
        algo = FractionalAdmissionControl({"e": 2, "f": 2}, alpha=4.0)
        assert algo.small_threshold == pytest.approx(4.0 / (2 * 2))
        assert algo.big_threshold == pytest.approx(8.0)

    def test_thresholds_without_alpha(self):
        algo = FractionalAdmissionControl({"e": 2})
        assert algo.small_threshold is None
        assert algo.big_threshold is None


class TestNoRejectionCase:
    """The paper stresses the algorithm must pay 0 when OPT pays 0."""

    def test_zero_cost_when_no_overload(self, free_instance):
        algo = FractionalAdmissionControl.for_instance(free_instance)
        result = algo.process_sequence(free_instance.requests)
        assert result.fractional_cost == 0.0
        assert result.num_augmentations == 0
        assert all(fraction == 0.0 for fraction in result.fractions.values())

    def test_under_capacity_weighted(self):
        algo = FractionalAdmissionControl({"e": 5})
        for i in range(5):
            algo.process(Request(i, {"e"}, float(i + 1)))
        assert algo.fractional_cost() == 0.0


class TestCoveringConstraint:
    def test_constraint_holds_after_every_arrival(self, star_instance):
        algo = FractionalAdmissionControl.for_instance(star_instance)
        for request in star_instance.requests:
            algo.process(request)
            assert algo.check_invariants() == []

    def test_fractional_rejection_covers_excess(self, overload_instance):
        algo = FractionalAdmissionControl.for_instance(overload_instance)
        algo.process_sequence(overload_instance.requests)
        # The total rejected fraction on the overloaded edge must be at least
        # its excess (5 requests, capacity 2 -> at least 3).
        total = sum(algo.fractions().values())
        assert total >= overload_instance.max_excess() - 1e-9


class TestCostClasses:
    def test_small_requests_rejected_immediately(self):
        algo = FractionalAdmissionControl({"e": 2, "f": 2}, alpha=4.0)
        decision = algo.process(Request(0, {"e"}, 0.5))  # below alpha/(mc) = 1.0
        assert decision.cost_class == CostClass.SMALL
        assert decision.fraction_rejected == 1.0
        assert algo.fractional_cost() == pytest.approx(0.5)

    def test_big_requests_accepted_and_capacity_reserved(self):
        algo = FractionalAdmissionControl({"e": 2, "f": 2}, alpha=1.0)
        decision = algo.process(Request(0, {"e"}, 10.0))  # above 2 alpha
        assert decision.cost_class == CostClass.BIG
        assert decision.fraction_rejected == 0.0
        assert algo.weight_state.capacity("e") == 1
        assert algo.fractional_cost() == 0.0

    def test_normal_requests_enter_weight_mechanism(self):
        algo = FractionalAdmissionControl({"e": 1, "f": 1}, alpha=2.0)
        decision = algo.process(Request(0, {"e"}, 2.0))
        assert decision.cost_class == CostClass.NORMAL

    def test_forced_tag_always_accepted(self):
        algo = FractionalAdmissionControl({"e": 1}, force_accept_tags={"element"})
        decision = algo.process(Request(0, {"e"}, 1.0, tag="element"))
        assert decision.cost_class == CostClass.FORCED
        assert algo.weight_state.capacity("e") == 0

    def test_unweighted_rejects_non_unit_cost(self):
        algo = FractionalAdmissionControl({"e": 1}, unweighted=True)
        with pytest.raises(ValueError):
            algo.process(Request(0, {"e"}, 2.0))

    def test_unweighted_allows_forced_non_unit_cost(self):
        algo = FractionalAdmissionControl({"e": 1}, unweighted=True, force_accept_tags={"x"})
        decision = algo.process(Request(0, {"e"}, 5.0, tag="x"))
        assert decision.cost_class == CostClass.FORCED

    def test_duplicate_request_id_rejected(self, overload_instance):
        algo = FractionalAdmissionControl.for_instance(overload_instance)
        request = overload_instance.requests[0]
        algo.process(request)
        with pytest.raises(ValueError):
            algo.process(request)

    def test_unknown_edge_rejected(self):
        algo = FractionalAdmissionControl({"e": 1})
        with pytest.raises(ValueError):
            algo.process(Request(0, {"zzz"}, 1.0))

    def test_run_result_counts_classes(self):
        algo = FractionalAdmissionControl({"e": 2, "f": 2}, alpha=2.0)
        algo.process(Request(0, {"e"}, 0.1))   # small
        algo.process(Request(1, {"e"}, 10.0))  # big
        algo.process(Request(2, {"e"}, 2.0))   # normal
        result = algo.run_result()
        assert result.num_small == 1
        assert result.num_big == 1
        assert result.num_normal == 1
        assert result.num_requests == 3


class TestCompetitiveness:
    """Theorem 2: fractional cost <= O(log(mc)) * fractional OPT."""

    @pytest.mark.parametrize("m,c", [(8, 2), (16, 4), (32, 4)])
    def test_unweighted_within_log_bound(self, m, c):
        instance = overloaded_edge_adversary(m, c, num_hot_edges=2, random_state=m + c)
        opt = solve_admission_lp(instance)
        algo = FractionalAdmissionControl.for_instance(instance)
        algo.process_sequence(instance.requests)
        # Generous constant: the proof gives (3 + 2/c) * log2(2gc).
        import math

        bound = (3 + 2 / c) * math.log2(2 * algo.g * c) * max(opt.cost, 1e-9) + 4
        assert algo.fractional_cost() <= bound

    @pytest.mark.parametrize("m,c", [(8, 2), (16, 4)])
    def test_weighted_with_oracle_alpha_within_bound(self, m, c):
        instance = single_edge_workload(
            m, 4 * m, capacity=c, concentration=1.3,
            cost_sampler=lambda n, r: uniform_costs(n, 1.0, 5.0, random_state=r),
            random_state=m * 7 + c,
        )
        opt = solve_admission_lp(instance)
        alpha = max(opt.cost, 1e-9)
        algo = FractionalAdmissionControl.for_instance(instance, alpha=alpha)
        algo.process_sequence(instance.requests)
        import math

        bound = (3 + 2 / c) * math.log2(2 * algo.g * c) * alpha + 6 * alpha + 4
        assert algo.fractional_cost() <= bound

    @pytest.mark.parametrize("m,c", [(8, 2), (16, 4), (32, 8)])
    def test_lemma1_augmentation_bound(self, m, c):
        instance = overloaded_edge_adversary(m, c, num_hot_edges=2, random_state=m * 3 + c)
        opt = solve_admission_lp(instance)
        algo = FractionalAdmissionControl.for_instance(instance)
        algo.process_sequence(instance.requests)
        bound = lemma1_augmentation_bound(max(opt.cost, 1e-9), algo.g, algo.c)
        assert algo.num_augmentations <= bound + 1e-9


class TestUpdateAlpha:
    def test_update_changes_thresholds_for_future_requests(self):
        algo = FractionalAdmissionControl({"e": 2, "f": 2}, alpha=1.0)
        assert algo.big_threshold == pytest.approx(2.0)
        algo.update_alpha(10.0)
        assert algo.big_threshold == pytest.approx(20.0)
        assert algo.small_threshold == pytest.approx(10.0 / 4.0)

    def test_update_alpha_validates(self):
        algo = FractionalAdmissionControl({"e": 1}, alpha=1.0)
        with pytest.raises(ValueError):
            algo.update_alpha(0.0)
