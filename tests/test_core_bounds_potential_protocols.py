"""Tests for core.bounds, core.potential and the protocols / result containers."""

import math

import pytest

from repro.core.bounds import (
    bicriteria_set_cover_bound,
    bound_for_admission_instance,
    bound_for_setcover_instance,
    fractional_admission_bound,
    lemma1_augmentation_bound,
    lemma5_augmentation_bound,
    randomized_admission_bound,
    set_cover_randomized_bound,
)
from repro.core.fractional import FractionalAdmissionControl
from repro.core.potential import (
    check_lemma1,
    lemma1_initial_log_potential,
    lemma1_log_potential,
    lemma1_log_upper_bound,
    lemma5_initial_log_potential,
    lemma5_log_potential,
    lemma5_log_upper_bound,
)
from repro.core.protocols import AdmissionResult, run_admission
from repro.core.randomized import RandomizedAdmissionControl
from repro.instances.request import Decision, DecisionKind
from repro.offline import solve_admission_lp


class TestBounds:
    def test_fractional_bounds(self):
        assert fractional_admission_bound(16, 4, weighted=True).value == pytest.approx(6.0)
        assert fractional_admission_bound(16, 4, weighted=False).value == pytest.approx(2.0)

    def test_randomized_bounds(self):
        assert randomized_admission_bound(16, 4, weighted=True).value == pytest.approx(36.0)
        assert randomized_admission_bound(16, 4, weighted=False).value == pytest.approx(8.0)

    def test_setcover_bounds(self):
        assert set_cover_randomized_bound(8, 16, weighted=False).value == pytest.approx(12.0)
        assert set_cover_randomized_bound(8, 16, weighted=True).value == pytest.approx(49.0)
        assert bicriteria_set_cover_bound(8, 16).value == pytest.approx(12.0)

    def test_guarded_for_tiny_instances(self):
        assert fractional_admission_bound(1, 1).value >= 1.0
        assert randomized_admission_bound(1, 1).value >= 1.0

    def test_bounds_monotone_in_parameters(self):
        assert randomized_admission_bound(64, 8).value > randomized_admission_bound(16, 4).value

    def test_normalized_helper(self):
        bound = randomized_admission_bound(16, 4)
        assert bound.normalized(72.0) == pytest.approx(2.0)

    def test_bound_for_instances(self, weighted_instance, small_cover_instance):
        rep = bound_for_admission_instance(weighted_instance, randomized=True)
        assert rep.name.startswith("theorem3")
        rep2 = bound_for_admission_instance(weighted_instance, randomized=False, weighted=False)
        assert rep2.name.startswith("theorem2")
        rep3 = bound_for_setcover_instance(small_cover_instance)
        assert "setcover" in rep3.name
        rep4 = bound_for_setcover_instance(small_cover_instance, bicriteria=True)
        assert rep4.name.startswith("theorem7")

    def test_lemma_bounds(self):
        assert lemma1_augmentation_bound(0.0, 4.0, 2) == 0.0
        assert lemma1_augmentation_bound(2.0, 4.0, 2) == pytest.approx(2 * math.log2(16))
        assert lemma5_augmentation_bound(0.0, 8, 0.2) == 0.0
        assert lemma5_augmentation_bound(1.0, 8, 0.2) == pytest.approx(math.log2(24) / 0.1)
        with pytest.raises(ValueError):
            lemma5_augmentation_bound(1.0, 8, 1.5)


class TestLemma1Potential:
    def test_initial_value_matches_formula(self):
        fractions = {0: 0.5, 1: 0.25}
        costs = {0: 2.0, 1: 4.0}
        zero_weights = {0: 0.0, 1: 0.0}
        log_phi = lemma1_log_potential(zero_weights, fractions, costs, g=4.0, c=2)
        alpha = 0.5 * 2.0 + 0.25 * 4.0
        assert log_phi == pytest.approx(lemma1_initial_log_potential(alpha, 4.0, 2))

    def test_upper_bound_is_alpha(self):
        assert lemma1_log_upper_bound(3.0) == 3.0

    def test_check_lemma1_on_real_run(self, overload_instance):
        opt = solve_admission_lp(overload_instance)
        algo = FractionalAdmissionControl.for_instance(overload_instance)
        algo.process_sequence(overload_instance.requests)
        costs = {rid: algo.weight_state.cost_of(rid) for rid in algo.weight_state.weights()}
        fractions = {rid: opt.fractions.get(rid, 0.0) for rid in costs}
        alpha = sum(fractions[r] * costs[r] for r in costs)
        check = check_lemma1(algo.weight_state, fractions, costs, alpha=alpha, g=algo.g, c=algo.c)
        assert check.all_ok


class TestLemma5Potential:
    def test_log_potential_sums_logs(self):
        weights = {"A": 0.5, "B": 0.25}
        assert lemma5_log_potential(weights, ["A", "B"]) == pytest.approx(math.log2(0.125))

    def test_initial_and_upper_bound(self):
        assert lemma5_initial_log_potential(2.0, 4) == pytest.approx(-2 * 3.0)
        assert lemma5_log_upper_bound(2.0) == pytest.approx(2 * math.log2(1.5))

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            lemma5_log_potential({"A": 0.0}, ["A"])


class TestProtocols:
    def test_admission_result_helpers(self):
        result = AdmissionResult(
            algorithm="x",
            accepted_ids=frozenset({1}),
            rejected_ids=frozenset({2}),
            preempted_ids=frozenset({3}),
            rejection_cost=2.0,
            feasible=True,
            decisions=[Decision(2, DecisionKind.REJECT)],
        )
        assert result.num_rejections == 2
        assert result.all_rejected_ids() == frozenset({2, 3})

    def test_algorithm_state_queries(self, star_instance):
        algo = RandomizedAdmissionControl.for_instance(star_instance, random_state=0)
        run_admission(algo, star_instance)
        assert algo.capacities() == star_instance.capacities
        assert algo.load("hub") <= star_instance.capacity("hub")
        assert algo.residual_capacity("hub") >= 0
        assert isinstance(algo.decisions(), list)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RandomizedAdmissionControl({"e": 0})

    def test_unknown_edge_in_request_rejected(self, star_instance):
        from repro.instances.request import Request

        algo = RandomizedAdmissionControl.for_instance(star_instance)
        with pytest.raises(ValueError):
            algo.process(Request(100, {"nope"}, 1.0))
