"""Tests for the offline comparators (LP, ILP, greedy) on both problems."""

import pytest

from repro.instances.admission import AdmissionInstance
from repro.instances.request import Request
from repro.instances.setcover import SetSystem
from repro.offline import (
    best_greedy,
    greedy_accept_by_cost,
    greedy_accept_by_density,
    greedy_set_multicover,
    solve_admission_ilp,
    solve_admission_lp,
    solve_set_multicover_ilp,
    solve_set_multicover_lp,
)
from repro.workloads import overloaded_edge_adversary, single_edge_workload


class TestAdmissionLP:
    def test_zero_when_no_congestion(self, free_instance):
        assert solve_admission_lp(free_instance).cost == pytest.approx(0.0)

    def test_matches_excess_on_single_edge(self, overload_instance):
        assert solve_admission_lp(overload_instance).cost == pytest.approx(3.0)

    def test_fractions_respect_capacity(self, star_instance):
        solution = solve_admission_lp(star_instance)
        accepted = {
            e: sum(
                1.0 - solution.fractions[r.request_id]
                for r in star_instance.requests
                if e in r.edges
            )
            for e in star_instance.edges()
        }
        for edge, total in accepted.items():
            assert total <= star_instance.capacity(edge) + 1e-6

    def test_lower_bound_on_ilp(self):
        instance = overloaded_edge_adversary(10, 2, random_state=1)
        lp = solve_admission_lp(instance)
        ilp = solve_admission_ilp(instance)
        assert lp.cost <= ilp.cost + 1e-6

    def test_weighted_prefers_rejecting_cheap(self, weighted_instance):
        solution = solve_admission_lp(weighted_instance)
        assert solution.cost == pytest.approx(1.0)
        assert solution.fractions[1] == pytest.approx(1.0)
        assert solution.fractions[0] == pytest.approx(0.0)

    def test_empty_instance(self):
        instance = AdmissionInstance({"a": 1}, [])
        assert solve_admission_lp(instance).cost == 0.0

    def test_rejected_support(self, overload_instance):
        solution = solve_admission_lp(overload_instance)
        assert len(solution.rejected_support()) >= 3


class TestAdmissionILP:
    def test_exact_on_canonical(self, star_instance, chain_instance):
        assert solve_admission_ilp(star_instance).cost == pytest.approx(4.0)
        assert solve_admission_ilp(chain_instance).cost == pytest.approx(1.0)

    def test_solution_is_feasible_partition(self, adversarial_instance):
        solution = solve_admission_ilp(adversarial_instance)
        report = adversarial_instance.check_feasible(solution.accepted_ids)
        assert report.feasible
        assert solution.accepted_ids | solution.rejected_ids == frozenset(
            adversarial_instance.requests.ids()
        )
        assert solution.cost == pytest.approx(
            adversarial_instance.rejection_cost(solution.rejected_ids)
        )

    def test_empty_instance(self):
        instance = AdmissionInstance({"a": 3}, [])
        solution = solve_admission_ilp(instance)
        assert solution.cost == 0.0
        assert solution.num_rejections == 0

    def test_weighted_instance(self, weighted_instance):
        solution = solve_admission_ilp(weighted_instance)
        assert solution.rejected_ids == frozenset({1})


class TestAdmissionGreedy:
    def test_greedy_feasible_and_upper_bound(self):
        instance = single_edge_workload(8, 40, capacity=2, concentration=1.2, random_state=0)
        opt = solve_admission_ilp(instance)
        for solver in (greedy_accept_by_cost, greedy_accept_by_density, best_greedy):
            solution = solver(instance)
            assert instance.check_feasible(solution.accepted_ids).feasible
            assert solution.cost >= opt.cost - 1e-9

    def test_greedy_by_cost_protects_expensive(self, weighted_instance):
        solution = greedy_accept_by_cost(weighted_instance)
        assert solution.rejected_ids == frozenset({1})

    def test_best_greedy_picks_minimum(self):
        instance = AdmissionInstance(
            {"a": 1, "b": 1},
            [
                Request(0, {"a", "b"}, 3.0),
                Request(1, {"a"}, 2.0),
                Request(2, {"b"}, 2.0),
            ],
        )
        best = best_greedy(instance)
        assert best.cost <= greedy_accept_by_cost(instance).cost
        assert best.cost <= greedy_accept_by_density(instance).cost


class TestSetMulticover:
    def test_exact_on_canonical(self, small_cover_instance, repetition_instance):
        assert solve_set_multicover_ilp(
            small_cover_instance.system, small_cover_instance.demands()
        ).cost == pytest.approx(2.0)
        assert solve_set_multicover_ilp(
            repetition_instance.system, repetition_instance.demands()
        ).cost == pytest.approx(3.0)

    def test_chosen_sets_cover_demands(self, random_cover_instance):
        demands = random_cover_instance.demands()
        solution = solve_set_multicover_ilp(random_cover_instance.system, demands)
        for element, demand in demands.items():
            covering = random_cover_instance.system.sets_containing(element) & solution.chosen
            assert len(covering) >= demand

    def test_infeasible_demand_raises(self, simple_system):
        with pytest.raises(ValueError):
            solve_set_multicover_ilp(simple_system, {1: 5})
        with pytest.raises(ValueError):
            solve_set_multicover_lp(simple_system, {1: 5})
        with pytest.raises(ValueError):
            greedy_set_multicover(simple_system, {1: 5})

    def test_zero_demand(self, simple_system):
        assert solve_set_multicover_ilp(simple_system, {}).cost == 0.0
        assert solve_set_multicover_lp(simple_system, {}).cost == 0.0
        assert greedy_set_multicover(simple_system, {}).cost == 0.0

    def test_lp_lower_bounds_ilp(self, random_cover_instance):
        demands = random_cover_instance.demands()
        lp = solve_set_multicover_lp(random_cover_instance.system, demands)
        ilp = solve_set_multicover_ilp(random_cover_instance.system, demands)
        assert lp.cost <= ilp.cost + 1e-6

    def test_greedy_upper_bounds_ilp(self, random_cover_instance):
        demands = random_cover_instance.demands()
        greedy = greedy_set_multicover(random_cover_instance.system, demands)
        ilp = solve_set_multicover_ilp(random_cover_instance.system, demands)
        assert greedy.cost >= ilp.cost - 1e-9
        # Greedy must also be feasible.
        for element, demand in demands.items():
            covering = random_cover_instance.system.sets_containing(element) & greedy.chosen
            assert len(covering) >= demand

    def test_weighted_multicover_prefers_cheap_sets(self):
        system = SetSystem({"cheap": {1, 2}, "costly": {1, 2}}, {"cheap": 1.0, "costly": 10.0})
        solution = solve_set_multicover_ilp(system, {1: 1, 2: 1})
        assert solution.chosen == frozenset({"cheap"})

    def test_weighted_repetition_needs_both(self):
        system = SetSystem({"cheap": {1}, "costly": {1}}, {"cheap": 1.0, "costly": 10.0})
        solution = solve_set_multicover_ilp(system, {1: 2})
        assert solution.chosen == frozenset({"cheap", "costly"})
