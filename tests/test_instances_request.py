"""Unit tests for the Request / RequestSequence data model."""

import pytest

from repro.instances.request import Decision, DecisionKind, Request, RequestSequence


class TestRequest:
    def test_edges_coerced_to_frozenset(self):
        req = Request(0, ["a", "b", "a"], 1.0)
        assert req.edges == frozenset({"a", "b"})
        assert req.num_edges == 2

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            Request(0, frozenset(), 1.0)

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ValueError):
            Request(0, frozenset({"a"}), 0.0)
        with pytest.raises(ValueError):
            Request(0, frozenset({"a"}), -2.0)

    def test_uses(self):
        req = Request(1, frozenset({"a", "b"}), 1.0)
        assert req.uses("a")
        assert not req.uses("c")

    def test_with_cost_returns_new_request(self):
        req = Request(1, frozenset({"a"}), 1.0, tag="t")
        other = req.with_cost(5.0)
        assert other.cost == 5.0
        assert other.request_id == 1
        assert other.tag == "t"
        assert req.cost == 1.0

    def test_frozen(self):
        req = Request(0, frozenset({"a"}), 1.0)
        with pytest.raises(Exception):
            req.cost = 2.0


class TestDecision:
    def test_rejection_classification(self):
        assert Decision(0, DecisionKind.REJECT).is_rejection()
        assert Decision(0, DecisionKind.PREEMPT, at_request=5).is_rejection()
        assert not Decision(0, DecisionKind.ACCEPT).is_rejection()


class TestRequestSequence:
    def test_len_iter_getitem(self, simple_requests):
        assert len(simple_requests) == 3
        assert [r.request_id for r in simple_requests] == [0, 1, 2]
        assert simple_requests[1].cost == 2.5

    def test_slice_returns_sequence(self, simple_requests):
        prefix = simple_requests[:2]
        assert isinstance(prefix, RequestSequence)
        assert len(prefix) == 2

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            RequestSequence([Request(0, {"a"}, 1.0), Request(0, {"b"}, 1.0)])

    def test_by_id_and_ids(self, simple_requests):
        assert simple_requests.by_id(2).cost == 4.0
        assert simple_requests.ids() == [0, 1, 2]
        with pytest.raises(KeyError):
            simple_requests.by_id(99)

    def test_total_and_extreme_costs(self, simple_requests):
        assert simple_requests.total_cost() == pytest.approx(7.5)
        assert simple_requests.max_cost() == 4.0
        assert simple_requests.min_cost() == 1.0

    def test_empty_sequence_costs(self):
        empty = RequestSequence([])
        assert empty.total_cost() == 0.0
        assert empty.max_cost() == 0.0
        assert empty.min_cost() == 0.0

    def test_edges_union(self, simple_requests):
        assert simple_requests.edges() == frozenset({"a", "b"})

    def test_requests_on_edge(self, simple_requests):
        on_a = simple_requests.requests_on_edge("a")
        assert [r.request_id for r in on_a] == [0, 1]

    def test_edge_load(self, simple_requests):
        assert simple_requests.edge_load() == {"a": 2, "b": 2}

    def test_is_unit_cost(self, simple_requests):
        assert not simple_requests.is_unit_cost()
        unit = RequestSequence([Request(0, {"a"}, 1.0), Request(1, {"a"}, 1.0)])
        assert unit.is_unit_cost()

    def test_cost_by_id(self, simple_requests):
        assert simple_requests.cost_by_id() == {0: 1.0, 1: 2.5, 2: 4.0}

    def test_filter(self, simple_requests):
        expensive = simple_requests.filter(lambda r: r.cost > 2.0)
        assert expensive.ids() == [1, 2]

    def test_concatenate(self):
        a = RequestSequence([Request(0, {"x"}, 1.0)])
        b = RequestSequence([Request(1, {"x"}, 1.0)])
        combined = a.concatenate(b)
        assert combined.ids() == [0, 1]

    def test_concatenate_duplicate_ids_rejected(self):
        a = RequestSequence([Request(0, {"x"}, 1.0)])
        with pytest.raises(ValueError):
            a.concatenate(a)

    def test_from_edge_lists(self):
        seq = RequestSequence.from_edge_lists([["a"], ["a", "b"]], costs=[1.0, 2.0], tags=["t", None])
        assert len(seq) == 2
        assert seq[0].tag == "t"
        assert seq[1].edges == frozenset({"a", "b"})

    def test_from_edge_lists_defaults(self):
        seq = RequestSequence.from_edge_lists([["a"], ["b"]])
        assert seq.is_unit_cost()

    def test_from_edge_lists_length_mismatch(self):
        with pytest.raises(ValueError):
            RequestSequence.from_edge_lists([["a"]], costs=[1.0, 2.0])
