"""Tests for admission-control workload generators (random + adversarial)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topologies import grid_graph
from repro.offline import solve_admission_ilp
from repro.workloads import (
    benefit_objective_trap,
    bimodal_costs,
    cheap_then_expensive_adversary,
    hotspot_workload,
    line_interval_workload,
    lognormal_costs,
    long_vs_short_adversary,
    overloaded_edge_adversary,
    pareto_costs,
    random_path_workload,
    repeated_overload_adversary,
    single_edge_workload,
    uniform_costs,
    unit_costs,
    zipf_cost_workload,
    zipf_costs,
)


class TestCostSamplers:
    def test_unit_costs(self):
        assert np.all(unit_costs(5) == 1.0)

    def test_uniform_costs_in_range(self, rng):
        costs = uniform_costs(100, 2.0, 3.0, random_state=rng)
        assert costs.shape == (100,)
        assert np.all((costs >= 2.0) & (costs <= 3.0))

    def test_pareto_costs_above_scale(self, rng):
        costs = pareto_costs(100, shape=2.0, scale=1.5, random_state=rng)
        assert np.all(costs >= 1.5)

    def test_lognormal_costs_positive(self, rng):
        assert np.all(lognormal_costs(50, random_state=rng) > 0)

    def test_bimodal_costs_two_levels(self, rng):
        costs = bimodal_costs(200, 1.0, 10.0, 0.5, random_state=rng)
        assert set(np.unique(costs)) <= {1.0, 10.0}
        assert (costs == 10.0).sum() > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            uniform_costs(5, 0.0, 1.0)
        with pytest.raises(ValueError):
            pareto_costs(5, shape=-1.0)
        with pytest.raises(ValueError):
            bimodal_costs(5, expensive_fraction=2.0)
        with pytest.raises(ValueError):
            unit_costs(-1)


class TestZipfCosts:
    """Edge cases of the Zipf sampler (zeta mode and ranked-support mode)."""

    def test_zeta_mode_positive_and_capped(self, rng):
        costs = zipf_costs(500, exponent=1.5, scale=2.0, cap=50.0, random_state=rng)
        assert costs.shape == (500,)
        assert np.all(costs >= 2.0)
        assert np.all(costs <= 50.0)

    def test_zeta_mode_rejects_alpha_at_most_one(self):
        for alpha in (1.0, 0.5, 0.0, -2.0):
            with pytest.raises(ValueError, match="> 1"):
                zipf_costs(10, exponent=alpha)

    def test_support_mode_draws_only_support_levels(self, rng):
        support = [1.0, 5.0, 25.0]
        costs = zipf_costs(300, exponent=1.2, support=support, random_state=rng)
        assert set(np.unique(costs)) <= set(support)
        # Rank-1 must dominate rank-3 under a decreasing Zipf.
        assert (costs == 1.0).sum() > (costs == 25.0).sum()

    def test_support_mode_rejects_alpha_at_most_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            zipf_costs(10, exponent=0.0, support=[1.0, 2.0])
        with pytest.raises(ValueError, match="> 0"):
            zipf_costs(10, exponent=-1.0, support=[1.0, 2.0])

    def test_single_element_support_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            zipf_costs(10, support=[3.0])
        with pytest.raises(ValueError, match="at least two"):
            zipf_costs(10, support=[])

    def test_nonpositive_support_levels_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            zipf_costs(10, support=[1.0, -2.0])
        with pytest.raises(ValueError, match="positive"):
            zipf_costs(10, support=[0.0, 2.0])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            zipf_costs(-1)

    @given(
        exponent=st.floats(min_value=1.01, max_value=4.0, allow_nan=False),
        scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_zeta_outputs_always_valid(self, exponent, scale, seed):
        cap = scale * 100.0
        costs = zipf_costs(64, exponent=exponent, scale=scale, cap=cap, random_state=seed)
        assert costs.shape == (64,)
        assert np.all(costs >= scale - 1e-12)
        assert np.all(costs <= cap + 1e-12)
        assert np.all(np.isfinite(costs))

    @given(
        exponent=st.floats(min_value=0.01, max_value=4.0, allow_nan=False),
        levels=st.lists(
            st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_support_outputs_come_from_support(self, exponent, levels, seed):
        costs = zipf_costs(32, exponent=exponent, support=levels, random_state=seed)
        assert costs.shape == (32,)
        assert set(np.unique(costs)) <= set(levels)

    @given(alpha=st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_property_nonpositive_alpha_always_rejected(self, alpha):
        # The satellite's pinned behaviour: alpha <= 0 is an error in *both*
        # modes (zeta mode additionally rejects alpha in (0, 1]).
        with pytest.raises(ValueError):
            zipf_costs(8, exponent=alpha)
        with pytest.raises(ValueError):
            zipf_costs(8, exponent=alpha, support=[1.0, 2.0])


class TestZipfCostWorkload:
    def test_single_edge_support_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            zipf_cost_workload(num_edges=1, num_requests=5, random_state=0)

    def test_nonpositive_concentration_rejected(self):
        with pytest.raises(ValueError, match="edge_concentration"):
            zipf_cost_workload(num_edges=4, num_requests=5, edge_concentration=0.0)

    def test_valid_workload_generates(self):
        instance = zipf_cost_workload(num_edges=8, num_requests=40, random_state=1)
        assert instance.num_requests == 40
        assert instance.num_edges == 8


class TestRandomWorkloads:
    def test_random_path_workload_valid(self, rng):
        graph = grid_graph(3, 3, capacity=2)
        instance = random_path_workload(graph, 20, random_state=rng)
        assert instance.num_requests == 20
        assert instance.max_capacity == 2
        # All requests reference edges of the graph.
        for request in instance.requests:
            for edge in request.edges:
                assert edge in instance.capacities

    def test_random_path_workload_reproducible(self):
        graph = grid_graph(3, 3)
        a = random_path_workload(graph, 10, random_state=5)
        b = random_path_workload(graph, 10, random_state=5)
        assert [r.edges for r in a.requests] == [r.edges for r in b.requests]

    def test_random_path_workload_with_random_paths(self, rng):
        graph = grid_graph(3, 3)
        instance = random_path_workload(graph, 10, shortest_paths=False, random_state=rng)
        assert instance.num_requests == 10

    def test_single_edge_workload(self, rng):
        instance = single_edge_workload(10, 50, capacity=2, concentration=1.5, random_state=rng)
        assert instance.num_edges == 10
        assert all(r.num_edges == 1 for r in instance.requests)

    def test_single_edge_workload_concentration_skews_load(self):
        instance = single_edge_workload(20, 400, concentration=2.0, random_state=0)
        load = instance.requests.edge_load()
        assert load.get("e0", 0) > load.get("e19", 0)

    def test_hotspot_workload_creates_congestion(self, rng):
        graph = grid_graph(3, 3, capacity=1)
        instance = hotspot_workload(graph, 40, num_hotspots=1, hotspot_fraction=1.0, random_state=rng)
        assert instance.max_excess() > 0

    def test_line_interval_workload(self, rng):
        instance = line_interval_workload(10, 30, capacity=2, random_state=rng)
        assert instance.num_edges == 9
        assert instance.num_requests == 30

    def test_cost_sampler_validation(self, rng):
        graph = grid_graph(2, 2)
        with pytest.raises(ValueError):
            random_path_workload(graph, 5, cost_sampler=lambda n, r: np.zeros(n), random_state=rng)
        with pytest.raises(ValueError):
            random_path_workload(graph, 5, cost_sampler=lambda n, r: np.ones(n + 1), random_state=rng)

    def test_generator_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            single_edge_workload(0, 5)
        with pytest.raises(ValueError):
            line_interval_workload(1, 5)
        graph = grid_graph(2, 2)
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, hotspot_fraction=1.5, random_state=rng)


class TestAdversarialWorkloads:
    def test_overloaded_edge_adversary_requires_rejections(self):
        instance = overloaded_edge_adversary(10, 2, num_hot_edges=2, overload_factor=3.0, random_state=0)
        opt = solve_admission_ilp(instance)
        # Each hot edge sees 6 single-edge requests for capacity 2 (plus decoys).
        assert opt.cost >= 8.0
        assert instance.num_edges == 10

    def test_overloaded_edge_adversary_validation(self):
        with pytest.raises(ValueError):
            overloaded_edge_adversary(4, 1, num_hot_edges=5)

    def test_cheap_then_expensive_gap(self):
        instance = cheap_then_expensive_adversary(4, 2, expensive_cost=50.0)
        opt = solve_admission_ilp(instance)
        # OPT rejects the cheap requests only: 2 per edge.
        assert opt.cost == pytest.approx(8.0)

    def test_long_vs_short_structure(self):
        instance = long_vs_short_adversary(6, capacity=1)
        assert instance.requests[0].num_edges == 6
        opt = solve_admission_ilp(instance)
        assert opt.cost == pytest.approx(1.0)

    def test_benefit_trap_optimum_small(self):
        instance = benefit_objective_trap(4, 3, capacity=1)
        opt = solve_admission_ilp(instance)
        assert opt.cost <= 4 * 3 + 4
        assert opt.cost > 0

    def test_repeated_overload(self):
        instance = repeated_overload_adversary(capacity=2, num_waves=3, random_state=1)
        opt = solve_admission_ilp(instance)
        # 3 waves of 4 requests through capacity 2 -> reject 12 - 2 = 10.
        assert opt.cost == pytest.approx(10.0)

    def test_adversaries_validate_parameters(self):
        with pytest.raises(ValueError):
            cheap_then_expensive_adversary(0, 1)
        with pytest.raises(ValueError):
            long_vs_short_adversary(0)
        with pytest.raises(ValueError):
            benefit_objective_trap(0, 1)
        with pytest.raises(ValueError):
            repeated_overload_adversary(0, 1)
