"""Tests for admission-control workload generators (random + adversarial)."""

import numpy as np
import pytest

from repro.network.topologies import grid_graph
from repro.offline import solve_admission_ilp
from repro.workloads import (
    benefit_objective_trap,
    bimodal_costs,
    cheap_then_expensive_adversary,
    hotspot_workload,
    line_interval_workload,
    lognormal_costs,
    long_vs_short_adversary,
    overloaded_edge_adversary,
    pareto_costs,
    random_path_workload,
    repeated_overload_adversary,
    single_edge_workload,
    uniform_costs,
    unit_costs,
)


class TestCostSamplers:
    def test_unit_costs(self):
        assert np.all(unit_costs(5) == 1.0)

    def test_uniform_costs_in_range(self, rng):
        costs = uniform_costs(100, 2.0, 3.0, random_state=rng)
        assert costs.shape == (100,)
        assert np.all((costs >= 2.0) & (costs <= 3.0))

    def test_pareto_costs_above_scale(self, rng):
        costs = pareto_costs(100, shape=2.0, scale=1.5, random_state=rng)
        assert np.all(costs >= 1.5)

    def test_lognormal_costs_positive(self, rng):
        assert np.all(lognormal_costs(50, random_state=rng) > 0)

    def test_bimodal_costs_two_levels(self, rng):
        costs = bimodal_costs(200, 1.0, 10.0, 0.5, random_state=rng)
        assert set(np.unique(costs)) <= {1.0, 10.0}
        assert (costs == 10.0).sum() > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            uniform_costs(5, 0.0, 1.0)
        with pytest.raises(ValueError):
            pareto_costs(5, shape=-1.0)
        with pytest.raises(ValueError):
            bimodal_costs(5, expensive_fraction=2.0)
        with pytest.raises(ValueError):
            unit_costs(-1)


class TestRandomWorkloads:
    def test_random_path_workload_valid(self, rng):
        graph = grid_graph(3, 3, capacity=2)
        instance = random_path_workload(graph, 20, random_state=rng)
        assert instance.num_requests == 20
        assert instance.max_capacity == 2
        # All requests reference edges of the graph.
        for request in instance.requests:
            for edge in request.edges:
                assert edge in instance.capacities

    def test_random_path_workload_reproducible(self):
        graph = grid_graph(3, 3)
        a = random_path_workload(graph, 10, random_state=5)
        b = random_path_workload(graph, 10, random_state=5)
        assert [r.edges for r in a.requests] == [r.edges for r in b.requests]

    def test_random_path_workload_with_random_paths(self, rng):
        graph = grid_graph(3, 3)
        instance = random_path_workload(graph, 10, shortest_paths=False, random_state=rng)
        assert instance.num_requests == 10

    def test_single_edge_workload(self, rng):
        instance = single_edge_workload(10, 50, capacity=2, concentration=1.5, random_state=rng)
        assert instance.num_edges == 10
        assert all(r.num_edges == 1 for r in instance.requests)

    def test_single_edge_workload_concentration_skews_load(self):
        instance = single_edge_workload(20, 400, concentration=2.0, random_state=0)
        load = instance.requests.edge_load()
        assert load.get("e0", 0) > load.get("e19", 0)

    def test_hotspot_workload_creates_congestion(self, rng):
        graph = grid_graph(3, 3, capacity=1)
        instance = hotspot_workload(graph, 40, num_hotspots=1, hotspot_fraction=1.0, random_state=rng)
        assert instance.max_excess() > 0

    def test_line_interval_workload(self, rng):
        instance = line_interval_workload(10, 30, capacity=2, random_state=rng)
        assert instance.num_edges == 9
        assert instance.num_requests == 30

    def test_cost_sampler_validation(self, rng):
        graph = grid_graph(2, 2)
        with pytest.raises(ValueError):
            random_path_workload(graph, 5, cost_sampler=lambda n, r: np.zeros(n), random_state=rng)
        with pytest.raises(ValueError):
            random_path_workload(graph, 5, cost_sampler=lambda n, r: np.ones(n + 1), random_state=rng)

    def test_generator_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            single_edge_workload(0, 5)
        with pytest.raises(ValueError):
            line_interval_workload(1, 5)
        graph = grid_graph(2, 2)
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, hotspot_fraction=1.5, random_state=rng)


class TestAdversarialWorkloads:
    def test_overloaded_edge_adversary_requires_rejections(self):
        instance = overloaded_edge_adversary(10, 2, num_hot_edges=2, overload_factor=3.0, random_state=0)
        opt = solve_admission_ilp(instance)
        # Each hot edge sees 6 single-edge requests for capacity 2 (plus decoys).
        assert opt.cost >= 8.0
        assert instance.num_edges == 10

    def test_overloaded_edge_adversary_validation(self):
        with pytest.raises(ValueError):
            overloaded_edge_adversary(4, 1, num_hot_edges=5)

    def test_cheap_then_expensive_gap(self):
        instance = cheap_then_expensive_adversary(4, 2, expensive_cost=50.0)
        opt = solve_admission_ilp(instance)
        # OPT rejects the cheap requests only: 2 per edge.
        assert opt.cost == pytest.approx(8.0)

    def test_long_vs_short_structure(self):
        instance = long_vs_short_adversary(6, capacity=1)
        assert instance.requests[0].num_edges == 6
        opt = solve_admission_ilp(instance)
        assert opt.cost == pytest.approx(1.0)

    def test_benefit_trap_optimum_small(self):
        instance = benefit_objective_trap(4, 3, capacity=1)
        opt = solve_admission_ilp(instance)
        assert opt.cost <= 4 * 3 + 4
        assert opt.cost > 0

    def test_repeated_overload(self):
        instance = repeated_overload_adversary(capacity=2, num_waves=3, random_state=1)
        opt = solve_admission_ilp(instance)
        # 3 waves of 4 requests through capacity 2 -> reject 12 - 2 = 10.
        assert opt.cost == pytest.approx(10.0)

    def test_adversaries_validate_parameters(self):
        with pytest.raises(ValueError):
            cheap_then_expensive_adversary(0, 1)
        with pytest.raises(ValueError):
            long_vs_short_adversary(0)
        with pytest.raises(ValueError):
            benefit_objective_trap(0, 1)
        with pytest.raises(ValueError):
            repeated_overload_adversary(0, 1)
