"""Tests for the Section-3 randomized admission-control algorithm."""

import numpy as np
import pytest

from repro.core.protocols import run_admission
from repro.core.randomized import RandomizedAdmissionControl
from repro.instances.request import DecisionKind, Request
from repro.offline import solve_admission_ilp
from repro.utils.mathx import log2_guarded
from repro.workloads import (
    cheap_then_expensive_adversary,
    overloaded_edge_adversary,
    repeated_overload_adversary,
)
from repro.analysis.invariants import check_admission_result


class TestConfiguration:
    def test_weighted_constants(self):
        algo = RandomizedAdmissionControl({f"e{k}": 4 for k in range(8)}, weighted=True)
        expected_log = log2_guarded(8 * 4)
        assert algo.weight_threshold == pytest.approx(1.0 / (12 * expected_log))
        assert algo.prob_factor == pytest.approx(12 * expected_log)

    def test_unweighted_constants(self):
        algo = RandomizedAdmissionControl({f"e{k}": 4 for k in range(8)}, weighted=False)
        expected_log = log2_guarded(8)
        assert algo.weight_threshold == pytest.approx(1.0 / (4 * expected_log))
        assert algo.prob_factor == pytest.approx(4 * expected_log)

    def test_custom_rounding_constant(self):
        algo = RandomizedAdmissionControl({"e": 1}, weighted=False, rounding_constant=2.0)
        assert algo.prob_factor == pytest.approx(2.0 * log2_guarded(1))

    def test_invalid_rounding_constant(self):
        with pytest.raises(ValueError):
            RandomizedAdmissionControl({"e": 1}, rounding_constant=0.0)

    def test_for_instance_infers_weighted(self, weighted_instance, star_instance):
        assert RandomizedAdmissionControl.for_instance(weighted_instance).weighted
        assert not RandomizedAdmissionControl.for_instance(star_instance).weighted


class TestFeasibility:
    """The accepted set must respect every capacity at all times."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_always_feasible_on_adversarial_workload(self, seed):
        instance = overloaded_edge_adversary(12, 2, num_hot_edges=3, random_state=seed)
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=seed)
        for request in instance.requests:
            algo.process(request)
            assert algo.is_feasible()
        report = check_admission_result(instance, algo.result())
        assert report.ok, str(report)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_feasible_on_weighted_workload(self, seed):
        instance = cheap_then_expensive_adversary(6, 2, expensive_cost=20.0)
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=seed)
        result = run_admission(algo, instance)
        assert result.feasible
        assert check_admission_result(instance, result).ok

    def test_no_rejections_when_no_congestion(self, free_instance):
        algo = RandomizedAdmissionControl.for_instance(free_instance, random_state=0)
        result = run_admission(algo, free_instance)
        assert result.rejection_cost == 0.0
        assert result.num_rejections == 0

    def test_decision_partition_complete(self, adversarial_instance):
        algo = RandomizedAdmissionControl.for_instance(adversarial_instance, random_state=5)
        result = run_admission(algo, adversarial_instance)
        decided = result.accepted_ids | result.rejected_ids | result.preempted_ids
        assert decided == frozenset(adversarial_instance.requests.ids())


class TestRejectionAccounting:
    def test_rejection_cost_matches_decisions(self, adversarial_instance):
        algo = RandomizedAdmissionControl.for_instance(adversarial_instance, random_state=7)
        result = run_admission(algo, adversarial_instance)
        expected = adversarial_instance.rejection_cost(result.rejected_ids | result.preempted_ids)
        assert result.rejection_cost == pytest.approx(expected)

    def test_lower_bound_respected(self, overload_instance):
        # Any algorithm must reject at least the excess of the overloaded edge.
        algo = RandomizedAdmissionControl.for_instance(overload_instance, random_state=0)
        result = run_admission(algo, overload_instance)
        assert result.num_rejections >= overload_instance.lower_bound_rejections()

    def test_extra_metrics_present(self, adversarial_instance):
        algo = RandomizedAdmissionControl.for_instance(adversarial_instance, random_state=1)
        result = run_admission(algo, adversarial_instance)
        for key in ("fractional_cost", "num_augmentations", "threshold_rejections", "coin_rejections"):
            assert key in result.extra

    def test_duplicate_request_rejected(self, overload_instance):
        algo = RandomizedAdmissionControl.for_instance(overload_instance)
        request = overload_instance.requests[0]
        algo.process(request)
        with pytest.raises(ValueError):
            algo.process(request)


class TestDeterminismGivenSeed:
    def test_same_seed_same_decisions(self, adversarial_instance):
        results = []
        for _ in range(2):
            algo = RandomizedAdmissionControl.for_instance(adversarial_instance, random_state=42)
            results.append(run_admission(algo, adversarial_instance))
        assert results[0].rejected_ids == results[1].rejected_ids
        assert results[0].preempted_ids == results[1].preempted_ids

    def test_random_stream_is_consumed_on_congested_input(self):
        instance = overloaded_edge_adversary(16, 2, num_hot_edges=3, random_state=0)
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=11)
        state_before = repr(algo.rng.bit_generator.state)
        run_admission(algo, instance)
        # Step 3's coin flips must actually draw from the generator.
        assert repr(algo.rng.bit_generator.state) != state_before

    def test_coin_rejections_fire_when_every_coin_says_reject(self):
        # Step 3 (probabilistic rounding of the weight increases) is exercised
        # deterministically by forcing every coin flip to land below the
        # rejection probability: any accepted request whose weight increased
        # must then be preempted through the coin path.
        class AlwaysReject:
            def random(self):
                return 0.0

        # Capacity is large relative to the threshold 1/(4 log2 m), so the
        # seeded weights stay below the step-2 threshold and only the step-3
        # coins can preempt.
        capacities = {f"e{k}": 64 for k in range(4)}
        algo = RandomizedAdmissionControl(capacities, weighted=False, random_state=0)
        algo.rng = AlwaysReject()
        for i in range(65):  # the 65th request pushes edge e0 one unit over capacity
            algo.process(Request(i, {"e0"}, 1.0))
        assert algo.num_coin_rejections > 0
        assert algo.is_feasible()


class TestCompetitiveness:
    """Theorem 3/4 shape: ratio within a generous polylog bound, on average."""

    def test_unweighted_mean_ratio_within_bound(self):
        ratios = []
        for seed in range(5):
            instance = overloaded_edge_adversary(24, 3, num_hot_edges=3, random_state=seed)
            opt = solve_admission_ilp(instance)
            algo = RandomizedAdmissionControl.for_instance(instance, weighted=False, random_state=seed)
            result = run_admission(algo, instance)
            ratios.append(result.rejection_cost / max(opt.cost, 1.0))
        mean_ratio = float(np.mean(ratios))
        bound = 16 * log2_guarded(24) * log2_guarded(3)
        assert mean_ratio <= bound

    def test_weighted_with_oracle_alpha_protects_expensive(self):
        instance = cheap_then_expensive_adversary(8, 2, expensive_cost=50.0)
        opt = solve_admission_ilp(instance)
        algo = RandomizedAdmissionControl.for_instance(
            instance, weighted=True, alpha=opt.cost, random_state=3
        )
        result = run_admission(algo, instance)
        # With the R_big preprocessing the expensive requests are never rejected.
        expensive_ids = {r.request_id for r in instance.requests if r.cost > 2 * opt.cost}
        assert not (expensive_ids & result.all_rejected_ids())

    def test_repeated_overload_stays_reasonable(self):
        instance = repeated_overload_adversary(capacity=3, num_waves=5, random_state=2)
        opt = solve_admission_ilp(instance)
        algo = RandomizedAdmissionControl.for_instance(instance, weighted=False, random_state=2)
        result = run_admission(algo, instance)
        assert result.rejection_cost <= 4 * opt.cost + 4


class TestForcedAcceptance:
    def test_forced_requests_always_accepted(self):
        capacities = {"e": 1}
        algo = RandomizedAdmissionControl(
            capacities, weighted=False, force_accept_tags={"element"}, random_state=0
        )
        algo.process(Request(0, {"e"}, 1.0))
        decision = algo.process(Request(1, {"e"}, 1.0, tag="element"))
        assert decision.kind == DecisionKind.ACCEPT
        assert 1 in algo.accepted_ids()
        # Feasibility restored by preempting the normal request.
        assert algo.is_feasible()
        assert 0 in algo.preempted_ids() | algo.rejected_ids()

    def test_forced_requests_never_preempted_by_rounding(self):
        # One normal request plus two forced requests on a capacity-2 edge:
        # feasibility is restored by evicting the normal request, never a
        # forced one.
        capacities = {"e": 2}
        algo = RandomizedAdmissionControl(
            capacities, weighted=False, force_accept_tags={"element"}, random_state=0
        )
        algo.process(Request(0, {"e"}, 1.0))
        algo.process(Request(1, {"e"}, 1.0, tag="element"))
        algo.process(Request(2, {"e"}, 1.0, tag="element"))
        assert 1 in algo.accepted_ids()
        assert 2 in algo.accepted_ids()
        assert 0 not in algo.accepted_ids()
        assert algo.is_feasible()


class TestOverloadGuard:
    def test_guard_triggers_on_massively_overloaded_edge(self):
        # m=1, c=1 -> guard limit 4mc^2 = 4 requests on one edge.
        algo = RandomizedAdmissionControl({"e": 1}, weighted=False, overload_guard=True, random_state=0)
        for i in range(6):
            algo.process(Request(i, {"e"}, 1.0))
        assert algo.is_feasible()
        # Requests arriving after the guard fires are rejected outright.
        assert len(algo.rejected_ids() | algo.preempted_ids()) >= 3

    def test_guard_disabled_by_default(self):
        algo = RandomizedAdmissionControl({"e": 1}, weighted=False, random_state=0)
        assert not algo.overload_guard
