"""Property-based tests (hypothesis) for the admission-control algorithms.

The properties mirror the structural claims of the paper that must hold on
*every* input, not just the workloads we happened to generate:

* every algorithm's accepted set is feasible at all times;
* the decision partition is complete and consistent;
* the fractional covering constraints hold after every arrival and weights are
  monotone;
* the randomized algorithm never pays less than the per-edge excess lower
  bound and never rejects anything when there is no congestion.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import GreedySwap, KeepExpensive, RejectWhenFull
from repro.core.doubling import DoublingAdmissionControl
from repro.core.fractional import FractionalAdmissionControl
from repro.core.protocols import run_admission
from repro.core.randomized import RandomizedAdmissionControl
from repro.instances.admission import AdmissionInstance
from repro.instances.request import Request, RequestSequence
from repro.analysis.invariants import check_admission_result

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def admission_instances(draw, max_edges: int = 6, max_requests: int = 20, weighted: bool = True):
    """Random small admission instances (edges, capacities, arbitrary edge-subset requests)."""
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = [f"e{k}" for k in range(num_edges)]
    capacities = {
        e: draw(st.integers(min_value=1, max_value=3)) for e in edges
    }
    num_requests = draw(st.integers(min_value=0, max_value=max_requests))
    requests = []
    for rid in range(num_requests):
        size = draw(st.integers(min_value=1, max_value=num_edges))
        subset = draw(
            st.lists(st.sampled_from(edges), min_size=size, max_size=size, unique=True)
        )
        if weighted:
            cost = draw(
                st.floats(min_value=0.1, max_value=50.0, allow_nan=False, allow_infinity=False)
            )
        else:
            cost = 1.0
        requests.append(Request(rid, frozenset(subset), float(cost)))
    return AdmissionInstance(capacities, RequestSequence(requests), name="hypothesis")


class TestFeasibilityProperties:
    @SETTINGS
    @given(instance=admission_instances(), seed=st.integers(min_value=0, max_value=10**6))
    def test_randomized_always_feasible_and_consistent(self, instance, seed):
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=seed)
        for request in instance.requests:
            algo.process(request)
            assert algo.is_feasible()
        result = algo.result()
        assert check_admission_result(instance, result).ok

    @SETTINGS
    @given(instance=admission_instances(), seed=st.integers(min_value=0, max_value=10**6))
    def test_doubling_always_feasible_and_consistent(self, instance, seed):
        algo = DoublingAdmissionControl.for_instance(instance, random_state=seed)
        result = run_admission(algo, instance)
        assert result.feasible
        assert check_admission_result(instance, result).ok

    @SETTINGS
    @given(instance=admission_instances(weighted=False))
    def test_baselines_always_feasible(self, instance):
        for factory in (RejectWhenFull, KeepExpensive, GreedySwap):
            algo = factory.for_instance(instance)
            result = run_admission(algo, instance)
            assert check_admission_result(instance, result).ok, factory.__name__


class TestLowerBoundProperties:
    @SETTINGS
    @given(instance=admission_instances(weighted=False), seed=st.integers(min_value=0, max_value=100))
    def test_rejections_at_least_max_excess(self, instance, seed):
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=seed)
        result = run_admission(algo, instance)
        assert result.num_rejections >= instance.lower_bound_rejections()

    @SETTINGS
    @given(instance=admission_instances(), seed=st.integers(min_value=0, max_value=100))
    def test_no_congestion_implies_no_rejection(self, instance, seed):
        if instance.max_excess() > 0:
            return  # property only applies to congestion-free instances
        algo = RandomizedAdmissionControl.for_instance(instance, random_state=seed)
        result = run_admission(algo, instance)
        assert result.rejection_cost == 0.0


class TestFractionalProperties:
    @SETTINGS
    @given(instance=admission_instances(weighted=False))
    def test_covering_constraints_and_monotone_weights(self, instance):
        algo = FractionalAdmissionControl.for_instance(instance)
        previous = {}
        for request in instance.requests:
            algo.process(request)
            assert algo.check_invariants() == []
            weights = algo.weight_state.weights()
            for rid, old in previous.items():
                assert weights[rid] >= old - 1e-12
            previous = weights

    @SETTINGS
    @given(instance=admission_instances(weighted=False))
    def test_fractional_cost_at_most_total_cost(self, instance):
        algo = FractionalAdmissionControl.for_instance(instance)
        algo.process_sequence(instance.requests)
        assert algo.fractional_cost() <= instance.requests.total_cost() + 1e-9

    @SETTINGS
    @given(
        instance=admission_instances(weighted=True),
        alpha=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
    )
    def test_cost_classes_partition_requests(self, instance, alpha):
        algo = FractionalAdmissionControl.for_instance(instance, alpha=alpha, unweighted=False)
        algo.process_sequence(instance.requests)
        result = algo.run_result()
        assert result.num_small + result.num_big + result.num_normal == instance.num_requests
        assert algo.check_invariants() == []
