"""Tests for the engine registries and their wiring into the experiments."""

import inspect

import pytest

from repro.engine.registry import (
    ADMISSION_ALGORITHMS,
    EXPERIMENTS,
    SETCOVER_ALGORITHMS,
    WEIGHT_BACKENDS,
    DuplicateKeyError,
    Registry,
    RegistryError,
    UnknownKeyError,
)
from repro.engine.runtime import ensure_builtin_registrations


class TestRegistryBehaviour:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert "a" in reg
        assert len(reg) == 1

    def test_duplicate_key_raises(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(DuplicateKeyError) as err:
            reg.register("a", 2)
        assert "already registered" in str(err.value)
        assert "a" in str(err.value)
        # The original registration survives a failed overwrite attempt.
        assert reg.get("a") == 1

    def test_duplicate_key_overwrite_opt_in(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_unknown_key_message_lists_known_keys(self):
        reg = Registry("gadget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(UnknownKeyError) as err:
            reg.get("gamma")
        message = str(err.value)
        assert "unknown gadget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_unknown_key_is_a_keyerror(self):
        reg = Registry("thing")
        with pytest.raises(KeyError):
            reg.get("missing")

    def test_keys_normalised_case_insensitively(self):
        reg = Registry("thing")
        reg.register("MiXeD", 7)
        assert reg.get("mixed") == 7
        assert reg.get("MIXED") == 7

    def test_decorator_form(self):
        reg = Registry("builder")

        @reg.register("fn")
        def build():
            return 42

        assert reg.get("fn") is build

    def test_bad_keys_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError):
            reg.register("", 1)
        with pytest.raises(RegistryError):
            reg.register(None, 1)  # type: ignore[arg-type]

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(UnknownKeyError):
            reg.unregister("a")


class TestBuiltinRegistrations:
    def test_weight_backends_registered(self):
        ensure_builtin_registrations()
        assert "python" in WEIGHT_BACKENDS
        assert "numpy" in WEIGHT_BACKENDS

    def test_paper_algorithms_registered(self):
        ensure_builtin_registrations()
        for key in ("fractional", "randomized", "doubling"):
            assert key in ADMISSION_ALGORITHMS, key
        for key in ("reduction", "bicriteria"):
            assert key in SETCOVER_ALGORITHMS, key

    def test_baselines_registered(self):
        ensure_builtin_registrations()
        for key in (
            "reject-when-full",
            "keep-expensive",
            "greedy-swap",
            "threshold",
            "exponential-benefit",
        ):
            assert key in ADMISSION_ALGORITHMS, key
        for key in ("cheapest-set", "greedy-density", "random-set"):
            assert key in SETCOVER_ALGORITHMS, key


class TestExperimentsResolveViaRegistry:
    @pytest.fixture(scope="class", autouse=True)
    def _experiments(self):
        import repro.experiments  # noqa: F401  (registers E1..E10)

        ensure_builtin_registrations()

    @pytest.mark.parametrize("k", range(1, 11))
    def test_experiment_in_registry(self, k):
        assert f"E{k}" in EXPERIMENTS

    @pytest.mark.parametrize("k", range(1, 11))
    def test_declared_algorithm_keys_resolve(self, k):
        """Every experiment declares its algorithm keys and they all resolve."""
        module = inspect.getmodule(EXPERIMENTS.get(f"E{k}"))
        admission = getattr(module, "USES_ADMISSION")
        setcover = getattr(module, "USES_SETCOVER")
        assert admission or setcover, f"E{k} declares no algorithms"
        for key in admission:
            assert key in ADMISSION_ALGORITHMS, f"E{k}: {key}"
            assert callable(ADMISSION_ALGORITHMS.get(key))
        for key in setcover:
            assert key in SETCOVER_ALGORITHMS, f"E{k}: {key}"
            assert callable(SETCOVER_ALGORITHMS.get(key))

    @pytest.mark.parametrize("k", range(1, 11))
    def test_experiment_builds_through_registry_helpers(self, k):
        """The experiment source goes through the registry, not direct classes.

        Registry resolution takes one of two shapes: the direct
        ``make_admission_algorithm`` / ``make_setcover_algorithm`` helpers,
        or — since the unified run-spec API — a ``RunSpec`` whose algorithm
        key the Runner resolves through the same registries.
        """
        module = inspect.getmodule(EXPERIMENTS.get(f"E{k}"))
        source = inspect.getsource(module)
        assert (
            "make_admission_algorithm" in source
            or "make_setcover_algorithm" in source
            or "RunSpec" in source
        ), f"E{k} does not resolve its algorithms through the engine registry"
