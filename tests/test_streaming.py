"""Tests for the streaming service layer: sessions, checkpoints, sharding.

The load-bearing property is resume equivalence: a session checkpointed
mid-stream (through a full JSON round-trip) and restored — in this process
or a fresh one, on either backend — must produce a decision log identical
(1e-9 on fractions; exactly on events) to an uninterrupted run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.streaming import (
    ROUTER_CHECKPOINT_KIND,
    ShardedStreamRouter,
    StreamingSession,
    default_namespace,
)
from repro.instances.request import Request
from repro.instances.serialize import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CheckpointFormatError,
    load_checkpoint,
)
from repro.workloads.admission_traffic import adversarial_mix_workload, bursty_workload

BACKENDS = ("python", "numpy")


def make_instance(seed, *, num_requests=48):
    """A small congested instance with costs spread enough to matter."""
    from repro.workloads.costs import uniform_costs

    return bursty_workload(
        num_edges=10,
        num_requests=num_requests,
        capacity=2,
        num_hot_edges=3,
        cost_sampler=lambda count, rng: uniform_costs(count, 1.0, 6.0, rng),
        random_state=seed,
    )


def run_full(instance, algorithm, backend, *, record=None, seed=0, batch=7):
    session = StreamingSession(
        instance.capacities, algorithm=algorithm, backend=backend, record=record, seed=seed
    )
    session.submit_stream(iter(instance.requests), batch_size=batch)
    return session


def run_with_cut(instance, algorithm, backend, cut, *, record=None, seed=0, batch=7):
    """Stream to ``cut``, checkpoint through JSON, restore, stream the rest."""
    requests = list(instance.requests)
    first = StreamingSession(
        instance.capacities, algorithm=algorithm, backend=backend, record=record, seed=seed
    )
    first.submit_stream(iter(requests[:cut]), batch_size=batch)
    document = json.loads(json.dumps(first.checkpoint()))
    resumed = StreamingSession.restore(document)
    assert resumed.num_processed == cut
    resumed.submit_stream(iter(requests[cut:]), batch_size=batch)
    return resumed


def assert_logs_equal(expected, actual, tol=1e-9):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a["id"] == b["id"]
        assert a["event"] == b["event"]
        if "fraction" in a:
            assert abs(a["fraction"] - b["fraction"]) <= tol
        if "at" in a:
            assert a.get("at") == b.get("at")


class TestCheckpointRoundTrip:
    """Snapshot mid-stream x cut points x backends x record modes x seeds."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("record", [True, False])
    @pytest.mark.parametrize("seed", range(10))
    def test_fractional_resume_matches_uninterrupted(self, backend, record, seed):
        instance = make_instance(seed)
        n = instance.num_requests
        full = run_full(instance, "fractional", backend, record=record)
        for cut in (1, n // 4, n // 2, 3 * n // 4):
            resumed = run_with_cut(instance, "fractional", backend, cut, record=record)
            assert_logs_equal(full.decision_log(), resumed.decision_log())
            assert resumed.algorithm.fractional_cost() == pytest.approx(
                full.algorithm.fractional_cost(), abs=1e-9
            )
            assert resumed.algorithm.num_augmentations == full.algorithm.num_augmentations

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_resume_matches_uninterrupted(self, backend, seed):
        instance = make_instance(seed)
        n = instance.num_requests
        full = run_full(instance, "randomized", backend, seed=seed + 100)
        for cut in (n // 4, n // 2, 3 * n // 4):
            resumed = run_with_cut(instance, "randomized", backend, cut, seed=seed + 100)
            assert_logs_equal(full.decision_log(), resumed.decision_log())
            assert resumed.algorithm.rejection_cost() == pytest.approx(
                full.algorithm.rejection_cost(), abs=1e-9
            )
            assert resumed.algorithm.accepted_ids() == full.algorithm.accepted_ids()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algorithm", ["doubling", "doubling-fractional"])
    def test_doubling_wrappers_resume(self, backend, algorithm):
        instance = make_instance(3)
        n = instance.num_requests
        full = run_full(instance, algorithm, backend, seed=7)
        resumed = run_with_cut(instance, algorithm, backend, n // 2, seed=7)
        assert_logs_equal(full.decision_log(), resumed.decision_log())
        assert resumed.algorithm.alpha == full.algorithm.alpha
        assert (
            resumed.algorithm.schedule.phase_alphas == full.algorithm.schedule.phase_alphas
        )

    def test_cross_backend_restore(self):
        # A python-backend checkpoint restored on numpy (and vice versa)
        # continues the exact same run: weights are bit-identical across
        # backends, so the logs agree at 1e-9.
        instance = make_instance(5)
        requests = list(instance.requests)
        cut = len(requests) // 2
        for src, dst in (("python", "numpy"), ("numpy", "python")):
            full = run_full(instance, "randomized", src, seed=2)
            first = StreamingSession(
                instance.capacities, algorithm="randomized", backend=src, seed=2
            )
            first.submit_stream(iter(requests[:cut]), batch_size=7)
            resumed = StreamingSession.restore(
                json.loads(json.dumps(first.checkpoint())), backend=dst
            )
            assert resumed.backend == dst
            resumed.submit_stream(iter(requests[cut:]), batch_size=7)
            assert_logs_equal(full.decision_log(), resumed.decision_log())

    def test_batch_size_never_changes_decisions(self):
        instance = make_instance(11)
        logs = []
        for batch in (1, 5, 64):
            session = run_full(instance, "randomized", "numpy", seed=4, batch=batch)
            logs.append(session.decision_log())
        assert_logs_equal(logs[0], logs[1])
        assert_logs_equal(logs[0], logs[2])

    def test_checkpoint_is_json_serialisable(self, tmp_path):
        instance = make_instance(1)
        session = run_full(instance, "doubling", "python", seed=9)
        path = session.save(tmp_path / "ck.json")
        document = load_checkpoint(path)
        assert document["kind"] == CHECKPOINT_KIND
        assert document["schema"] == CHECKPOINT_SCHEMA
        assert document["num_processed"] == instance.num_requests
        reloaded = StreamingSession.load(path)
        assert reloaded.num_processed == session.num_processed
        assert_logs_equal(session.decision_log(), reloaded.decision_log())


class TestCheckpointValidation:
    def test_unknown_schema_rejected(self):
        instance = make_instance(0)
        session = run_full(instance, "fractional", "python")
        document = session.checkpoint()
        document["schema"] = 99
        with pytest.raises(CheckpointFormatError, match="schema"):
            StreamingSession.restore(document)

    def test_wrong_kind_rejected(self):
        with pytest.raises(CheckpointFormatError, match="kind"):
            StreamingSession.restore({"kind": "nope", "schema": CHECKPOINT_SCHEMA})

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointFormatError, match="JSON"):
            StreamingSession.load(path)

    def test_restore_into_used_algorithm_rejected(self):
        instance = make_instance(0)
        session = run_full(instance, "fractional", "python")
        document = session.checkpoint()
        # The restored session builds a fresh algorithm internally; poking the
        # state into an already-used algorithm must fail loudly.
        with pytest.raises(ValueError, match="freshly constructed"):
            session.algorithm.restore_state(document["algorithm_state"])

    def test_external_algorithm_objects_not_checkpointable(self):
        from repro.core.fractional import FractionalAdmissionControl

        instance = make_instance(0)
        algo = FractionalAdmissionControl.for_instance(instance)
        session = StreamingSession(instance.capacities, algorithm=algo)
        session.submit(instance.requests[0])
        with pytest.raises(TypeError, match="externally-built"):
            session.checkpoint()


class TestStreamingSessionBasics:
    def test_submit_matches_submit_batch(self):
        instance = make_instance(2)
        one = StreamingSession(instance.capacities, algorithm="fractional")
        for request in instance.requests:
            one.submit(request)
        batched = run_full(instance, "fractional", "python", batch=16)
        assert_logs_equal(one.decision_log(), batched.decision_log())

    def test_duplicate_request_id_rejected(self):
        instance = make_instance(2)
        session = StreamingSession(instance.capacities, algorithm="fractional")
        session.submit(instance.requests[0])
        with pytest.raises(ValueError, match="already processed"):
            session.submit(instance.requests[0])

    def test_unknown_edge_rejected(self):
        session = StreamingSession({"a": 1, "b": 1}, algorithm="fractional")
        with pytest.raises(ValueError):
            session.submit_batch([Request(0, frozenset(["zzz"]), 1.0)])

    def test_unknown_algorithm_key_rejected(self):
        with pytest.raises(KeyError, match="streaming algorithm"):
            StreamingSession({"a": 1}, algorithm="no-such-algorithm")

    def test_retain_log_false_streams_without_accumulating(self):
        instance = make_instance(2)
        retained = run_full(instance, "randomized", "python", seed=3)
        session = StreamingSession(
            instance.capacities, algorithm="randomized", seed=3, retain_log=False
        )
        streamed = []
        for lo in range(0, instance.num_requests, 7):
            streamed.extend(session.submit_batch(list(instance.requests)[lo : lo + 7]))
        assert_logs_equal(retained.decision_log(), streamed)
        assert session.num_decisions == len(streamed)
        assert session._decision_log == []
        with pytest.raises(RuntimeError, match="retain_log"):
            session.decision_log()

    def test_tuple_edge_ids_share_default_namespace(self):
        # Tuple edge ids (the network layer) have no declared namespaces, so
        # they all shard together — multi-edge requests must not be rejected.
        capacities = {(0, 1): 2, (1, 2): 2, (2, 3): 2}
        router = ShardedStreamRouter(capacities, 4, algorithm="fractional")
        router.submit(Request(0, frozenset([(0, 1), (1, 2)]), 1.0))
        assert router.num_processed == 1
        assert len(router.sessions()) == 1

    def test_summary_shape(self):
        instance = make_instance(2)
        session = run_full(instance, "doubling", "numpy", seed=1)
        summary = session.summary()
        assert summary["processed"] == instance.num_requests
        assert summary["algorithm"] == "doubling"
        assert summary["backend"] == "numpy"
        assert "rejection_cost" in summary


class TestShardedStreamRouter:
    def make_mix(self, seed=3):
        return adversarial_mix_workload(num_edges=8, capacity=2, random_state=seed)

    def test_namespace_partition_routes_all_requests(self):
        mix = self.make_mix()
        router = ShardedStreamRouter(mix.capacities, 3, algorithm="fractional", seed=1)
        router.submit_batch(list(mix.requests))
        assert router.num_processed == mix.num_requests
        # Every edge landed in exactly one shard.
        shard_edges = [set(s.capacities()) for _, s in router.sessions()]
        union = set().union(*shard_edges)
        assert union == set(mix.capacities)
        assert sum(len(e) for e in shard_edges) == len(union)

    def test_cross_namespace_request_rejected(self):
        mix = self.make_mix()
        router = ShardedStreamRouter(mix.capacities, 2, seed=1)
        edges = list(mix.capacities)
        spanning = {default_namespace(e) for e in edges}
        assert len(spanning) > 1  # the mix has several block namespaces
        # Find two edges in different shards and join them in one request.
        by_shard = {}
        for e in edges:
            by_shard.setdefault(
                router.shard_of(Request(0, frozenset([e]), 1.0)), []
            ).append(e)
        if len(by_shard) < 2:
            pytest.skip("all namespaces hashed to one shard at this seed")
        (a, *_), (b, *_) = list(by_shard.values())[:2]
        with pytest.raises(ValueError, match="spans shards"):
            router.submit(Request(999, frozenset([a, b]), 1.0))

    def test_router_checkpoint_resume_matches_uninterrupted(self, tmp_path):
        mix = self.make_mix()
        requests = list(mix.requests)
        cut = len(requests) // 2
        full = ShardedStreamRouter(mix.capacities, 3, algorithm="randomized", seed=5)
        full.submit_batch(requests)
        first = ShardedStreamRouter(mix.capacities, 3, algorithm="randomized", seed=5)
        first.submit_batch(requests[:cut])
        path = first.save(tmp_path / "router.json")
        document = load_checkpoint(path, expected_kind=ROUTER_CHECKPOINT_KIND)
        assert document["num_shards"] == 3
        resumed = ShardedStreamRouter.load(path)
        assert resumed.num_processed == cut
        resumed.submit_batch(requests[cut:])
        full_logs, resumed_logs = full.decision_logs(), resumed.decision_logs()
        assert set(full_logs) == set(resumed_logs)
        for shard in full_logs:
            assert_logs_equal(full_logs[shard], resumed_logs[shard])

    def test_router_entries_in_arrival_order_regardless_of_batching(self):
        # Regression: shard-grouped emission ordered entries by shard within
        # each batch, making the combined stream depend on batch boundaries.
        mix = self.make_mix()
        requests = list(mix.requests)
        streams = []
        for batches in ([requests], [requests[:17], requests[17:]], [[r] for r in requests]):
            router = ShardedStreamRouter(mix.capacities, 3, algorithm="doubling", seed=2)
            entries = []
            for batch in batches:
                entries.extend(router.submit_batch(batch))
            streams.append(entries)
        assert streams[0] == streams[1] == streams[2]

    def test_per_shard_seeds_differ(self):
        mix = self.make_mix()
        router = ShardedStreamRouter(mix.capacities, 3, algorithm="randomized", seed=5)
        seeds = [s.seed for _, s in router.sessions()]
        assert len(set(seeds)) == len(seeds)

    def test_session_checkpoint_rejected_as_router_checkpoint(self, tmp_path):
        instance = make_instance(0)
        session = run_full(instance, "fractional", "python")
        path = session.save(tmp_path / "ck.json")
        with pytest.raises(CheckpointFormatError, match="kind"):
            ShardedStreamRouter.load(path)


class TestStreamingSweepPath:
    def test_streaming_sweep_matches_batch_sweep(self):
        # The serving-layer execution path must not change a single number.
        from repro.engine.sweep import ScenarioSweep

        kwargs = dict(
            scenarios=["cheap_expensive"],
            algorithms=["fractional", "randomized"],
            backend="numpy",
            num_trials=2,
            seed=13,
            offline="lp",
        )
        batch = ScenarioSweep(**kwargs).run()
        streamed = ScenarioSweep(streaming=True, **kwargs).run()
        for cell, summary in batch.summaries.items():
            assert streamed.summaries[cell].ratios() == pytest.approx(
                summary.ratios(), abs=1e-9
            )


class TestServeCliFreshProcess:
    """`repro serve --resume` in a *fresh process* continues bit-identically."""

    def run_serve(self, args, cwd):
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[1] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = repo_src + (os.pathsep + existing if existing else "")
        env["PYTHONHASHSEED"] = "random"
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )

    def test_interrupted_serve_log_equals_uninterrupted(self, tmp_path):
        from repro.scenarios.trace import record_trace

        instance = make_instance(8, num_requests=90)
        trace = record_trace(instance, tmp_path / "t.jsonl")
        base = ["--trace", str(trace), "--algorithm", "doubling", "--seed", "5"]

        self.run_serve(
            base
            + ["--checkpoint", "ck.json", "--checkpoint-every", "30",
               "--max-arrivals", "45", "--log", "part.jsonl"],
            tmp_path,
        )
        self.run_serve(
            ["--trace", str(trace), "--resume", "--checkpoint", "ck.json",
             "--log", "part.jsonl"],
            tmp_path,
        )
        self.run_serve(base + ["--log", "full.jsonl"], tmp_path)

        part = [json.loads(line) for line in (tmp_path / "part.jsonl").read_text().splitlines()]
        full = [json.loads(line) for line in (tmp_path / "full.jsonl").read_text().splitlines()]
        assert_logs_equal(full, part)
