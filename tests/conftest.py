"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances.admission import AdmissionInstance
from repro.instances.canonical import (
    disjoint_paths_no_rejection,
    repetition_set_cover,
    single_edge_overload,
    small_set_cover,
    star_congestion,
    triangle_weighted,
    two_edge_chain,
)
from repro.instances.request import Request, RequestSequence
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.workloads import overloaded_edge_adversary, random_setcover_instance


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def star_instance() -> AdmissionInstance:
    """Six unit requests through a hub of capacity 2 (OPT rejects 4)."""
    return star_congestion(leaves=6, capacity=2)


@pytest.fixture
def overload_instance() -> AdmissionInstance:
    """Five unit requests through one edge of capacity 2 (OPT rejects 3)."""
    return single_edge_overload(extra=3, capacity=2)


@pytest.fixture
def chain_instance() -> AdmissionInstance:
    """Two-edge chain where OPT rejects only the long request."""
    return two_edge_chain()


@pytest.fixture
def weighted_instance() -> AdmissionInstance:
    """Weighted single-edge instance where OPT rejects the cheap request."""
    return triangle_weighted()


@pytest.fixture
def free_instance() -> AdmissionInstance:
    """Disjoint requests — the optimum rejects nothing."""
    return disjoint_paths_no_rejection(paths=5)


@pytest.fixture
def adversarial_instance() -> AdmissionInstance:
    """A medium adversarial instance for integration-style tests."""
    return overloaded_edge_adversary(num_edges=12, capacity=2, num_hot_edges=2, random_state=3)


@pytest.fixture
def simple_system() -> SetSystem:
    """The three-set system of the small canonical set-cover instance."""
    return small_set_cover().system


@pytest.fixture
def small_cover_instance() -> SetCoverInstance:
    """Four elements requested once each; OPT = 2 sets."""
    return small_set_cover()


@pytest.fixture
def repetition_instance() -> SetCoverInstance:
    """One element requested three times; OPT = 3 sets."""
    return repetition_set_cover()


@pytest.fixture
def random_cover_instance() -> SetCoverInstance:
    """A reproducible random set-cover instance with repetitions."""
    return random_setcover_instance(20, 10, 30, random_state=7)


@pytest.fixture
def simple_requests() -> RequestSequence:
    """Three requests on two edges used by data-model tests."""
    return RequestSequence(
        [
            Request(0, frozenset({"a"}), 1.0),
            Request(1, frozenset({"a", "b"}), 2.5),
            Request(2, frozenset({"b"}), 4.0),
        ]
    )
