"""Tests for the Section-5 deterministic bicriteria online set-cover algorithm."""

import math

import pytest

from repro.analysis.invariants import check_bicriteria_state
from repro.core.bicriteria import BicriteriaOnlineSetCover
from repro.core.bounds import lemma5_augmentation_bound
from repro.core.protocols import InfeasibleArrivalError, run_setcover
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.offline import solve_set_multicover_ilp
from repro.workloads import nested_family_instance, random_setcover_instance
from repro.workloads.setcover_random import random_set_system, repetition_heavy_arrivals


class TestConstruction:
    def test_initial_weights(self, simple_system):
        algo = BicriteriaOnlineSetCover(simple_system, eps=0.2)
        assert algo.set_weight("A") == pytest.approx(1.0 / (2 * simple_system.num_sets))
        assert algo.element_weight(2) == pytest.approx(2.0 / (2 * simple_system.num_sets))

    def test_selection_rounds_formula(self, simple_system):
        algo = BicriteriaOnlineSetCover(simple_system, eps=0.2)
        assert algo.selection_rounds == max(1, math.ceil(2 * math.log(simple_system.num_elements)))

    def test_eps_validation(self, simple_system):
        with pytest.raises(ValueError):
            BicriteriaOnlineSetCover(simple_system, eps=0.0)
        with pytest.raises(ValueError):
            BicriteriaOnlineSetCover(simple_system, eps=1.0)

    def test_weighted_costs_rejected_by_default(self):
        system = SetSystem({"A": {1}}, {"A": 2.0})
        with pytest.raises(ValueError):
            BicriteriaOnlineSetCover(system)
        BicriteriaOnlineSetCover(system, allow_weighted=True)  # does not raise

    def test_on_infeasible_validation(self, simple_system):
        with pytest.raises(ValueError):
            BicriteriaOnlineSetCover(simple_system, on_infeasible="ignore")

    def test_initial_potential_below_n_squared(self, simple_system):
        algo = BicriteriaOnlineSetCover(simple_system)
        assert algo.potential() <= max(simple_system.num_elements, 2) ** 2


class TestCoverageGuarantee:
    """Every element must be covered at least (1 - eps) * k times at all times."""

    @pytest.mark.parametrize("eps", [0.1, 0.3, 0.5])
    def test_coverage_after_each_arrival(self, eps):
        instance = random_setcover_instance(25, 12, 40, random_state=3)
        algo = BicriteriaOnlineSetCover(instance.system, eps=eps)
        demands = {}
        for element in instance.arrivals:
            algo.process_element(element)
            demands[element] = demands.get(element, 0) + 1
            for e, k in demands.items():
                assert algo.coverage(e) >= (1 - eps) * k - 1e-9

    def test_single_arrival_gets_covered(self, simple_system):
        algo = BicriteriaOnlineSetCover(simple_system, eps=0.3)
        purchased = algo.process_element(1)
        assert algo.coverage(1) >= 1
        assert purchased  # something was bought

    def test_repetitions_force_distinct_sets(self, repetition_instance):
        algo = BicriteriaOnlineSetCover(repetition_instance.system, eps=0.1)
        result = run_setcover(algo, repetition_instance)
        # (1 - 0.1) * 3 = 2.7, so element 1 needs at least 3 distinct sets.
        assert algo.coverage(1) >= 3
        assert result.extra["bicriteria_satisfied"]

    def test_larger_eps_buys_fewer_sets(self):
        instance = random_setcover_instance(30, 15, 60, random_state=9)
        costs = {}
        for eps in (0.05, 0.5):
            algo = BicriteriaOnlineSetCover(instance.system, eps=eps)
            run_setcover(algo, instance)
            costs[eps] = algo.cost()
        assert costs[0.5] <= costs[0.05]

    def test_infeasible_arrival_raises(self):
        system = SetSystem({"A": {1}})
        algo = BicriteriaOnlineSetCover(system, eps=0.1)
        algo.process_element(1)
        with pytest.raises(InfeasibleArrivalError):
            algo.process_element(1)  # only one set contains 1, (1-eps)*2 > 1

    def test_infeasible_arrival_clamped_when_requested(self):
        system = SetSystem({"A": {1}})
        algo = BicriteriaOnlineSetCover(system, eps=0.1, on_infeasible="clamp")
        algo.process_element(1)
        algo.process_element(1)  # clamps the target to the degree
        assert algo.coverage(1) == 1


class TestPotentialInvariants:
    """Lemma 6: Phi never exceeds n^2 and never increases across an augmentation."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_potential_never_exceeds_n_squared(self, seed):
        system = random_set_system(20, 12, 0.3, random_state=seed)
        arrivals = repetition_heavy_arrivals(system, random_state=seed)
        algo = BicriteriaOnlineSetCover(system, eps=0.2)
        run_setcover(algo, SetCoverInstance(system, arrivals))
        assert algo.max_potential_seen <= max(algo.n, 2) ** 2 + 1e-6

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_augmentations_never_increase_potential(self, seed):
        system = random_set_system(16, 10, 0.3, random_state=100 + seed)
        arrivals = repetition_heavy_arrivals(system, random_state=seed)
        algo = BicriteriaOnlineSetCover(system, eps=0.2)
        run_setcover(algo, SetCoverInstance(system, arrivals))
        for trace in algo.traces:
            assert trace.potential_after <= trace.potential_before * (1 + 1e-9) + 1e-9

    def test_step2c_never_adds_more_than_two_log_n_sets(self):
        system = random_set_system(25, 15, 0.3, random_state=5)
        arrivals = repetition_heavy_arrivals(system, random_state=5)
        algo = BicriteriaOnlineSetCover(system, eps=0.2)
        run_setcover(algo, SetCoverInstance(system, arrivals))
        for trace in algo.traces:
            assert len(trace.sets_from_selection) <= algo.selection_rounds

    def test_lemma5_augmentation_bound(self):
        system = random_set_system(20, 12, 0.35, random_state=11)
        arrivals = repetition_heavy_arrivals(system, random_state=11)
        instance = SetCoverInstance(system, arrivals)
        algo = BicriteriaOnlineSetCover(system, eps=0.2)
        run_setcover(algo, instance)
        opt = solve_set_multicover_ilp(system, instance.demands())
        bound = lemma5_augmentation_bound(opt.cost, algo.m, algo.eps)
        assert algo.num_augmentations <= bound + 1e-9

    def test_invariant_checker_accepts_clean_run(self, random_cover_instance):
        algo = BicriteriaOnlineSetCover(random_cover_instance.system, eps=0.2)
        run_setcover(algo, random_cover_instance)
        opt = solve_set_multicover_ilp(
            random_cover_instance.system, random_cover_instance.demands()
        )
        report = check_bicriteria_state(algo, optimal_cost=opt.cost)
        assert report.ok, str(report)


class TestCompetitiveness:
    def test_nested_family_stays_polylog(self):
        instance = nested_family_instance(12)
        algo = BicriteriaOnlineSetCover(instance.system, eps=0.2)
        run_setcover(algo, instance)
        # OPT = 1; Theorem 7 allows O(log m log n) ~ a handful of sets here.
        bound = 8 * math.log2(instance.system.num_sets + 2) * math.log2(
            instance.system.num_elements + 2
        )
        assert algo.cost() <= bound

    def test_cost_never_exceeds_buying_everything(self, random_cover_instance):
        algo = BicriteriaOnlineSetCover(random_cover_instance.system, eps=0.2)
        run_setcover(algo, random_cover_instance)
        assert algo.cost() <= random_cover_instance.system.total_cost()

    def test_deterministic(self, random_cover_instance):
        costs = []
        for _ in range(2):
            algo = BicriteriaOnlineSetCover(random_cover_instance.system, eps=0.2)
            run_setcover(algo, random_cover_instance)
            costs.append((algo.cost(), tuple(sorted(map(repr, algo.chosen_sets())))))
        assert costs[0] == costs[1]

    def test_extra_metrics(self, small_cover_instance):
        algo = BicriteriaOnlineSetCover(small_cover_instance.system, eps=0.25)
        result = run_setcover(algo, small_cover_instance)
        assert result.extra["eps"] == 0.25
        assert result.extra["num_augmentations"] == algo.num_augmentations
        assert result.extra["potential_bound"] == pytest.approx(max(algo.n, 2) ** 2)
