"""Tests for the NumPy weight backend and the cross-backend equivalence gate.

The scalar :class:`~repro.engine.backends.PythonWeightBackend` is already
covered by ``test_core_weights.py`` (under its historical name
``FractionalWeightState``); here the vectorized backend is held to the same
behaviours, and the two backends are pinned to each other within 1e-9 on the
canonical instances — the honesty check of the whole refactor.
"""

import numpy as np
import pytest

from repro.core.fractional import FractionalAdmissionControl
from repro.engine.backends import (
    NumpyWeightBackend,
    PythonWeightBackend,
    make_weight_backend,
)
from repro.engine.config import EngineConfig
from repro.engine.registry import UnknownKeyError
from repro.instances.canonical import (
    single_edge_overload,
    star_congestion,
    triangle_weighted,
    two_edge_chain,
)

TOL = 1e-9

CANONICAL = {
    "single-edge-overload": single_edge_overload,
    "star-congestion": star_congestion,
    "two-edge-chain": two_edge_chain,
    "triangle-weighted": triangle_weighted,
}


def make_numpy_state(capacities=None, g=2.0, max_capacity=None):
    return NumpyWeightBackend(capacities or {"e": 1}, g=g, max_capacity=max_capacity)


class TestNumpyBackendBasics:
    def test_register_starts_at_zero_weight(self):
        state = make_numpy_state()
        state.register(0, ["e"], 1.0)
        assert state.weight(0) == 0.0
        assert state.requests_on("e") == {0}
        assert state.alive_requests("e") == {0}

    def test_duplicate_registration_rejected(self):
        state = make_numpy_state()
        state.register(0, ["e"], 1.0)
        with pytest.raises(ValueError):
            state.register(0, ["e"], 1.0)

    def test_unknown_edge_rejected(self):
        state = make_numpy_state()
        with pytest.raises(ValueError):
            state.register(0, ["missing"], 1.0)

    def test_non_positive_cost_rejected(self):
        state = make_numpy_state()
        with pytest.raises(ValueError):
            state.register(0, ["e"], 0.0)

    def test_seed_weight_formula(self):
        state = NumpyWeightBackend({"e": 4}, g=8.0)
        assert state.seed_weight == pytest.approx(1.0 / 32.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            NumpyWeightBackend({"e": -1}, g=1.0)

    def test_storage_grows_past_initial_capacity(self):
        state = make_numpy_state({"e": 1000})
        for rid in range(300):  # initial slot capacity is 64
            state.register(rid, ["e"], 1.0)
        assert state.weights() == {rid: 0.0 for rid in range(300)}
        assert state.alive_count("e") == 300

    def test_kill_removes_from_all_edges(self):
        state = make_numpy_state({"a": 0, "b": 5}, g=1.0, max_capacity=1)
        # Seed weight is 1, so the first augmentation kills immediately.
        outcome = state.process_arrival(0, ["a", "b"], 1.0)
        assert state.is_dead(0)
        assert outcome.newly_dead == {0}
        assert state.alive_requests("a") == set()
        assert state.alive_requests("b") == set()
        assert state.alive_count("b") == 0

    def test_invariants_clean_after_processing(self):
        state = make_numpy_state({"e": 2}, g=4.0)
        for rid in range(8):
            state.process_arrival(rid, ["e"], 1.0)
        assert state.check_invariants() == []

    def test_register_after_edge_compacted_to_empty(self):
        """Regression: a fully-dead edge's slot vector compacts to length 0;
        the next registration must regrow it instead of writing into nothing."""
        state = make_numpy_state({"e": 0}, g=1.0, max_capacity=1)
        # Seed weight is 1, so every arrival dies immediately on the
        # zero-capacity edge.
        for rid in range(3):
            state.process_arrival(rid, ["e"], 1.0)
        # Alive queries trigger the lazy compaction down to an empty vector.
        assert state.alive_requests("e") == set()
        state.process_arrival(99, ["e"], 1.0)
        assert state.requests_on("e") == {0, 1, 2, 99}
        assert state.is_dead(99)


class TestBackendFactory:
    def test_default_is_python(self):
        backend = make_weight_backend(None, {"e": 1}, g=2.0)
        assert isinstance(backend, PythonWeightBackend)
        assert backend.name == "python"

    def test_by_name(self):
        backend = make_weight_backend("numpy", {"e": 1}, g=2.0)
        assert isinstance(backend, NumpyWeightBackend)

    def test_by_engine_config(self):
        backend = make_weight_backend(EngineConfig(backend="numpy"), {"e": 1}, g=2.0)
        assert isinstance(backend, NumpyWeightBackend)

    def test_unknown_backend_lists_known(self):
        with pytest.raises(UnknownKeyError) as err:
            make_weight_backend("cuda", {"e": 1}, g=2.0)
        assert "python" in str(err.value) and "numpy" in str(err.value)

    def test_algorithm_rejects_unknown_backend(self):
        with pytest.raises(UnknownKeyError):
            FractionalAdmissionControl({"e": 2}, backend="fortran")


def _run_both_backends(capacities, arrivals, g=8.0):
    py = PythonWeightBackend(capacities, g=g)
    nb = NumpyWeightBackend(capacities, g=g)
    for rid, edges, cost in arrivals:
        o_py = py.process_arrival(rid, edges, cost)
        o_nb = nb.process_arrival(rid, edges, cost)
        yield py, nb, o_py, o_nb


class TestCrossBackendEquivalence:
    """The refactor's gate: python and numpy agree within 1e-9 everywhere."""

    @pytest.mark.parametrize("name", sorted(CANONICAL))
    def test_canonical_instances_match(self, name):
        instance = CANONICAL[name]()
        py = FractionalAdmissionControl.for_instance(instance, backend="python")
        nb = FractionalAdmissionControl.for_instance(instance, backend="numpy")
        py.process_sequence(instance.requests)
        nb.process_sequence(instance.requests)
        assert py.fractional_cost() == pytest.approx(nb.fractional_cost(), abs=TOL)
        assert py.num_augmentations == nb.num_augmentations
        frac_py, frac_nb = py.fractions(), nb.fractions()
        assert set(frac_py) == set(frac_nb)
        for rid in frac_py:
            assert frac_py[rid] == pytest.approx(frac_nb[rid], abs=TOL), rid
        assert py.check_invariants() == []
        assert nb.check_invariants() == []

    def test_arrival_outcomes_match_step_by_step(self):
        rng = np.random.default_rng(42)
        edges = [f"e{i}" for i in range(12)]
        capacities = {e: int(rng.integers(1, 4)) for e in edges}
        arrivals = []
        for rid in range(200):
            k = int(rng.integers(1, 4))
            path = [edges[int(i)] for i in rng.choice(len(edges), size=k, replace=False)]
            arrivals.append((rid, path, float(rng.uniform(1.0, 6.0))))
        for py, nb, o_py, o_nb in _run_both_backends(capacities, arrivals):
            assert o_py.num_augmentations == o_nb.num_augmentations
            assert o_py.newly_dead == o_nb.newly_dead
            assert set(o_py.deltas) == set(o_nb.deltas)
            for rid, delta in o_py.deltas.items():
                assert delta == pytest.approx(o_nb.deltas[rid], abs=TOL)
            for record_py, record_nb in zip(o_py.augmentations, o_nb.augmentations):
                assert record_py.edge == record_nb.edge
                assert record_py.excess == record_nb.excess
                assert record_py.alive_before == record_nb.alive_before
                assert set(record_py.seeded) == set(record_nb.seeded)
                assert set(record_py.killed) == set(record_nb.killed)

    def test_capacity_reduction_matches(self):
        capacities = {"a": 3, "b": 3}
        arrivals = [(rid, ["a", "b"], 1.0 + 0.25 * rid) for rid in range(10)]
        py = PythonWeightBackend(capacities, g=8.0)
        nb = NumpyWeightBackend(capacities, g=8.0)
        for rid, path, cost in arrivals:
            py.process_arrival(rid, path, cost)
            nb.process_arrival(rid, path, cost)
        o_py = py.process_capacity_reduction("a", triggered_by=99)
        o_nb = nb.process_capacity_reduction("a", triggered_by=99)
        assert py.capacity("a") == nb.capacity("a") == 2
        assert set(o_py.deltas) == set(o_nb.deltas)
        assert py.fractional_cost() == pytest.approx(nb.fractional_cost(), abs=TOL)

    def test_bicriteria_backends_match(self):
        from repro.core.bicriteria import BicriteriaOnlineSetCover
        from repro.core.protocols import run_setcover
        from repro.workloads import random_setcover_instance

        instance = random_setcover_instance(36, 16, 70, random_state=3)
        py = BicriteriaOnlineSetCover(instance.system, eps=0.2, backend="python")
        nb = BicriteriaOnlineSetCover(instance.system, eps=0.2, backend="numpy")
        r_py = run_setcover(py, instance)
        r_nb = run_setcover(nb, instance)
        assert r_py.chosen_sets == r_nb.chosen_sets
        assert r_py.cost == pytest.approx(r_nb.cost, abs=TOL)
        weights_py, weights_nb = py.set_weights(), nb.set_weights()
        assert set(weights_py) == set(weights_nb)
        for sid in weights_py:
            assert weights_py[sid] == pytest.approx(weights_nb[sid], abs=TOL)
        assert py.max_potential_seen == pytest.approx(nb.max_potential_seen, rel=1e-9)
