"""Tests for the analysis layer: stats, competitive records, trials, reports, plots."""

import math

import pytest

from repro.analysis import (
    ascii_line_plot,
    ascii_series_table,
    check_admission_result,
    evaluate_admission_algorithm,
    evaluate_admission_run,
    evaluate_setcover_algorithm,
    evaluate_setcover_run,
    format_kv,
    format_records,
    format_table,
    run_admission_trials,
    run_setcover_trials,
    summarize,
)
from repro.baselines import KeepExpensive, CheapestSetOnline
from repro.core.protocols import AdmissionResult, run_admission, run_setcover
from repro.core.randomized import RandomizedAdmissionControl
from repro.workloads import overloaded_edge_adversary, random_setcover_instance


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)
        assert stats.ci95_low <= stats.mean <= stats.ci95_high

    def test_single_value(self):
        stats = summarize([3.0])
        assert stats.std == 0.0
        assert stats.ci95_low == stats.ci95_high == 3.0

    def test_infinite_values_dropped(self):
        stats = summarize([1.0, math.inf, 2.0])
        assert stats.count == 2

    def test_empty_sample(self):
        stats = summarize([])
        assert stats.count == 0
        assert math.isnan(stats.mean)

    def test_str_contains_mean(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestEvaluate:
    def test_admission_record_fields(self, star_instance):
        algo = RandomizedAdmissionControl.for_instance(star_instance, random_state=0)
        result = run_admission(algo, star_instance)
        record = evaluate_admission_run(star_instance, result)
        assert record.offline_cost == pytest.approx(4.0)
        assert record.ratio >= 1.0
        assert record.normalized_ratio == pytest.approx(record.ratio / record.bound.value)
        assert record.feasible
        assert "ratio" in record.row()

    def test_admission_lp_comparator(self, star_instance):
        algo = KeepExpensive.for_instance(star_instance)
        record = evaluate_admission_run(star_instance, run_admission(algo, star_instance), offline="lp")
        assert record.offline_kind.startswith("lp")

    def test_unknown_comparator_rejected(self, star_instance):
        algo = KeepExpensive.for_instance(star_instance)
        result = run_admission(algo, star_instance)
        with pytest.raises(ValueError):
            evaluate_admission_run(star_instance, result, offline="magic")

    def test_evaluate_admission_algorithm_helper(self, star_instance):
        record = evaluate_admission_algorithm(
            star_instance, lambda inst: KeepExpensive.for_instance(inst)
        )
        assert record.algorithm == "KeepExpensive"

    def test_setcover_record(self, small_cover_instance):
        record = evaluate_setcover_algorithm(
            small_cover_instance, lambda inst: CheapestSetOnline(inst.system)
        )
        assert record.offline_cost == pytest.approx(2.0)
        assert record.ratio >= 1.0
        assert record.feasible

    def test_setcover_lp_comparator(self, small_cover_instance):
        algo = CheapestSetOnline(small_cover_instance.system)
        result = run_setcover(algo, small_cover_instance)
        record = evaluate_setcover_run(small_cover_instance, result, offline="lp")
        assert record.offline_kind.startswith("lp")
        with pytest.raises(ValueError):
            evaluate_setcover_run(small_cover_instance, result, offline="magic")

    def test_zero_opt_zero_online_ratio_is_one(self, free_instance):
        algo = KeepExpensive.for_instance(free_instance)
        record = evaluate_admission_run(free_instance, run_admission(algo, free_instance))
        assert record.ratio == 1.0


class TestTrials:
    def test_admission_trials_aggregate(self):
        summary = run_admission_trials(
            instance_factory=lambda rng: overloaded_edge_adversary(8, 2, random_state=rng),
            algorithm_factory=lambda inst, rng: RandomizedAdmissionControl.for_instance(
                inst, random_state=rng
            ),
            num_trials=3,
            random_state=0,
            label="test",
        )
        assert summary.num_trials == 3
        assert summary.all_feasible()
        assert summary.ratio_stats().count == 3
        assert summary.max_ratio() >= 1.0
        row = summary.row()
        assert row["label"] == "test"
        assert row["trials"] == 3

    def test_admission_trials_reproducible(self):
        def run_once():
            return run_admission_trials(
                instance_factory=lambda rng: overloaded_edge_adversary(8, 2, random_state=rng),
                algorithm_factory=lambda inst, rng: RandomizedAdmissionControl.for_instance(
                    inst, random_state=rng
                ),
                num_trials=2,
                random_state=7,
            ).ratios()

        assert run_once() == run_once()

    def test_setcover_trials(self):
        summary = run_setcover_trials(
            instance_factory=lambda rng: random_setcover_instance(15, 8, 25, random_state=rng),
            algorithm_factory=lambda inst, rng: CheapestSetOnline(inst.system),
            num_trials=2,
            random_state=1,
            label="sc",
        )
        assert summary.num_trials == 2
        assert summary.all_feasible()


class TestReportFormatting:
    def test_format_table_alignment_and_values(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125, "c": "x"}]
        text = format_table(rows, title="T")
        assert "T" in text
        assert "a" in text and "b" in text and "c" in text
        assert "2.500" in text
        assert "10" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_records(self, star_instance):
        record = evaluate_admission_algorithm(
            star_instance, lambda inst: KeepExpensive.for_instance(inst)
        )
        text = format_records([record], title="records")
        assert "KeepExpensive" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1.2345, "flag": True}, title="params")
        assert "alpha" in text and "1.2345" in text and "yes" in text
        assert "(empty)" in format_kv({})

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text


class TestAsciiPlots:
    def test_line_plot_contains_markers_and_bounds(self):
        plot = ascii_line_plot(
            {"series": [(1, 1), (2, 4), (3, 9)]}, width=20, height=6, title="squares"
        )
        assert "squares" in plot
        assert "*" in plot
        assert "[1, 3]" in plot

    def test_line_plot_empty(self):
        assert "(no data)" in ascii_line_plot({"empty": []})

    def test_series_table_columns(self):
        table = ascii_series_table([1, 2], {"y": [1.0, 2.0], "z": [3.0, 4.0]}, x_name="x")
        assert "x" in table and "y" in table and "z" in table
        assert "4.000" in table


class TestInvariantReport:
    def test_detects_infeasible_result(self, star_instance):
        bogus = AdmissionResult(
            algorithm="bogus",
            accepted_ids=frozenset(star_instance.requests.ids()),
            rejected_ids=frozenset(),
            preempted_ids=frozenset(),
            rejection_cost=0.0,
            feasible=True,
        )
        report = check_admission_result(star_instance, bogus)
        assert not report.ok
        assert "capacities" in str(report)

    def test_detects_partition_mismatch(self, star_instance):
        bogus = AdmissionResult(
            algorithm="bogus",
            accepted_ids=frozenset({0}),
            rejected_ids=frozenset(),
            preempted_ids=frozenset(),
            rejection_cost=0.0,
            feasible=True,
        )
        report = check_admission_result(star_instance, bogus)
        assert any("partition" in v for v in report.violations)

    def test_detects_cost_mismatch(self, star_instance):
        bogus = AdmissionResult(
            algorithm="bogus",
            accepted_ids=frozenset({0, 1}),
            rejected_ids=frozenset({2, 3, 4, 5}),
            preempted_ids=frozenset(),
            rejection_cost=1.0,  # should be 4.0
            feasible=True,
        )
        report = check_admission_result(star_instance, bogus)
        assert any("cost" in v for v in report.violations)
