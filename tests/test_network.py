"""Tests for the network substrate: graphs, topologies and routing."""

import networkx as nx
import pytest

from repro.network.graph import CapacitatedGraph
from repro.network.routing import (
    k_shortest_paths,
    random_simple_path,
    random_source_target,
    shortest_path_route,
)
from repro.network.topologies import (
    binary_tree_graph,
    complete_graph,
    grid_graph,
    line_graph,
    random_gnp_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
)


class TestCapacitatedGraph:
    def test_edges_with_and_without_capacity(self):
        graph = CapacitatedGraph([("a", "b"), ("b", "c", 5)], default_capacity=2)
        assert graph.capacity(("a", "b")) == 2
        assert graph.capacity(("b", "c")) == 5
        assert graph.num_edges == 2
        assert graph.max_capacity == 5

    def test_invalid_edges(self):
        with pytest.raises(ValueError):
            CapacitatedGraph([])
        with pytest.raises(ValueError):
            CapacitatedGraph([("a", "a")])
        with pytest.raises(ValueError):
            CapacitatedGraph([("a", "b", 0)])
        with pytest.raises(ValueError):
            CapacitatedGraph([("a", "b", 1, 2)])

    def test_path_edges(self):
        graph = line_graph(5, capacity=1)
        assert graph.path_edges([0, 1, 2]) == ((0, 1), (1, 2))

    def test_path_edges_rejects_bad_paths(self):
        graph = line_graph(5)
        with pytest.raises(ValueError):
            graph.path_edges([0])
        with pytest.raises(ValueError):
            graph.path_edges([0, 1, 0])  # not simple
        with pytest.raises(ValueError):
            graph.path_edges([0, 2])  # missing edge

    def test_request_from_path(self):
        graph = line_graph(4)
        request = graph.request_from_path(7, [0, 1, 2], cost=3.0, tag="x")
        assert request.request_id == 7
        assert request.edges == frozenset({(0, 1), (1, 2)})
        assert request.path == (0, 1, 2)
        assert request.tag == "x"

    def test_build_instance(self):
        graph = line_graph(4, capacity=2)
        request = graph.request_from_path(0, [0, 1])
        instance = graph.build_instance([request], name="test")
        assert instance.num_edges == 3
        assert instance.max_capacity == 2

    def test_from_networkx_undirected_symmetric(self):
        undirected = nx.path_graph(3)
        graph = CapacitatedGraph.from_networkx(undirected, default_capacity=3)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.capacity((0, 1)) == 3

    def test_shortest_path_and_has_path(self):
        graph = line_graph(5)
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]
        assert graph.has_path(0, 4)
        assert not graph.has_path(4, 0)  # directed line

    def test_simple_paths(self):
        graph = complete_graph(4)
        paths = graph.simple_paths(0, 1, cutoff=2)
        assert [0, 1] in paths

    def test_shortest_path_is_memoized_and_copy_safe(self):
        graph = line_graph(5)
        first = graph.shortest_path(0, 3)
        assert graph._path_cache[(0, 3)] == [0, 1, 2, 3]
        # Mutating the returned list must not corrupt the cache.
        first.append("garbage")
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_add_edge_invalidates_path_cache(self):
        graph = line_graph(5)
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]
        graph.add_edge(0, 3, capacity=2)
        assert graph.shortest_path(0, 3) == [0, 3]
        assert graph.capacity((0, 3)) == 2

    def test_add_edge_validates(self):
        graph = line_graph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 2, capacity=0)

    def test_invalidate_routing_cache(self):
        graph = line_graph(4)
        graph.shortest_path(0, 2)
        graph.invalidate_routing_cache()
        assert graph._path_cache == {}

    def test_set_capacity_invalidates_path_cache_and_reroutes(self):
        # Regression: every capacity-mutating path must invalidate the
        # shortest-path memo, not just add_edge.
        graph = line_graph(5)
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]
        assert (0, 3) in graph._path_cache
        graph.set_capacity(0, 1, 7)
        assert graph._path_cache == {}
        assert graph.capacity((0, 1)) == 7
        assert graph.nx[0][1]["capacity"] == 7
        # Re-routing after the mutation rebuilds the memo from live state.
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_set_capacity_validates(self):
        graph = line_graph(3)
        with pytest.raises(KeyError):
            graph.set_capacity(0, 2, 3)  # edge does not exist
        with pytest.raises(ValueError):
            graph.set_capacity(0, 1, 0)

    def test_remove_edge_invalidates_path_cache_and_reroutes(self):
        graph = line_graph(4)
        graph.add_edge(0, 3, capacity=2)
        assert graph.shortest_path(0, 3) == [0, 3]
        graph.remove_edge(0, 3)
        # The cached shortcut must not survive the removal.
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]
        assert not graph.has_edge(0, 3)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 3)

    def test_remove_last_edge_rejected(self):
        graph = CapacitatedGraph([(0, 1)])
        with pytest.raises(ValueError):
            graph.remove_edge(0, 1)


class TestTopologies:
    def test_line_graph(self):
        graph = line_graph(6, capacity=3)
        assert graph.num_edges == 5
        assert graph.max_capacity == 3

    def test_ring_graph(self):
        graph = ring_graph(5)
        assert graph.num_edges == 5
        assert graph.has_path(0, 4)

    def test_star_graph(self):
        graph = star_graph(4)
        assert graph.num_edges == 8  # bidirected spokes
        assert graph.has_path(1, 2)

    def test_binary_tree_graph(self):
        graph = binary_tree_graph(depth=2)
        assert graph.num_vertices == 7
        assert graph.num_edges == 12  # 6 tree edges, both directions

    def test_grid_graph(self):
        graph = grid_graph(3, 3)
        assert graph.num_vertices == 9
        assert graph.num_edges == 24

    def test_complete_graph(self):
        graph = complete_graph(4)
        assert graph.num_edges == 12

    def test_random_gnp_connected(self):
        graph = random_gnp_graph(10, 0.2, random_state=0)
        for v in range(1, 10):
            assert graph.has_path(0, v)

    def test_random_regular(self):
        graph = random_regular_graph(3, 8, random_state=0)
        assert graph.num_vertices == 8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            line_graph(1)
        with pytest.raises(ValueError):
            ring_graph(2)
        with pytest.raises(ValueError):
            star_graph(0)
        with pytest.raises(ValueError):
            grid_graph(0, 3)
        with pytest.raises(ValueError):
            random_gnp_graph(5, 1.5)
        with pytest.raises(ValueError):
            random_regular_graph(3, 5)


class TestRouting:
    def test_shortest_path_route(self):
        graph = grid_graph(3, 3)
        path = shortest_path_route(graph, (0, 0), (2, 2))
        assert path[0] == (0, 0)
        assert path[-1] == (2, 2)
        assert len(path) == 5

    def test_random_source_target_connected(self, rng):
        graph = grid_graph(3, 3)
        source, target = random_source_target(graph, rng)
        assert source != target
        assert graph.has_path(source, target)

    def test_random_source_target_needs_two_vertices(self, rng):
        graph = CapacitatedGraph([("a", "b")])
        source, target = random_source_target(graph, rng, require_path=False)
        assert {source, target} == {"a", "b"}

    def test_random_simple_path_valid(self, rng):
        graph = grid_graph(4, 4)
        path = random_simple_path(graph, (0, 0), (3, 3), rng)
        assert path[0] == (0, 0)
        assert path[-1] == (3, 3)
        assert len(set(path)) == len(path)
        # Every consecutive pair must be an edge.
        graph.path_edges(path)

    def test_k_shortest_paths(self):
        graph = grid_graph(3, 3)
        paths = k_shortest_paths(graph, (0, 0), (2, 2), k=3)
        assert 1 <= len(paths) <= 3
        assert all(p[0] == (0, 0) and p[-1] == (2, 2) for p in paths)
        assert len(paths[0]) <= len(paths[-1])

    def test_k_shortest_paths_validates_k(self):
        graph = grid_graph(2, 2)
        with pytest.raises(ValueError):
            k_shortest_paths(graph, (0, 0), (1, 1), k=0)
