"""Compiled-vs-uncompiled equivalence: the honesty gate of the array-native pipeline.

The compiled-instance layer (edge interning + CSR paths + indexed backend
fast paths + the record-free mode) exists purely for speed: every decision
log, every fraction and every cost must be identical — to 1e-9, and in
practice bit-for-bit — between

* the classic per-request path (``process(request)``), and
* the compiled path (``process_indexed(compiled, i)``),

for both weight backends and with diagnostics recording on and off, on the
canonical instances and across >= 10 random seeds.
"""

import numpy as np
import pytest

from repro.core.doubling import DoublingAdmissionControl, DoublingFractionalAdmissionControl
from repro.core.fractional import FractionalAdmissionControl
from repro.core.protocols import run_admission
from repro.core.randomized import RandomizedAdmissionControl
from repro.engine.config import EngineConfig
from repro.engine.runtime import SimulationEngine, make_admission_algorithm
from repro.instances.canonical import (
    single_edge_overload,
    star_congestion,
    triangle_weighted,
    two_edge_chain,
)
from repro.instances.compiled import compile_instance, compile_sequence
from repro.workloads import overloaded_edge_adversary

TOL = 1e-9
BACKENDS = ("python", "numpy")
SEEDS = list(range(10))

CANONICAL = {
    "single-edge-overload": single_edge_overload,
    "star-congestion": star_congestion,
    "two-edge-chain": two_edge_chain,
    "triangle-weighted": triangle_weighted,
}


def random_instance(seed: int):
    """A weighted multi-edge congestion instance with deep augmentation chains."""
    from repro.instances.admission import AdmissionInstance
    from repro.instances.request import Request, RequestSequence

    rng = np.random.default_rng(1000 + seed)
    edges = [f"e{i}" for i in range(12)]
    capacities = {e: int(c) for e, c in zip(edges, rng.integers(1, 4, size=len(edges)))}
    requests = []
    for rid in range(90):
        k = int(rng.integers(1, 4))
        path = [edges[int(i)] for i in rng.choice(len(edges), size=k, replace=False)]
        requests.append(Request(rid, frozenset(path), float(rng.uniform(1.0, 6.0))))
    return AdmissionInstance(capacities, RequestSequence(requests), name=f"random-{seed}")


def unit_cost_instance(seed: int):
    """A unit-cost adversarial instance (the unweighted configuration)."""
    return overloaded_edge_adversary(16, 2, num_hot_edges=4, random_state=seed)


def fractional_log(algo):
    """Decision log reduced to its observable content (outcome objects aside)."""
    return [(d.request_id, d.cost_class, d.fraction_rejected) for d in algo.decisions()]


def assert_fractional_equal(a, b):
    assert fractional_log(a) == pytest.approx(fractional_log(b), abs=TOL)
    assert a.fractional_cost() == pytest.approx(b.fractional_cost(), abs=TOL)
    assert a.num_augmentations == b.num_augmentations
    fa, fb = a.fractions(), b.fractions()
    assert set(fa) == set(fb)
    for rid in fa:
        assert fa[rid] == pytest.approx(fb[rid], abs=TOL), rid


def admission_log(result):
    return [(d.request_id, d.kind, d.at_request) for d in result.decisions]


class TestFractionalCompiledEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("record", [True, False])
    @pytest.mark.parametrize("name", sorted(CANONICAL))
    def test_canonical(self, name, backend, record):
        instance = CANONICAL[name]()
        plain = FractionalAdmissionControl.for_instance(instance, backend=backend, record=record)
        plain.process_sequence(instance.requests)
        compiled_algo = FractionalAdmissionControl.for_instance(
            instance, backend=backend, record=record
        )
        compiled_algo.process_compiled_sequence(compile_instance(instance))
        assert_fractional_equal(plain, compiled_algo)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("record", [True, False])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_weighted(self, seed, backend, record):
        instance = random_instance(seed)
        plain = FractionalAdmissionControl.for_instance(instance, backend=backend, record=record)
        plain.process_sequence(instance.requests)
        compiled_algo = FractionalAdmissionControl.for_instance(
            instance, backend=backend, record=record
        )
        compiled_algo.process_compiled_sequence(compile_instance(instance))
        assert_fractional_equal(plain, compiled_algo)
        assert compiled_algo.check_invariants() == []

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_alpha_classing_and_capacity_reduction_batch(self, seed, backend):
        """R_big / R_small classing (the batched capacity reductions) included."""
        instance = random_instance(seed)
        costs = [r.cost for r in instance.requests]
        # big threshold = 2 * alpha = the 40th cost percentile, so a healthy
        # chunk of requests goes through the R_big capacity-reduction batch.
        alpha = float(np.percentile(costs, 40)) / 2.0
        for record in (True, False):
            plain = FractionalAdmissionControl.for_instance(
                instance, backend=backend, alpha=alpha, record=record
            )
            plain.process_sequence(instance.requests)
            compiled_algo = FractionalAdmissionControl.for_instance(
                instance, backend=backend, alpha=alpha, record=record
            )
            compiled_algo.process_compiled_sequence(compile_instance(instance))
            assert_fractional_equal(plain, compiled_algo)
            # The preprocessing must actually have fired for the test to mean
            # anything.
            classes = {d.cost_class for d in plain.decisions()}
            assert "big" in classes or "small" in classes

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_record_off_matches_record_on(self, backend):
        """The record-free mode changes diagnostics only, never the numbers."""
        instance = random_instance(3)
        on = FractionalAdmissionControl.for_instance(instance, backend=backend, record=True)
        on.process_sequence(instance.requests)
        off = FractionalAdmissionControl.for_instance(instance, backend=backend, record=False)
        off.process_sequence(instance.requests)
        assert_fractional_equal(on, off)
        assert all(d.outcome is not None for d in on.decisions() if d.cost_class == "normal")
        assert all(d.outcome is None for d in off.decisions())
        assert on.weight_state.history() and not off.weight_state.history()

    def test_translation_fallback_for_misaligned_edge_order(self):
        """A compiled view with a different interning order still matches."""
        instance = random_instance(5)
        reversed_caps = dict(reversed(list(instance.capacities.items())))
        compiled = compile_sequence(instance.requests, reversed_caps)
        plain = FractionalAdmissionControl.for_instance(instance, backend="numpy")
        plain.process_sequence(instance.requests)
        translated = FractionalAdmissionControl.for_instance(instance, backend="numpy")
        translated.process_compiled_sequence(compiled)
        assert_fractional_equal(plain, translated)


class TestRandomizedCompiledEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomized_decision_logs_identical(self, seed, backend):
        instance = random_instance(seed)
        plain = RandomizedAdmissionControl.for_instance(
            instance, random_state=seed, backend=backend
        )
        plain_result = run_admission(plain, instance)
        fast = RandomizedAdmissionControl.for_instance(
            instance, random_state=seed, backend=backend
        )
        fast_result = run_admission(fast, instance, compiled=compile_instance(instance))
        assert admission_log(plain_result) == admission_log(fast_result)
        assert plain_result.rejection_cost == pytest.approx(fast_result.rejection_cost, abs=TOL)
        assert plain_result.accepted_ids == fast_result.accepted_ids
        assert plain_result.extra["fractional_cost"] == pytest.approx(
            fast_result.extra["fractional_cost"], abs=TOL
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_doubling_decision_logs_identical(self, seed, backend):
        instance = unit_cost_instance(seed)
        plain = DoublingAdmissionControl.for_instance(
            instance, random_state=seed, backend=backend
        )
        plain_result = run_admission(plain, instance)
        fast = DoublingAdmissionControl.for_instance(
            instance, random_state=seed, backend=backend
        )
        fast_result = run_admission(fast, instance, compiled=compile_instance(instance))
        assert admission_log(plain_result) == admission_log(fast_result)
        assert plain_result.rejection_cost == pytest.approx(fast_result.rejection_cost, abs=TOL)
        assert plain.schedule.phase_alphas == fast.schedule.phase_alphas

    @pytest.mark.parametrize("record", [True, False])
    def test_doubling_fractional_compiled(self, record):
        instance = random_instance(7)
        plain = DoublingFractionalAdmissionControl.for_instance(
            instance, backend="numpy", record=record
        )
        plain.process_sequence(instance.requests)
        fast = DoublingFractionalAdmissionControl.for_instance(
            instance, backend="numpy", record=record
        )
        fast.process_sequence(compile_instance(instance))
        assert plain.fractional_cost() == pytest.approx(fast.fractional_cost(), abs=TOL)
        assert plain.fractions() == pytest.approx(fast.fractions(), abs=TOL)
        assert plain.schedule.phase_alphas == fast.schedule.phase_alphas


class TestCompiledInstanceStructure:
    def test_interning_matches_capacity_order(self):
        instance = random_instance(0)
        compiled = compile_instance(instance)
        assert list(compiled.edge_order) == list(instance.capacities)
        assert compiled.capacities_by_id() == instance.capacities
        assert compiled.num_requests == instance.num_requests

    def test_csr_slices_match_request_edges(self):
        instance = random_instance(1)
        compiled = compile_instance(instance)
        for i, request in enumerate(instance.requests):
            edges = {compiled.edge_order[k] for k in compiled.edge_indices(i).tolist()}
            assert edges == set(request.edges)
            assert compiled.costs[i] == request.cost
            assert compiled.request_ids[i] == request.request_id
            assert compiled.request(i) is instance.requests[i]

    def test_compile_instance_memoizes(self):
        instance = random_instance(2)
        assert compile_instance(instance) is compile_instance(instance)

    def test_unknown_edge_rejected(self):
        instance = random_instance(2)
        partial = dict(list(instance.capacities.items())[:2])
        with pytest.raises(ValueError, match="no capacity entry"):
            compile_sequence(instance.requests, partial)


class TestEngineCompiledPipeline:
    def test_engine_compile_toggle_is_invisible(self):
        instance = unit_cost_instance(1)
        runs = {}
        for compile_flag in (True, False):
            engine = SimulationEngine(EngineConfig(backend="numpy", compile=compile_flag))
            runs[compile_flag] = engine.run_admission(
                "randomized", instance, random_state=42, weighted=False
            )
        assert admission_log(runs[True].result) == admission_log(runs[False].result)
        assert runs[True].result.rejection_cost == pytest.approx(
            runs[False].result.rejection_cost, abs=TOL
        )
        assert runs[True].num_arrivals == runs[False].num_arrivals

    def test_engine_falls_back_without_indexed_path(self):
        instance = unit_cost_instance(2)
        engine = SimulationEngine(EngineConfig(backend="python", compile=True))
        run = engine.run_admission("reject-when-full", instance)
        assert run.num_arrivals == instance.num_requests

    def test_run_admission_compiled_with_baseline_algorithm(self):
        """run_admission(compiled=...) degrades gracefully for plain algorithms."""
        instance = unit_cost_instance(3)
        compiled = compile_instance(instance)
        algo = make_admission_algorithm("reject-when-full", instance)
        result = run_admission(algo, instance, compiled=compiled)
        plain = run_admission(
            make_admission_algorithm("reject-when-full", instance), instance
        )
        assert admission_log(result) == admission_log(plain)

    def test_tag_batching_over_indices(self):
        instance = unit_cost_instance(4)
        engine = SimulationEngine(EngineConfig(batching="tag"))
        compiled = compile_instance(instance)
        batches = list(engine.iter_index_batches(compiled))
        assert sum(len(b) for b in batches) == compiled.num_requests
        flat = [i for batch in batches for i in batch]
        assert flat == list(range(compiled.num_requests))
