"""Tests for the experiment harness (registry + every experiment in quick mode)."""

import pytest

from repro.experiments import ExperimentConfig, all_experiments, get_experiment, run_experiment
from repro.experiments.base import ExperimentResult, register

TINY = ExperimentConfig(quick=True, num_trials=1, ilp_time_limit=5.0)


class TestRegistry:
    def test_all_eleven_registered(self):
        ids = set(all_experiments())
        assert ids == {f"E{k}" for k in range(1, 12)}

    def test_lookup_case_insensitive(self):
        assert get_experiment("e1") is get_experiment("E1")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_register_custom(self):
        def runner(config=None):
            return ExperimentResult("EX", "custom", "nothing")

        register("EX", runner)
        assert run_experiment("EX").experiment_id == "EX"


class TestExperimentConfig:
    def test_scaled_trials(self):
        assert ExperimentConfig(quick=True, num_trials=2).scaled_trials(10) == 2
        assert ExperimentConfig(quick=False, num_trials=2).scaled_trials(10) == 10


class TestExperimentResult:
    def test_table_and_aggregates(self):
        result = ExperimentResult("E0", "t", "v", rows=[{"a": 1.0}, {"a": 3.0}])
        assert result.max_value("a") == 3.0
        assert result.mean_value("a") == 2.0
        assert "E0" in result.table()

    def test_missing_column_is_nan(self):
        import math

        result = ExperimentResult("E0", "t", "v", rows=[{"a": 1.0}])
        assert math.isnan(result.max_value("zzz"))


class TestE1ToE2:
    def test_e1_ratio_bounded(self):
        result = run_experiment("E1", TINY)
        assert result.rows
        # Theorem 2 with the explicit constant ~ (3 + 2/c); 8x bound is generous.
        assert all(row["ratio/bound"] <= 8.0 for row in result.rows)

    def test_e2_no_violations(self):
        result = run_experiment("E2", TINY)
        assert result.rows
        assert all(row["violations"] == 0 for row in result.rows)
        assert all(row["augs/bound_worst"] <= 1.0 for row in result.rows)


class TestE3ToE5:
    def test_e3_feasible_and_bounded(self):
        result = run_experiment("E3", TINY)
        assert result.rows
        assert all(row["feasible"] for row in result.rows)

    def test_e4_feasible(self):
        result = run_experiment("E4", TINY)
        assert all(row["feasible"] for row in result.rows)

    def test_e5_always_covered(self):
        result = run_experiment("E5", TINY)
        assert result.rows
        assert all(row["all_covered"] for row in result.rows)


class TestE6ToE7:
    def test_e6_coverage_guarantee(self):
        result = run_experiment("E6", TINY)
        assert result.rows
        assert all(row["coverage_ok"] for row in result.rows)

    def test_e7_all_invariants_hold(self):
        result = run_experiment("E7", TINY)
        assert result.rows
        for row in result.rows:
            assert row["invariants_ok"] == row["trials"]


class TestE8ToE10:
    def test_e8_has_all_algorithms_and_workloads(self):
        result = run_experiment("E8", TINY)
        algorithms = {row["algorithm"] for row in result.rows}
        workloads = {row["workload"] for row in result.rows}
        assert len(algorithms) >= 6
        assert len(workloads) >= 4
        assert all(row["feasible"] for row in result.rows)

    def test_e8_paper_beats_nonpreemptive_on_weighted_trap(self):
        result = run_experiment("E8", TINY)
        rows = {
            (row["workload"], row["algorithm"]): row["ratio"]
            for row in result.rows
        }
        paper = rows[("cheap-then-expensive", "Doubling (paper)")]
        naive = rows[("cheap-then-expensive", "RejectWhenFull")]
        assert paper < naive

    def test_e9_columns_present(self):
        result = run_experiment("E9", TINY)
        assert result.rows
        for row in result.rows:
            assert row["ratio_oracle"] >= 1.0 or row["ratio_oracle"] == pytest.approx(1.0, abs=1e-9)
            assert row["phases_mean"] >= 0

    def test_e10_series_metadata(self):
        result = run_experiment("E10", TINY)
        assert "admission_series" in result.metadata
        assert "setcover_series" in result.metadata
        assert all(row["runtime_s"] >= 0 for row in result.rows)


class TestE11:
    def test_e11_covers_the_quick_matrix(self):
        result = run_experiment("E11", TINY)
        scenarios = {row["scenario"] for row in result.rows}
        algorithms = {row["algorithm"] for row in result.rows}
        assert scenarios == {"bursty", "zipf_costs", "flash_crowd"}
        assert algorithms == {"fractional", "randomized", "reject-when-full"}
        assert all(row["feasible"] for row in result.rows)
        assert all(row["ratio_mean"] >= 1.0 - 1e-9 for row in result.rows)
        assert "comparison" in result.metadata
