"""Property-style cross-backend equivalence: python vs numpy across 25 seeds.

The refactor's honesty gate, widened from the canonical instances to random
workloads.  The two backends execute the same IEEE-754 double arithmetic in
the same order, so a seeded run must agree not just on aggregate costs but on
the entire decision process:

* the fractional algorithm yields the same rejected fractions (within 1e-9)
  and the same augmentation count;
* the randomized algorithm consumes its coin flips in the same order, so with
  the same ``random_state`` both backends make *identical* accept / reject /
  preempt decisions;
* the set-cover reduction purchases the identical set collection.
"""

import numpy as np
import pytest

from repro.core.fractional import FractionalAdmissionControl
from repro.core.protocols import run_admission, run_setcover
from repro.core.randomized import RandomizedAdmissionControl
from repro.core.setcover_reduction import OnlineSetCoverViaAdmissionControl
from repro.workloads import (
    overloaded_edge_adversary,
    random_setcover_instance,
    single_edge_workload,
)

TOL = 1e-9
SEEDS = range(25)


def _admission_instance(seed):
    if seed % 2 == 0:
        return overloaded_edge_adversary(
            num_edges=10, capacity=2, num_hot_edges=3, random_state=seed
        )
    return single_edge_workload(
        num_edges=12, num_requests=48, capacity=3, concentration=1.3, random_state=seed
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_fractional_equivalent_on_random_admission(seed):
    instance = _admission_instance(seed)
    py = FractionalAdmissionControl.for_instance(instance, backend="python")
    nb = FractionalAdmissionControl.for_instance(instance, backend="numpy")
    py.process_sequence(instance.requests)
    nb.process_sequence(instance.requests)
    assert py.num_augmentations == nb.num_augmentations
    assert py.fractional_cost() == pytest.approx(nb.fractional_cost(), abs=TOL)
    fractions_py, fractions_nb = py.fractions(), nb.fractions()
    assert set(fractions_py) == set(fractions_nb)
    for rid in fractions_py:
        assert fractions_py[rid] == pytest.approx(fractions_nb[rid], abs=TOL)
    assert py.check_invariants() == []
    assert nb.check_invariants() == []


@pytest.mark.parametrize("seed", SEEDS)
def test_randomized_identical_decisions_on_random_admission(seed):
    instance = _admission_instance(seed)
    py = RandomizedAdmissionControl.for_instance(instance, random_state=seed, backend="python")
    nb = RandomizedAdmissionControl.for_instance(instance, random_state=seed, backend="numpy")
    result_py = run_admission(py, instance)
    result_nb = run_admission(nb, instance)
    # Same coins consumed in the same order -> the full decision logs match.
    assert [(d.request_id, d.kind) for d in result_py.decisions] == [
        (d.request_id, d.kind) for d in result_nb.decisions
    ]
    assert result_py.accepted_ids == result_nb.accepted_ids
    assert result_py.rejected_ids == result_nb.rejected_ids
    assert result_py.preempted_ids == result_nb.preempted_ids
    assert result_py.rejection_cost == pytest.approx(result_nb.rejection_cost, abs=TOL)
    assert result_py.extra["fractional_cost"] == pytest.approx(
        result_nb.extra["fractional_cost"], abs=TOL
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_reduction_identical_covers_on_random_setcover(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(12, 30))
    m = int(rng.integers(6, 14))
    instance = random_setcover_instance(n, m, 2 * n, random_state=seed)
    py = OnlineSetCoverViaAdmissionControl(
        instance.system, random_state=seed, backend="python"
    )
    nb = OnlineSetCoverViaAdmissionControl(
        instance.system, random_state=seed, backend="numpy"
    )
    result_py = run_setcover(py, instance)
    result_nb = run_setcover(nb, instance)
    assert result_py.chosen_sets == result_nb.chosen_sets
    assert result_py.cost == pytest.approx(result_nb.cost, abs=TOL)
    assert result_py.satisfied == result_nb.satisfied
