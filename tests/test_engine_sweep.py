"""Tests for the scenario sweep runner (engine/sweep.py)."""

import json

import pytest

from repro.engine.registry import UnknownKeyError
from repro.engine.sweep import ScenarioInstanceFactory, ScenarioSweep, SweepAlgorithmFactory
from repro.scenarios import get_scenario

#: Small, fast matrix shared by most tests: deterministic trap + tiny bursty.
SCENARIOS = ["cheap_expensive", "bursty"]
ALGORITHMS = ["fractional", "reject-when-full"]
OVERRIDES = {"bursty": {"num_requests": 40, "num_edges": 16}}


def small_sweep(**kwargs):
    defaults = dict(
        scenarios=SCENARIOS,
        algorithms=ALGORITHMS,
        num_trials=2,
        seed=3,
        offline="lp",
        scenario_overrides=OVERRIDES,
    )
    defaults.update(kwargs)
    scenarios = defaults.pop("scenarios")
    algorithms = defaults.pop("algorithms")
    return ScenarioSweep(scenarios, algorithms, **defaults)


class TestScenarioSweep:
    def test_runs_full_matrix(self):
        result = small_sweep().run()
        rows = result.rows()
        assert len(rows) == len(SCENARIOS) * len(ALGORITHMS)
        assert {(r["scenario"], r["algorithm"]) for r in rows} == {
            (s, a) for s in SCENARIOS for a in ALGORITHMS
        }
        assert all(r["trials"] == 2 for r in rows)
        assert all(r["ratio_mean"] >= 1.0 - 1e-9 for r in rows)

    def test_jobs_never_change_results(self):
        serial = small_sweep(jobs=1).run()
        parallel = small_sweep(jobs=2).run()
        for key, summary in serial.summaries.items():
            assert summary.ratios() == parallel.summaries[key].ratios(), key

    def test_cell_seeds_are_independent_of_grid(self):
        """Removing a scenario must not perturb the remaining cells' numbers."""
        full = small_sweep().run()
        just_bursty = small_sweep(scenarios=["bursty"]).run()
        for algorithm in ALGORITHMS:
            assert (
                full.summaries[("bursty", algorithm)].ratios()
                == just_bursty.summaries[("bursty", algorithm)].ratios()
            )

    def test_fractional_cells_compare_against_lp(self):
        result = small_sweep(algorithms=["fractional"]).run()
        for summary in result.summaries.values():
            assert all(r.offline_kind.startswith("lp") for r in summary.records)

    def test_trace_scenarios_join_the_matrix(self, tmp_path):
        from repro.scenarios import build_scenario, record_trace, scenario_from_trace

        path = record_trace(build_scenario("cheap_expensive"), tmp_path / "cell.jsonl")
        scenario = scenario_from_trace(path, register=False)
        result = ScenarioSweep(
            [scenario], ["reject-when-full"], num_trials=2, seed=0, offline="lp"
        ).run()
        summary = result.summaries[(scenario.key, "reject-when-full")]
        # The trace is deterministic, so every trial measures the same ratio.
        assert len(set(summary.ratios())) == 1

    def test_report_and_tables(self):
        result = small_sweep().run()
        report = result.report()
        assert "Cross-scenario comparison" in report
        for scenario in SCENARIOS:
            assert scenario in report
        for algorithm in ALGORITHMS:
            assert f"ratio[{algorithm}]" in report

    def test_save_round_trips_as_json(self, tmp_path):
        result = small_sweep().run()
        path = result.save(tmp_path / "sweep.json")
        payload = json.loads(path.read_text())
        assert payload["scenarios"] == SCENARIOS
        assert payload["algorithms"] == ALGORITHMS
        assert len(payload["cells"]) == len(SCENARIOS) * len(ALGORITHMS)
        assert all(len(cell["ratios"]) == 2 for cell in payload["cells"])

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            ScenarioSweep([], ["fractional"])
        with pytest.raises(ValueError, match="algorithm"):
            ScenarioSweep(["bursty"], [])

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario"):
            ScenarioSweep(["bursty", "bursty"], ["fractional"])
        with pytest.raises(ValueError, match="duplicate algorithm"):
            ScenarioSweep(["bursty"], ["fractional", "fractional"])

    def test_unknown_scenario_rejected_at_construction(self):
        with pytest.raises(UnknownKeyError, match="scenario"):
            ScenarioSweep(["no-such"], ["fractional"])

    def test_unknown_algorithm_fails_at_run(self):
        sweep = small_sweep(scenarios=["cheap_expensive"], algorithms=["no-such-algo"])
        with pytest.raises(UnknownKeyError, match="admission algorithm"):
            sweep.run()


class TestSweepFactories:
    def test_instance_factory_applies_overrides(self):
        import numpy as np

        factory = ScenarioInstanceFactory(
            get_scenario("bursty"), (("num_requests", 17), ("num_edges", 8))
        )
        instance = factory(np.random.default_rng(0))
        assert instance.num_requests == 17
        assert instance.num_edges == 8

    def test_factories_are_picklable(self):
        import pickle

        from repro.engine.config import EngineConfig

        factory = ScenarioInstanceFactory(get_scenario("bursty"))
        algo_factory = SweepAlgorithmFactory("fractional", EngineConfig())
        pickle.loads(pickle.dumps(factory))
        pickle.loads(pickle.dumps(algo_factory))
