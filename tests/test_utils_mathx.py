"""Unit tests for repro.utils.mathx."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import (
    ceil_log2,
    clamp,
    geometric_mean,
    harmonic_number,
    is_power_of_two,
    ln_guarded,
    log2_guarded,
    safe_ratio,
)


class TestLog2Guarded:
    def test_large_values_match_log2(self):
        assert log2_guarded(1024) == pytest.approx(10.0)

    def test_small_values_clamped_to_minimum(self):
        assert log2_guarded(1.0) == 1.0
        assert log2_guarded(0.5) == 1.0
        assert log2_guarded(0.0) == 1.0

    def test_custom_minimum(self):
        assert log2_guarded(2.0, minimum=0.0) == pytest.approx(1.0)
        assert log2_guarded(1.0, minimum=0.0) == 0.0

    def test_values_between_two_and_four(self):
        assert log2_guarded(3.0) == pytest.approx(math.log2(3.0))


class TestLnGuarded:
    def test_matches_natural_log_for_large_values(self):
        assert ln_guarded(math.e**3) == pytest.approx(3.0)

    def test_clamped_below(self):
        assert ln_guarded(1.0) == 1.0
        assert ln_guarded(0.01) == 1.0


class TestCeilLog2:
    def test_exact_powers(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(8) == 3

    def test_non_powers_round_up(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(9) == 4

    def test_values_below_one(self):
        assert ceil_log2(0.25) == 0


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(6.0, 3.0) == 2.0

    def test_zero_over_zero_defaults_to_one(self):
        assert safe_ratio(0.0, 0.0) == 1.0

    def test_zero_over_zero_custom(self):
        assert safe_ratio(0.0, 0.0, zero_over_zero=0.0) == 0.0

    def test_positive_over_zero_is_infinite(self):
        assert math.isinf(safe_ratio(1.0, 0.0))


class TestHarmonicNumber:
    def test_small_values_exact(self):
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_zero_and_negative(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(-3) == 0.0

    def test_asymptotic_branch_close_to_exact(self):
        exact = sum(1.0 / k for k in range(1, 501))
        assert harmonic_number(500) == pytest.approx(exact, rel=1e-6)

    def test_monotone(self):
        assert harmonic_number(10) < harmonic_number(11)


class TestClamp:
    def test_inside_range(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_and_above(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestGeometricMean:
    def test_constant_sequence(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_is_one(self):
        assert geometric_mean([]) == 1.0

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestIsPowerOfTwo:
    def test_powers(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(64)

    def test_non_powers(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)


class TestProperties:
    @given(st.floats(min_value=1.0, max_value=1e12))
    def test_log2_guarded_at_least_minimum(self, x):
        assert log2_guarded(x) >= 1.0

    @given(st.floats(min_value=0.0, max_value=1e6), st.floats(min_value=1e-6, max_value=1e6))
    def test_safe_ratio_non_negative(self, a, b):
        assert safe_ratio(a, b) >= 0.0

    @given(st.integers(min_value=1, max_value=10000))
    def test_harmonic_number_bounds(self, n):
        h = harmonic_number(n)
        assert math.log(n) < h <= math.log(n) + 1.0 + 1e-9
