"""Tests for the AST invariant checker (``repro lint``).

Each rule gets a golden fixture pair: a source tree where it must fire and a
near-identical one where it must stay quiet — the quiet twin is what keeps
the rules from rotting into noise.  The framework tests cover the strict
rule registry, suppression parsing (including unused-suppression findings),
the fingerprint update round-trip and the JSON report schema; the final
acceptance test runs the real linter over the installed package and requires
a clean exit.
"""

import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine.registry import DuplicateKeyError
from repro.lint import (
    LINT_REPORT_SCHEMA,
    LINT_RULES,
    LintConfig,
    LintRule,
    SuppressionError,
    UNUSED_SUPPRESSION_ID,
    run_lint,
)
from repro.lint.rules.schema_drift import SchemaSpec, fingerprint


def lint_tree(tmp_path, files, rules=None, **config_kwargs):
    """Write ``files`` (rel path -> source) under ``tmp_path`` and lint them."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    config = LintConfig(root=tmp_path, **config_kwargs)
    return run_lint(config, rules)


def rule_ids(result):
    return [v.rule_id for v in result.violations]


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# Framework: the rule registry
# ---------------------------------------------------------------------------


class TestRuleRegistry:
    def test_all_six_rules_registered(self):
        assert LINT_RULES.keys() == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        ]

    def test_double_registration_raises(self):
        with pytest.raises(DuplicateKeyError):
            LINT_RULES.register("RPR001", LintRule)

    def test_lookup_is_case_insensitive(self):
        assert LINT_RULES.get("rpr001") is LINT_RULES.get("RPR001")

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": "x = 1\n"}, rules=["RPR999"])
        assert result.rules_run == []
        assert result.errors and "RPR999" in result.errors[0]
        # ...and the known keys are listed for the one-glance fix.
        assert "RPR001" in result.errors[0]

    def test_every_rule_has_id_summary_and_invariants(self):
        for rule_id, cls in LINT_RULES.items():
            assert cls.rule_id == rule_id
            assert cls.summary
            assert cls.invariants


# ---------------------------------------------------------------------------
# Framework: suppressions
# ---------------------------------------------------------------------------


FIRING_RPR001 = (
    "def f(requests):\n"
    "    out = []\n"
    "    for r in requests:\n"
    "        for e in r.edges:\n"
    "            out.append(e)\n"
    "    return out\n"
)


class TestSuppressions:
    def test_trailing_comment_suppresses_the_line(self, tmp_path):
        source = FIRING_RPR001.replace(
            "for e in r.edges:",
            "for e in r.edges:  # repro: allow[RPR001] canonical-order definition",
        )
        result = lint_tree(tmp_path, {"m.py": source})
        assert result.violations == []

    def test_standalone_comment_applies_to_next_code_line(self, tmp_path):
        source = FIRING_RPR001.replace(
            "        for e in r.edges:",
            "        # repro: allow[RPR001] reason\n        for e in r.edges:",
        )
        result = lint_tree(tmp_path, {"m.py": source})
        assert result.violations == []

    def test_suppression_only_covers_its_rule(self, tmp_path):
        source = FIRING_RPR001.replace(
            "for e in r.edges:",
            "for e in r.edges:  # repro: allow[RPR002] wrong rule",
        )
        result = lint_tree(tmp_path, {"m.py": source})
        # RPR001 still fires, and the RPR002 allow is flagged as unused.
        assert "RPR001" in rule_ids(result)
        assert UNUSED_SUPPRESSION_ID in rule_ids(result)

    def test_unused_suppression_is_a_finding(self, tmp_path):
        result = lint_tree(
            tmp_path, {"m.py": "x = 1  # repro: allow[RPR001] stale\n"}
        )
        assert rule_ids(result) == [UNUSED_SUPPRESSION_ID]
        assert "allow[RPR001]" in result.violations[0].message

    def test_unused_only_counts_rules_that_ran(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {"m.py": "x = 1  # repro: allow[RPR001] stale\n"},
            rules=["RPR002"],
        )
        assert result.violations == []

    def test_malformed_rule_id_is_an_error(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": "x = 1  # repro: allow[bogus]\n"})
        assert result.errors and "malformed rule id" in result.errors[0]

    def test_rpr000_cannot_be_suppressed(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": "x = 1  # repro: allow[RPR000]\n"})
        assert result.errors and "RPR000" in result.errors[0]

    def test_allow_inside_a_string_is_not_a_suppression(self, tmp_path):
        source = FIRING_RPR001 + 'DOC = "# repro: allow[RPR001]"\n'
        result = lint_tree(tmp_path, {"m.py": source})
        assert "RPR001" in rule_ids(result)

    def test_comma_separated_ids(self, tmp_path):
        source = FIRING_RPR001.replace(
            "for e in r.edges:",
            "for e in r.edges:  # repro: allow[RPR001, RPR002] both checked",
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR001"])
        assert result.violations == []


# ---------------------------------------------------------------------------
# RPR001: frozenset iteration order
# ---------------------------------------------------------------------------


class TestRPR001:
    def test_fires_on_for_loop_over_edges(self, tmp_path):
        result = lint_tree(tmp_path, {"m.py": FIRING_RPR001}, rules=["RPR001"])
        assert rule_ids(result) == ["RPR001"]
        assert result.violations[0].line == 4

    def test_fires_on_comprehension_and_sorted(self, tmp_path):
        source = (
            "def f(r, caps):\n"
            "    unknown = [e for e in r.edges if e not in caps]\n"
            "    first = sorted(r.edges)[0]\n"
            "    return unknown, first\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR001"])
        assert rule_ids(result) == ["RPR001", "RPR001"]

    def test_fires_on_iteration_over_set_constructor(self, tmp_path):
        source = "def f(xs):\n    return [x for x in set(xs)]\n"
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR001"])
        assert rule_ids(result) == ["RPR001"]

    def test_clean_fixture(self, tmp_path):
        source = (
            "def f(r, caps, load):\n"
            "    for e in r.ordered_edges:\n"      # the canonical order
            "        load[e] = load.get(e, 0) + 1\n"
            "    ok = all(e in caps for e in r.ordered_edges)\n"
            "    n = len(r.edges)\n"               # len is order-free
            "    member = 'x' in r.edges\n"        # membership is order-free
            "    union = set() | r.edges\n"        # set algebra is order-free
            "    canon = sorted(set([1, 2]))\n"    # sorted(set) restores order
            "    return ok, n, member, union, canon\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR001"])
        assert result.violations == []


# ---------------------------------------------------------------------------
# RPR002: unseeded randomness
# ---------------------------------------------------------------------------


class TestRPR002:
    def test_fires_on_global_random_calls(self, tmp_path):
        source = (
            "import random\n"
            "def f(xs):\n"
            "    random.shuffle(xs)\n"
            "    return random.random()\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR002"])
        assert rule_ids(result) == ["RPR002", "RPR002"]

    def test_fires_on_bare_default_rng(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    a = np.random.default_rng()\n"
            "    b = np.random.default_rng(None)\n"
            "    return a, b\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR002"])
        assert rule_ids(result) == ["RPR002", "RPR002"]

    def test_fires_on_legacy_numpy_global_state(self, tmp_path):
        source = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR002"])
        assert rule_ids(result) == ["RPR002"]

    def test_fires_on_from_import_alias(self, tmp_path):
        source = "from random import shuffle\ndef f(xs):\n    shuffle(xs)\n"
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR002"])
        assert rule_ids(result) == ["RPR002"]

    def test_clean_fixture(self, tmp_path):
        source = (
            "import random\n"
            "import numpy as np\n"
            "def f(seed, random_state):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    forwarded = np.random.default_rng(random_state)\n"
            "    r = random.Random(seed)\n"
            "    return rng, forwarded, r\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR002"])
        assert result.violations == []


# ---------------------------------------------------------------------------
# RPR003: registry bypass
# ---------------------------------------------------------------------------


class TestRPR003:
    def test_fires_in_experiments(self, tmp_path):
        source = (
            "def run(instance):\n"
            "    algo = FractionalAdmissionControl(instance.capacities)\n"
            "    return algo\n"
        )
        result = lint_tree(
            tmp_path, {"experiments/e99.py": source}, rules=["RPR003"]
        )
        assert rule_ids(result) == ["RPR003"]
        assert "FractionalAdmissionControl" in result.violations[0].message

    def test_fires_on_dotted_construction_in_cli(self, tmp_path):
        source = (
            "from repro.engine import backends\n"
            "def f(caps, g):\n"
            "    return backends.NumpyWeightBackend(caps, g)\n"
        )
        result = lint_tree(tmp_path, {"cli.py": source}, rules=["RPR003"])
        assert rule_ids(result) == ["RPR003"]

    def test_clean_fixture_registry_lookup(self, tmp_path):
        source = (
            "def run(instance):\n"
            "    build = ADMISSION_ALGORITHMS.get('fractional')\n"
            "    return build(instance)\n"
        )
        result = lint_tree(
            tmp_path, {"experiments/e99.py": source}, rules=["RPR003"]
        )
        assert result.violations == []

    def test_defining_modules_are_out_of_scope(self, tmp_path):
        source = (
            "def build(instance, **kwargs):\n"
            "    return FractionalAdmissionControl(instance.capacities, **kwargs)\n"
        )
        result = lint_tree(tmp_path, {"core/runtime.py": source}, rules=["RPR003"])
        assert result.violations == []


# ---------------------------------------------------------------------------
# RPR004: export/restore state drift
# ---------------------------------------------------------------------------


_STATE_CLASS = """
class Algo:
    def __init__(self):
        self._weights = {{}}
        self._cache = {{}}

    def export_state(self):
        return {export}

    def restore_state(self, state):
{restore}
"""


class TestRPR004:
    def test_fires_when_attr_missing_from_both(self, tmp_path):
        source = _STATE_CLASS.format(
            export="{'weights': dict(self._weights)}",
            restore="        self._weights = dict(state['weights'])",
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR004"])
        assert rule_ids(result) == ["RPR004"]
        assert "_cache" in result.violations[0].message

    def test_fires_when_attr_missing_from_restore_only(self, tmp_path):
        source = _STATE_CLASS.format(
            export="{'weights': dict(self._weights), 'cache': dict(self._cache)}",
            restore="        self._weights = dict(state['weights'])",
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR004"])
        assert rule_ids(result) == ["RPR004"]
        assert "restore_state" in result.violations[0].message
        assert "export_state" not in result.violations[0].message.split(" or ")

    def test_fires_on_one_sided_state_protocol(self, tmp_path):
        source = (
            "class Algo:\n"
            "    def __init__(self):\n"
            "        self._weights = {}\n"
            "    def export_state(self):\n"
            "        return {'weights': dict(self._weights)}\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR004"])
        assert rule_ids(result) == ["RPR004"]
        assert "restore_state" in result.violations[0].message

    def test_clean_fixture_both_sides_cover(self, tmp_path):
        source = _STATE_CLASS.format(
            export="{'weights': dict(self._weights), 'cache': dict(self._cache)}",
            restore=(
                "        self._weights = dict(state['weights'])\n"
                "        self._cache = dict(state['cache'])"
            ),
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR004"])
        assert result.violations == []

    def test_clean_fixture_explicit_allowlist(self, tmp_path):
        source = (
            "class Algo:\n"
            "    _LINT_STATE_EXEMPT = frozenset({'_cache'})\n"
            "    def __init__(self):\n"
            "        self._weights = {}\n"
            "        self._cache = {}\n"
            "    def export_state(self):\n"
            "        return {'weights': dict(self._weights)}\n"
            "    def restore_state(self, state):\n"
            "        self._weights = dict(state['weights'])\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR004"])
        assert result.violations == []

    def test_immutable_attrs_are_ignored(self, tmp_path):
        source = (
            "class Algo:\n"
            "    def __init__(self):\n"
            "        self.alpha = 1.0\n"
            "        self.name = 'algo'\n"
            "    def export_state(self):\n"
            "        return {}\n"
            "    def restore_state(self, state):\n"
            "        pass\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR004"])
        assert result.violations == []


# ---------------------------------------------------------------------------
# RPR005: schema fingerprints
# ---------------------------------------------------------------------------


TOY_SPECS = (
    SchemaSpec(
        name="toy",
        version_file="mod.py",
        version_constant="TOY_SCHEMA",
        scopes=(("func", "mod.py", "to_dict"),),
    ),
)

TOY_MOD = (
    "TOY_SCHEMA = {version}\n"
    "def to_dict(x):\n"
    "    return {{'a': x, 'b': 2 * x{extra}}}\n"
)


def lint_toy(tmp_path, version=1, extra="", update=False):
    return lint_tree(
        tmp_path,
        {"mod.py": TOY_MOD.format(version=version, extra=extra)},
        rules=["RPR005"],
        schema_specs=TOY_SPECS,
        fingerprints_path=tmp_path / "fingerprints.json",
        update_fingerprints=update,
    )


class TestRPR005:
    def test_missing_fingerprint_then_update_round_trip(self, tmp_path):
        first = lint_toy(tmp_path)
        assert rule_ids(first) == ["RPR005"]
        assert "no checked-in fingerprint" in first.violations[0].message

        updated = lint_toy(tmp_path, update=True)
        assert updated.violations == []
        doc = json.loads((tmp_path / "fingerprints.json").read_text())
        entry = doc["entries"]["toy"]
        assert entry["version"] == 1
        assert entry["fields"] == ["a", "b"]
        assert entry["fingerprint"] == fingerprint(1, {"a", "b"})

        again = lint_toy(tmp_path)
        assert again.violations == []

    def test_field_change_without_version_bump_fails(self, tmp_path):
        lint_toy(tmp_path, update=True)
        result = lint_toy(tmp_path, extra=", 'c': 3")
        assert rule_ids(result) == ["RPR005"]
        assert "+c" in result.violations[0].message
        assert "version stayed 1" in result.violations[0].message

    def test_update_refuses_without_version_bump(self, tmp_path):
        lint_toy(tmp_path, update=True)
        before = (tmp_path / "fingerprints.json").read_text()
        result = lint_toy(tmp_path, extra=", 'c': 3", update=True)
        assert any("refusing to update" in v.message for v in result.violations)
        assert (tmp_path / "fingerprints.json").read_text() == before

    def test_field_change_with_version_bump_updates(self, tmp_path):
        lint_toy(tmp_path, update=True)
        stale = lint_toy(tmp_path, version=2, extra=", 'c': 3")
        assert rule_ids(stale) == ["RPR005"]
        assert "stale" in stale.violations[0].message

        updated = lint_toy(tmp_path, version=2, extra=", 'c': 3", update=True)
        assert updated.violations == []
        doc = json.loads((tmp_path / "fingerprints.json").read_text())
        assert doc["entries"]["toy"]["version"] == 2
        assert doc["entries"]["toy"]["fields"] == ["a", "b", "c"]

    def test_missing_scope_is_a_finding(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {"mod.py": "TOY_SCHEMA = 1\n"},
            rules=["RPR005"],
            schema_specs=TOY_SPECS,
            fingerprints_path=tmp_path / "fingerprints.json",
        )
        assert any("to_dict not found" in v.message for v in result.violations)

    def test_frame_literal_conformance(self, tmp_path):
        files = {
            "service/wire.py": (
                "TOY_SCHEMA = 1\n"
                "FRAMES = {'ok': ('seq',)}\n"
            ),
            "service/server.py": (
                "def reply(conn, seq):\n"
                "    conn.send({'op': 'ok', 'seq': seq, 'v': 1})\n"
                "    conn.send({'op': 'bogus'})\n"
                "    conn.send({'op': 'ok', 'seq': seq, 'smuggled': 1})\n"
            ),
        }
        specs = (
            SchemaSpec(
                name="toy-service",
                version_file="service/wire.py",
                version_constant="TOY_SCHEMA",
                scopes=(("const", "service/wire.py", "FRAMES"),),
            ),
        )
        result = lint_tree(
            tmp_path,
            files,
            rules=["RPR005"],
            schema_specs=specs,
            fingerprints_path=tmp_path / "fp.json",
            update_fingerprints=True,
        )
        messages = [v.message for v in result.violations]
        assert any("op 'bogus' not declared" in m for m in messages)
        assert any("smuggled" in m for m in messages)
        assert len(messages) == 2  # the conforming literal stays quiet


# ---------------------------------------------------------------------------
# RPR006: one reply per command path
# ---------------------------------------------------------------------------


class TestRPR006:
    def test_fires_on_branch_with_no_reply(self, tmp_path):
        source = (
            "def _handle_command(conn, msg):\n"
            "    if msg == 'ping':\n"
            "        conn.send('pong')\n"
            "    # any other msg falls through silently\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR006"])
        assert rule_ids(result) == ["RPR006"]
        assert "no reply" in result.violations[0].message

    def test_fires_on_double_reply(self, tmp_path):
        source = (
            "def _handle_command(conn, msg):\n"
            "    conn.send('ack')\n"
            "    conn.send(str(msg))\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR006"])
        assert rule_ids(result) == ["RPR006"]
        assert "more than one reply" in result.violations[0].message

    def test_fires_on_missing_reply_in_dispatch_loop(self, tmp_path):
        source = (
            "def _shard_worker(conn):\n"
            "    conn.send('started')\n"
            "    while True:\n"
            "        command = conn.recv()\n"
            "        if command == 'work':\n"
            "            conn.send('done')\n"
            "        elif command == 'stop':\n"
            "            return\n"  # forgot to acknowledge stop
            "        else:\n"
            "            conn.send('unknown')\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR006"])
        assert rule_ids(result) == ["RPR006"]

    def test_clean_fixture_dispatch_loop(self, tmp_path):
        source = (
            "def _shard_worker(conn):\n"
            "    conn.send('started')\n"  # pre-loop handshake: its own exchange
            "    while True:\n"
            "        try:\n"
            "            command = conn.recv()\n"
            "        except (EOFError, OSError):\n"
            "            return\n"  # peer gone: no one to reply to
            "        try:\n"
            "            if command == 'work':\n"
            "                conn.send('done')\n"
            "            elif command == 'stop':\n"
            "                conn.send('stopped')\n"
            "                return\n"
            "            else:\n"
            "                raise ValueError(command)\n"
            "        except Exception as err:\n"
            "            conn.send(('error', str(err)))\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR006"])
        assert result.violations == []

    def test_clean_fixture_guard_then_queue(self, tmp_path):
        source = (
            "def _handle_frame(self, frame, writer):\n"
            "    op = frame.get('op')\n"
            "    if op not in ('submit', 'stats'):\n"
            "        self._send(writer, 'error')\n"
            "        return\n"
            "    try:\n"
            "        payload = frame['payload']\n"
            "    except KeyError:\n"
            "        self._send(writer, 'bad frame')\n"
            "        return\n"
            "    self._queue.put_nowait(payload)\n"
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR006"])
        assert result.violations == []

    def test_non_protocol_functions_are_ignored(self, tmp_path):
        source = (
            "def _worker(self, shard):\n"
            "    return {'shard': shard}\n"  # never replies: bookkeeping
            "def broadcast(conns):\n"
            "    for c in conns:\n"
            "        c.send('hi')\n"  # not a _handle_*/_worker name
        )
        result = lint_tree(tmp_path, {"m.py": source}, rules=["RPR006"])
        assert result.violations == []


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_repo_is_clean(self):
        code, output = run_cli(["lint"])
        assert code == 0, output
        assert "0 violations" in output

    def test_json_report_schema(self, tmp_path):
        (tmp_path / "m.py").write_text(FIRING_RPR001, encoding="utf-8")
        code, output = run_cli(["lint", str(tmp_path), "--json"])
        assert code == 1
        doc = json.loads(output)
        assert doc["schema"] == LINT_REPORT_SCHEMA
        assert doc["ok"] is False
        assert doc["files_checked"] == 1
        assert doc["rules_run"] == LINT_RULES.keys()
        [violation] = doc["violations"]
        assert violation["rule"] == "RPR001"
        assert violation["path"] == "m.py"
        assert violation["line"] == 4
        assert "ordered_edges" in violation["message"]

    def test_text_report_format(self, tmp_path):
        (tmp_path / "m.py").write_text(FIRING_RPR001, encoding="utf-8")
        code, output = run_cli(["lint", str(tmp_path)])
        assert code == 1
        assert output.splitlines()[0].startswith("m.py:4: RPR001 ")

    def test_rules_filter(self, tmp_path):
        (tmp_path / "m.py").write_text(FIRING_RPR001, encoding="utf-8")
        code, output = run_cli(["lint", str(tmp_path), "--rules", "rpr002"])
        assert code == 0
        assert "rules: RPR002" in output

    def test_unknown_rule_is_exit_2(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n", encoding="utf-8")
        code, output = run_cli(["lint", str(tmp_path), "--rules", "RPR999"])
        assert code == 2
        assert "unknown lint rule" in output

    def test_missing_path_is_exit_2(self, tmp_path):
        code, output = run_cli(["lint", str(tmp_path / "nope")])
        assert code == 2

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        (tmp_path / "m.py").write_text("def f(:\n", encoding="utf-8")
        code, output = run_cli(["lint", str(tmp_path)])
        assert code == 1
        assert "failed to parse" in output

    def test_list_includes_lint_rules_section(self):
        code, output = run_cli(["list"])
        assert code == 0
        assert "[lint rules]" in output
        code, output = run_cli(["list", "lint"])
        assert code == 0
        for rule_id in LINT_RULES.keys():
            assert rule_id in output
        assert "invariant" in output
