"""Online set-cover baselines (with repetitions support).

Natural policies a practitioner would try before reaching for the paper's
machinery.  They share the :class:`~repro.core.protocols.OnlineSetCoverAlgorithm`
interface, cover demands exactly (not bicriteria), and are the comparison
points of experiments E5, E6 and E8.

* :class:`CheapestSetOnline` — when an arrival is under-covered, buy the
  cheapest unbought set containing the element.
* :class:`GreedyDensityOnline` — buy the unbought set with the best
  (current uncovered demand it would satisfy) / cost ratio; the online
  analogue of the classical greedy.
* :class:`RandomSetOnline` — buy a uniformly random unbought set containing
  the element; the natural randomized strawman.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.core.protocols import InfeasibleArrivalError, OnlineSetCoverAlgorithm
from repro.instances.setcover import ElementId, SetCoverInstance, SetId, SetSystem
from repro.utils.rng import RandomState, as_generator

__all__ = ["CheapestSetOnline", "GreedyDensityOnline", "RandomSetOnline"]


class _BuyUntilCovered(OnlineSetCoverAlgorithm):
    """Shared skeleton: buy sets (chosen by :meth:`_pick`) until the demand is met."""

    def process_element(self, element: ElementId) -> FrozenSet[SetId]:
        """Buy sets containing ``element`` until its coverage matches its demand."""
        demand = self._register_arrival(element)
        if demand > self.system.degree(element):
            raise InfeasibleArrivalError(
                f"element {element!r} requested {demand} times but only "
                f"{self.system.degree(element)} sets contain it"
            )
        purchased = set()
        while self.coverage(element) < demand:
            candidates = [
                sid for sid in self.system.sets_containing(element) if sid not in self._chosen
            ]
            if not candidates:
                break  # cannot happen after the feasibility check above
            choice = self._pick(element, candidates)
            self._purchase(choice)
            purchased.add(choice)
        return frozenset(purchased)

    def _pick(self, element: ElementId, candidates) -> SetId:
        raise NotImplementedError

    @classmethod
    def for_instance(cls, instance: SetCoverInstance, **kwargs):
        """Construct the baseline for a concrete instance's set system."""
        return cls(instance.system, **kwargs)


class CheapestSetOnline(_BuyUntilCovered):
    """Buy the cheapest unbought set containing the under-covered element."""

    def __init__(self, system: SetSystem, name: Optional[str] = None):
        super().__init__(system, name=name or "CheapestSetOnline")

    def _pick(self, element: ElementId, candidates) -> SetId:
        return min(candidates, key=lambda sid: (self.system.cost(sid), repr(sid)))


class GreedyDensityOnline(_BuyUntilCovered):
    """Buy the unbought set with the best uncovered-demand-per-cost ratio.

    "Uncovered demand" counts every element whose current coverage is below its
    current demand and which the candidate set contains — the online analogue
    of Chvátal's greedy, recomputed at each purchase.
    """

    def __init__(self, system: SetSystem, name: Optional[str] = None):
        super().__init__(system, name=name or "GreedyDensityOnline")

    def _pick(self, element: ElementId, candidates) -> SetId:
        def density(sid: SetId) -> float:
            useful = sum(
                1
                for member in self.system.members(sid)
                if self.coverage(member) < self.demand(member)
            )
            return useful / max(self.system.cost(sid), 1e-12)

        return max(candidates, key=lambda sid: (density(sid), repr(sid)))


class RandomSetOnline(_BuyUntilCovered):
    """Buy a uniformly random unbought set containing the element."""

    def __init__(
        self, system: SetSystem, random_state: RandomState = None, name: Optional[str] = None
    ):
        super().__init__(system, name=name or "RandomSetOnline")
        self.rng = as_generator(random_state)

    def _pick(self, element: ElementId, candidates) -> SetId:
        ordered = sorted(candidates, key=repr)
        return ordered[int(self.rng.integers(0, len(ordered)))]
