"""Threshold-preemption baseline (an ``O(sqrt m)``-flavoured deterministic rule).

Blum, Kalai and Kleinberg's ``O(sqrt m)``-competitive algorithm is built around
the idea that a request should only be preempted in favour of sufficiently
more valuable traffic, with the threshold tied to the instance size.  The
original construction is not available offline (see DESIGN.md's substitution
table); :class:`ThresholdPreemption` reconstructs the *style*: an accepted
request is preempted only when the arriving request is at least
``threshold_factor`` times as expensive, with ``threshold_factor`` defaulting
to ``sqrt(m)``.

The point of carrying this baseline is the comparison shape in experiment E8:
deterministic threshold rules pay a polynomial factor on adversarial inputs
where the paper's randomized primal–dual algorithm pays a polylogarithmic one.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.protocols import OnlineAdmissionAlgorithm
from repro.instances.admission import AdmissionInstance
from repro.instances.request import Decision, EdgeId, Request

__all__ = ["ThresholdPreemption"]


class ThresholdPreemption(OnlineAdmissionAlgorithm):
    """Preempt an accepted request only for a much more expensive newcomer.

    Parameters
    ----------
    capacities:
        Edge-capacity mapping.
    threshold_factor:
        The newcomer must cost at least ``threshold_factor`` times the
        candidate victim to justify preempting it.  Defaults to ``sqrt(m)``.
    """

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        threshold_factor: Optional[float] = None,
        name: Optional[str] = None,
    ):
        super().__init__(capacities, name=name or "ThresholdPreemption")
        if threshold_factor is None:
            threshold_factor = math.sqrt(max(len(self._capacities), 1))
        if threshold_factor < 1.0:
            raise ValueError("threshold_factor must be >= 1")
        self.threshold_factor = float(threshold_factor)

    def _cheap_victims(self, request: Request) -> Optional[List[int]]:
        """Victims (cheapest-first) that make room, or None if some edge cannot be cleared."""
        victims: Dict[int, float] = {}
        for edge in request.ordered_edges:
            overflow = self._load[edge] + 1 - self._capacities[edge]
            overflow -= sum(1 for rid in victims if edge in self._accepted[rid].edges)
            if overflow <= 0:
                continue
            candidates: List[Tuple[float, int]] = sorted(
                (req.cost, rid)
                for rid, req in self._accepted.items()
                if edge in req.edges and rid not in victims
            )
            eligible = [
                (cost, rid)
                for cost, rid in candidates
                if request.cost >= self.threshold_factor * cost
            ]
            if len(eligible) < overflow:
                return None
            for cost, rid in eligible[:overflow]:
                victims[rid] = cost
        return list(victims)

    def process(self, request: Request) -> Decision:
        """Accept if it fits; otherwise preempt only much cheaper requests."""
        self._register_arrival(request)
        if self.can_accept(request):
            return self._accept(request)
        victims = self._cheap_victims(request)
        if victims is None:
            return self._reject(request)
        for rid in victims:
            self._preempt(rid, at_request=request.request_id)
        return self._accept(request)

    @classmethod
    def for_instance(cls, instance: AdmissionInstance, **kwargs) -> "ThresholdPreemption":
        """Construct the baseline for a concrete instance."""
        return cls(instance.capacities, **kwargs)
