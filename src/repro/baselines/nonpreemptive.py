"""Non-preemptive baseline: accept while it fits, reject otherwise.

This is the simplest conceivable online policy and the paper's implicit
strawman: without preemption, no algorithm can be better than trivially
competitive for the rejection objective (the cheap-then-expensive adversary in
:mod:`repro.workloads.admission_adversarial` makes it pay a factor equal to
the cost spread).  It serves as the lower anchor in the baseline comparison
experiment (E8).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.protocols import OnlineAdmissionAlgorithm
from repro.instances.admission import AdmissionInstance
from repro.instances.request import Decision, EdgeId, Request

__all__ = ["RejectWhenFull"]


class RejectWhenFull(OnlineAdmissionAlgorithm):
    """Accept every request that fits; reject every request that does not.

    Never preempts.  Feasible by construction.
    """

    def __init__(self, capacities: Mapping[EdgeId, int], name: Optional[str] = None):
        super().__init__(capacities, name=name or "RejectWhenFull")

    def process(self, request: Request) -> Decision:
        """Accept iff every edge on the path has residual capacity."""
        self._register_arrival(request)
        if self.can_accept(request):
            return self._accept(request)
        return self._reject(request)

    @classmethod
    def for_instance(cls, instance: AdmissionInstance, **kwargs) -> "RejectWhenFull":
        """Construct the baseline for a concrete instance."""
        return cls(instance.capacities, **kwargs)
