"""Throughput-maximising baseline (Awerbuch–Azar–Plotkin style exponential costs).

Section 1 of the paper motivates the rejection objective by pointing out that
an algorithm with an optimal competitive ratio *for the benefit objective*
(maximise accepted requests) may nevertheless reject almost everything when
minimising rejections is what actually matters.  To reproduce that comparison
the library carries a benefit-style baseline: the classic exponential-cost
admission rule of Awerbuch, Azar and Plotkin (FOCS 1993), adapted to the
"path given with the request" model.

The rule: maintain for every edge a congestion-dependent price
``c_e(lambda) = u_e (mu^{lambda_e / u_e} - 1)`` where ``lambda_e`` is the edge's
current relative load and ``u_e`` its capacity; accept an arriving request iff
the total price of its path is at most its benefit (its cost ``p_i`` here).
It never preempts.  It is throughput-competitive, but on the
``benefit_objective_trap`` workload it rejects far more than the optimum —
exactly the phenomenon the paper's introduction describes.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.protocols import OnlineAdmissionAlgorithm
from repro.instances.admission import AdmissionInstance
from repro.instances.request import Decision, EdgeId, Request

__all__ = ["ExponentialBenefitAdmission"]


class ExponentialBenefitAdmission(OnlineAdmissionAlgorithm):
    """Accept a request iff the exponential congestion price of its path is low.

    Parameters
    ----------
    capacities:
        Edge-capacity mapping.
    mu:
        Base of the exponential price.  The classical analysis uses
        ``mu = Theta(n)`` (number of vertices / requests); any value > 1 works
        for the baseline role the class plays here.
    scale:
        Benefit scale: a request's benefit is ``scale * cost``.
    """

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        mu: float = 64.0,
        scale: float = 1.0,
        name: Optional[str] = None,
    ):
        super().__init__(capacities, name=name or "ExponentialBenefit")
        if mu <= 1.0:
            raise ValueError("mu must be > 1")
        if scale <= 0.0:
            raise ValueError("scale must be > 0")
        self.mu = float(mu)
        self.scale = float(scale)

    def _edge_price(self, edge: EdgeId) -> float:
        """Current exponential price of one more unit of load on ``edge``."""
        capacity = self._capacities[edge]
        utilisation = self._load[edge] / capacity
        return capacity * (self.mu**utilisation - 1.0)

    def path_price(self, request: Request) -> float:
        """Total price of the request's path at the current congestion."""
        return sum(self._edge_price(e) for e in request.ordered_edges)

    def process(self, request: Request) -> Decision:
        """Accept iff the path price is at most the request's (scaled) benefit."""
        self._register_arrival(request)
        if not self.can_accept(request):
            return self._reject(request)
        if self.path_price(request) <= self.scale * request.cost:
            return self._accept(request)
        return self._reject(request)

    @classmethod
    def for_instance(cls, instance: AdmissionInstance, **kwargs) -> "ExponentialBenefitAdmission":
        """Construct the baseline for a concrete instance."""
        return cls(instance.capacities, **kwargs)
