"""Preemptive greedy baselines for admission control.

Two natural deterministic policies in the spirit of the simple algorithms of
Blum, Kalai and Kleinberg (WADS 2001).  The exact BKK algorithms are not
reproduced here (the WADS paper is not available offline — see the
substitution table in DESIGN.md); these baselines fill the same role in the
experiments: deterministic, feasible, reasonable, and beatable by the paper's
primal–dual approach on adversarial inputs.

* :class:`KeepExpensive` — always admit the newcomer, then evict the cheapest
  conflicting requests until feasible.  On unit costs this behaves like a
  "keep the latest" rule; on weighted inputs it protects expensive requests
  (a ``c+1``-flavoured policy).
* :class:`GreedySwap` — admit the newcomer only if that is locally cheaper
  than rejecting it: the newcomer is compared against the cheapest eviction
  bundle that would make room for it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.protocols import OnlineAdmissionAlgorithm
from repro.instances.admission import AdmissionInstance
from repro.instances.request import Decision, EdgeId, Request

__all__ = ["KeepExpensive", "GreedySwap"]


class KeepExpensive(OnlineAdmissionAlgorithm):
    """Admit every request, then evict the cheapest conflicting ones.

    When an edge exceeds its capacity after admitting the newcomer, accepted
    requests through that edge are preempted in increasing cost order until
    the edge fits again.  The newcomer itself is also a candidate for
    immediate eviction (so on unit costs the policy does not thrash).
    """

    def __init__(self, capacities: Mapping[EdgeId, int], name: Optional[str] = None):
        super().__init__(capacities, name=name or "KeepExpensive")

    def process(self, request: Request) -> Decision:
        """Admit, then restore feasibility cheapest-first."""
        self._register_arrival(request)
        decision = self._accept(request)
        arriving_evicted = False
        for edge in request.ordered_edges:
            while self._load[edge] > self._capacities[edge]:
                on_edge = [
                    (req.cost, rid)
                    for rid, req in self._accepted.items()
                    if edge in req.edges
                ]
                on_edge.sort()
                victim_cost, victim = on_edge[0]
                self._preempt(victim, at_request=request.request_id)
                if victim == request.request_id:
                    arriving_evicted = True
                    break
            if arriving_evicted:
                break
        return decision

    @classmethod
    def for_instance(cls, instance: AdmissionInstance, **kwargs) -> "KeepExpensive":
        """Construct the baseline for a concrete instance."""
        return cls(instance.capacities, **kwargs)


class GreedySwap(OnlineAdmissionAlgorithm):
    """Admit the newcomer only if evicting cheaper requests pays off locally.

    For every over-capacity edge the policy finds the cheapest accepted
    requests whose eviction would make room; if the total eviction cost over
    all edges is below the newcomer's cost, the evictions are performed and
    the newcomer is admitted, otherwise the newcomer is rejected.  This is the
    "local exchange" heuristic a practitioner would write first.
    """

    def __init__(self, capacities: Mapping[EdgeId, int], name: Optional[str] = None):
        super().__init__(capacities, name=name or "GreedySwap")

    def _eviction_plan(self, request: Request) -> Optional[Tuple[float, List[int]]]:
        """Cheapest eviction bundle making room for ``request`` (None if impossible)."""
        to_evict: Dict[int, float] = {}
        for edge in request.ordered_edges:
            overflow = self._load[edge] + 1 - self._capacities[edge]
            # Evictions already planned for other edges also relieve this one.
            overflow -= sum(1 for rid in to_evict if edge in self._accepted[rid].edges)
            if overflow <= 0:
                continue
            candidates = sorted(
                (
                    (req.cost, rid)
                    for rid, req in self._accepted.items()
                    if edge in req.edges and rid not in to_evict
                ),
            )
            if len(candidates) < overflow:
                return None
            for cost, rid in candidates[:overflow]:
                to_evict[rid] = cost
        return (sum(to_evict.values()), list(to_evict))

    def process(self, request: Request) -> Decision:
        """Accept directly, swap if profitable, reject otherwise."""
        self._register_arrival(request)
        if self.can_accept(request):
            return self._accept(request)
        plan = self._eviction_plan(request)
        if plan is None:
            return self._reject(request)
        eviction_cost, victims = plan
        if eviction_cost < request.cost:
            for rid in victims:
                self._preempt(rid, at_request=request.request_id)
            return self._accept(request)
        return self._reject(request)

    @classmethod
    def for_instance(cls, instance: AdmissionInstance, **kwargs) -> "GreedySwap":
        """Construct the baseline for a concrete instance."""
        return cls(instance.capacities, **kwargs)
