"""Online baselines the paper's algorithms are compared against (experiment E8).

Importing this package also registers every baseline in the engine's
algorithm registries (:data:`repro.engine.registry.ADMISSION_ALGORITHMS` /
:data:`repro.engine.registry.SETCOVER_ALGORITHMS`), so experiments and the CLI
can resolve them by key next to the paper's algorithms.
"""

from repro.baselines.exponential_benefit import ExponentialBenefitAdmission
from repro.baselines.greedy_preemptive import GreedySwap, KeepExpensive
from repro.baselines.nonpreemptive import RejectWhenFull
from repro.baselines.setcover_online import CheapestSetOnline, GreedyDensityOnline, RandomSetOnline
from repro.baselines.threshold import ThresholdPreemption
from repro.engine.registry import ADMISSION_ALGORITHMS, SETCOVER_ALGORITHMS

__all__ = [
    "ExponentialBenefitAdmission",
    "GreedySwap",
    "KeepExpensive",
    "RejectWhenFull",
    "CheapestSetOnline",
    "GreedyDensityOnline",
    "RandomSetOnline",
    "ThresholdPreemption",
]


def _register_admission_baseline(key, cls):
    """Register a deterministic admission baseline under ``key``.

    Baselines ignore the weight backend (they have no weight mechanism) and
    the random state (they are deterministic); the builder still accepts both
    so every registry entry shares the uniform signature.
    """

    @ADMISSION_ALGORITHMS.register(key)
    def _build(instance, *, random_state=None, backend=None, _cls=cls, **kwargs):
        return _cls.for_instance(instance, **kwargs)


def _register_setcover_baseline(key, cls, *, randomized=False):
    """Register a set-cover baseline under ``key``."""

    @SETCOVER_ALGORITHMS.register(key)
    def _build(instance, *, random_state=None, backend=None, _cls=cls, **kwargs):
        if randomized:
            kwargs.setdefault("random_state", random_state)
        return _cls.for_instance(instance, **kwargs)


_register_admission_baseline("reject-when-full", RejectWhenFull)
_register_admission_baseline("keep-expensive", KeepExpensive)
_register_admission_baseline("greedy-swap", GreedySwap)
_register_admission_baseline("threshold", ThresholdPreemption)
_register_admission_baseline("exponential-benefit", ExponentialBenefitAdmission)

_register_setcover_baseline("cheapest-set", CheapestSetOnline)
_register_setcover_baseline("greedy-density", GreedyDensityOnline)
_register_setcover_baseline("random-set", RandomSetOnline, randomized=True)
