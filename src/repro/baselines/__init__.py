"""Online baselines the paper's algorithms are compared against (experiment E8)."""

from repro.baselines.exponential_benefit import ExponentialBenefitAdmission
from repro.baselines.greedy_preemptive import GreedySwap, KeepExpensive
from repro.baselines.nonpreemptive import RejectWhenFull
from repro.baselines.setcover_online import CheapestSetOnline, GreedyDensityOnline, RandomSetOnline
from repro.baselines.threshold import ThresholdPreemption

__all__ = [
    "ExponentialBenefitAdmission",
    "GreedySwap",
    "KeepExpensive",
    "RejectWhenFull",
    "CheapestSetOnline",
    "GreedyDensityOnline",
    "RandomSetOnline",
    "ThresholdPreemption",
]
