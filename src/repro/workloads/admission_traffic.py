"""Serving-style traffic generators: bursty, heavy-tailed, diurnal, flash-crowd.

The random and adversarial workloads stress the *structure* of an instance
(hot edges, cheap-then-expensive traps); the generators below stress its
*arrival process*, the way real serving traffic does:

* :func:`bursty_workload` — a two-state Markov-modulated process (MMPP):
  calm traffic spreads over the whole edge set, burst episodes funnel
  requests through a small hot set.  Bursts are tagged so the engine's tag
  batching dispatches each episode as one batch;
* :func:`zipf_cost_workload` — Zipf-popular edges times Zipf-heavy rejection
  penalties, the canonical serving mix (a few very popular resources, a few
  very expensive requests);
* :func:`diurnal_workload` — a sinusoidal day/night load curve: peak-hour
  arrivals concentrate on the hot set, off-peak traffic spreads out;
* :func:`flash_crowd_workload` — steady background traffic with one sudden
  crowd hammering a small target set for a fraction of the trace;
* :func:`adversarial_mix_workload` — independent adversarial blocks (the
  constructions of :mod:`repro.workloads.admission_adversarial`) on disjoint
  edge namespaces, randomly interleaved into one stream;
* :func:`topology_stress_workload` — shortest-path circuits over any of the
  standard topologies (:mod:`repro.network.topologies`) at a chosen overload
  level.

Every generator emits a plain :class:`~repro.instances.admission.
AdmissionInstance`, so the compiled fast path
(:func:`repro.instances.compiled.compile_sequence`) applies unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.instances.admission import AdmissionInstance
from repro.instances.request import Request, RequestSequence
from repro.utils.rng import RandomState, as_generator
from repro.workloads.admission_adversarial import (
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
    overloaded_edge_adversary,
)
from repro.workloads.costs import sample_costs, zipf_costs

__all__ = [
    "bursty_workload",
    "zipf_cost_workload",
    "diurnal_workload",
    "flash_crowd_workload",
    "adversarial_mix_workload",
    "topology_stress_workload",
]


def _uniform_edges(rng, num_edges: int, max_path: int) -> List[str]:
    """A short random path: 1..max_path distinct uniform edges."""
    k = int(rng.integers(1, max_path + 1))
    picks = rng.choice(num_edges, size=min(k, num_edges), replace=False)
    return [f"e{int(j)}" for j in picks]


def bursty_workload(
    num_edges: int = 64,
    num_requests: int = 400,
    capacity: int = 8,
    *,
    num_hot_edges: int = 4,
    calm_to_burst: float = 0.05,
    burst_to_calm: float = 0.15,
    max_path: int = 2,
    cost_sampler=None,
    random_state: RandomState = None,
    name: str = "bursty-mmpp",
) -> AdmissionInstance:
    """Markov-modulated (MMPP-style) bursty arrivals.

    A hidden two-state chain switches between *calm* (requests spread over
    all edges) and *burst* (every request crosses one of ``num_hot_edges``
    hot edges, so their load spikes far beyond capacity).  The stationary
    burst fraction is ``calm_to_burst / (calm_to_burst + burst_to_calm)``.
    Requests inside burst episode ``k`` carry the tag ``"burst<k>"`` so the
    engine's tag batching dispatches an episode as one batch.
    """
    if num_hot_edges < 1 or num_hot_edges > num_edges:
        raise ValueError("need 1 <= num_hot_edges <= num_edges")
    if not (0.0 < calm_to_burst <= 1.0 and 0.0 < burst_to_calm <= 1.0):
        raise ValueError("transition probabilities must be in (0, 1]")
    rng = as_generator(random_state)
    capacities = {f"e{j}": capacity for j in range(num_edges)}
    costs = sample_costs(cost_sampler, num_requests, rng)
    requests: List[Request] = []
    bursting = False
    burst_id = 0
    for i in range(num_requests):
        if bursting:
            if rng.random() < burst_to_calm:
                bursting = False
        elif rng.random() < calm_to_burst:
            bursting = True
            burst_id += 1
        if bursting:
            hot = f"e{int(rng.integers(0, num_hot_edges))}"
            edges = {hot, f"e{int(rng.integers(0, num_edges))}"}
            tag: Optional[str] = f"burst{burst_id}"
        else:
            edges = set(_uniform_edges(rng, num_edges, max_path))
            tag = None
        requests.append(Request(i, frozenset(edges), float(costs[i]), tag=tag))
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def zipf_cost_workload(
    num_edges: int = 64,
    num_requests: int = 400,
    capacity: int = 6,
    *,
    cost_exponent: float = 1.8,
    cost_cap: float = 1e4,
    edge_concentration: float = 1.1,
    max_path: int = 3,
    random_state: RandomState = None,
    name: str = "zipf-costs",
) -> AdmissionInstance:
    """Zipf-popular edges crossed by requests with Zipf-heavy rejection penalties.

    Edge ``j`` is chosen with probability proportional to
    ``(j + 1) ** -edge_concentration`` — the first few edges absorb most of
    the load — while costs come from :func:`repro.workloads.costs.zipf_costs`,
    so occasionally a very expensive request competes for a very popular edge.
    This is the regime where the ``R_big`` / ``R_small`` preprocessing earns
    its keep.
    """
    if num_edges < 2:
        raise ValueError(
            "num_edges must be >= 2: the Zipf edge-popularity support needs at "
            "least two edges, otherwise every request hits the same edge and "
            "the popularity weights are degenerate"
        )
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if edge_concentration <= 0:
        raise ValueError(
            f"edge_concentration must be > 0 (rank-decreasing popularity), "
            f"got {edge_concentration}"
        )
    rng = as_generator(random_state)
    capacities = {f"e{j}": capacity for j in range(num_edges)}
    weights = np.arange(1, num_edges + 1, dtype=float) ** (-float(edge_concentration))
    weights /= weights.sum()
    costs = zipf_costs(num_requests, exponent=cost_exponent, cap=cost_cap, random_state=rng)
    requests: List[Request] = []
    for i in range(num_requests):
        k = int(rng.integers(1, max_path + 1))
        picks = rng.choice(num_edges, size=min(k, num_edges), replace=False, p=weights)
        edges = frozenset(f"e{int(j)}" for j in picks)
        requests.append(Request(i, edges, float(costs[i])))
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def diurnal_workload(
    num_edges: int = 48,
    num_requests: int = 480,
    capacity: int = 6,
    *,
    num_days: int = 2,
    peak_hot_fraction: float = 0.85,
    offpeak_hot_fraction: float = 0.1,
    num_hot_edges: int = 6,
    max_path: int = 2,
    cost_sampler=None,
    random_state: RandomState = None,
    name: str = "diurnal",
) -> AdmissionInstance:
    """A day/night load curve: peak hours concentrate traffic on the hot set.

    Request ``i`` arrives at phase ``2 * pi * num_days * i / n``; the
    probability that it crosses a hot edge interpolates sinusoidally between
    ``offpeak_hot_fraction`` (night) and ``peak_hot_fraction`` (midday), so
    the hot edges see recurring congestion waves rather than one flood.
    Requests are tagged ``"day<d>"`` with their day index.
    """
    if not 0.0 <= offpeak_hot_fraction <= peak_hot_fraction <= 1.0:
        raise ValueError("need 0 <= offpeak_hot_fraction <= peak_hot_fraction <= 1")
    if num_hot_edges < 1 or num_hot_edges > num_edges:
        raise ValueError("need 1 <= num_hot_edges <= num_edges")
    rng = as_generator(random_state)
    capacities = {f"e{j}": capacity for j in range(num_edges)}
    costs = sample_costs(cost_sampler, num_requests, rng)
    requests: List[Request] = []
    for i in range(num_requests):
        phase = 2.0 * np.pi * num_days * i / max(num_requests, 1)
        # sin^2 ramps 0 -> 1 -> 0 once per day, peaking mid-day.
        intensity = float(np.sin(phase / 2.0) ** 2)
        p_hot = offpeak_hot_fraction + (peak_hot_fraction - offpeak_hot_fraction) * intensity
        day = int(num_days * i / max(num_requests, 1))
        if rng.random() < p_hot:
            hot = f"e{int(rng.integers(0, num_hot_edges))}"
            edges = {hot, f"e{int(rng.integers(0, num_edges))}"}
        else:
            edges = set(_uniform_edges(rng, num_edges, max_path))
        requests.append(Request(i, frozenset(edges), float(costs[i]), tag=f"day{day}"))
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def flash_crowd_workload(
    num_edges: int = 64,
    num_requests: int = 500,
    capacity: int = 6,
    *,
    spike_start: float = 0.45,
    spike_duration: float = 0.12,
    spike_intensity: float = 0.9,
    num_target_edges: int = 3,
    max_path: int = 2,
    cost_sampler=None,
    random_state: RandomState = None,
    name: str = "flash-crowd",
) -> AdmissionInstance:
    """Steady background traffic with one sudden crowd on a small target set.

    Arrivals in the window ``[spike_start, spike_start + spike_duration)``
    (as fractions of the trace) cross one of ``num_target_edges`` target
    edges with probability ``spike_intensity`` — far beyond their capacity —
    and carry the tag ``"spike"``.  Everything before and after is uniform
    background load, so an online algorithm must absorb the crowd without
    having been warned by the prefix.
    """
    if not 0.0 <= spike_start or not 0.0 < spike_duration or spike_start + spike_duration > 1.0:
        raise ValueError("spike window must lie within the trace")
    if not 0.0 <= spike_intensity <= 1.0:
        raise ValueError("spike_intensity must be in [0, 1]")
    if num_target_edges < 1 or num_target_edges > num_edges:
        raise ValueError("need 1 <= num_target_edges <= num_edges")
    rng = as_generator(random_state)
    capacities = {f"e{j}": capacity for j in range(num_edges)}
    costs = sample_costs(cost_sampler, num_requests, rng)
    spike_lo = spike_start * num_requests
    spike_hi = (spike_start + spike_duration) * num_requests
    requests: List[Request] = []
    for i in range(num_requests):
        in_spike = spike_lo <= i < spike_hi and rng.random() < spike_intensity
        if in_spike:
            target = f"e{int(rng.integers(0, num_target_edges))}"
            edges = {target, f"e{int(rng.integers(0, num_edges))}"}
            tag: Optional[str] = "spike"
        else:
            edges = set(_uniform_edges(rng, num_edges, max_path))
            tag = None
        requests.append(Request(i, frozenset(edges), float(costs[i]), tag=tag))
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def adversarial_mix_workload(
    num_edges: int = 8,
    capacity: int = 2,
    *,
    blocks: Sequence[str] = ("overload", "cheap-expensive", "long-short"),
    random_state: RandomState = None,
    name: str = "adversarial-mix",
) -> AdmissionInstance:
    """Independent adversarial constructions interleaved into one stream.

    Each entry of ``blocks`` names one construction from
    :mod:`repro.workloads.admission_adversarial` (``"overload"``,
    ``"cheap-expensive"``, ``"long-short"``); the block is built on its own
    edge namespace (``b<k>:<edge>``) and the blocks are merged by a random
    interleaving that preserves each block's internal arrival order — the
    adversaries keep their bite, but the algorithm faces them simultaneously
    instead of one at a time.  Requests carry the tag ``"block<k>"``.
    """
    builders = {
        "overload": lambda rng: overloaded_edge_adversary(
            num_edges, capacity, num_hot_edges=max(1, num_edges // 4), random_state=rng
        ),
        "cheap-expensive": lambda rng: cheap_then_expensive_adversary(
            num_edges, capacity, expensive_cost=50.0
        ),
        "long-short": lambda rng: long_vs_short_adversary(num_edges, capacity),
    }
    unknown = [b for b in blocks if b not in builders]
    if unknown:
        raise ValueError(f"unknown adversarial blocks {unknown!r}; known: {sorted(builders)}")
    if not blocks:
        raise ValueError("need at least one block")
    rng = as_generator(random_state)

    capacities = {}
    streams: List[List[Request]] = []
    for k, block in enumerate(blocks):
        sub = builders[block](rng)
        prefix = f"b{k}:"
        for edge, cap in sub.capacities.items():
            capacities[prefix + str(edge)] = cap
        streams.append(
            [
                Request(0, frozenset(prefix + str(e) for e in req.ordered_edges), req.cost, tag=f"block{k}")
                for req in sub.requests
            ]
        )

    # Random merge preserving per-stream order: repeatedly pick a stream with
    # probability proportional to how many requests it still has to emit.
    remaining = np.array([len(s) for s in streams], dtype=float)
    cursors = [0] * len(streams)
    merged: List[Request] = []
    rid = 0
    while remaining.sum() > 0:
        probs = remaining / remaining.sum()
        k = int(rng.choice(len(streams), p=probs))
        req = streams[k][cursors[k]]
        cursors[k] += 1
        remaining[k] -= 1
        merged.append(Request(rid, req.edges, req.cost, tag=req.tag))
        rid += 1
    return AdmissionInstance(capacities, RequestSequence(merged), name=name)


def topology_stress_workload(
    topology: str = "grid",
    size: int = 4,
    capacity: int = 3,
    num_requests: int = 240,
    *,
    cost_sampler=None,
    random_state: RandomState = None,
    name: Optional[str] = None,
) -> AdmissionInstance:
    """Shortest-path circuits over a standard topology at overload.

    ``topology`` selects the constructor from :mod:`repro.network.topologies`
    (``"line"``, ``"ring"``, ``"star"``, ``"tree"``, ``"grid"``,
    ``"complete"``); ``size`` is its characteristic dimension (vertices per
    side for the grid, depth for the tree, ...).  Random source/target pairs
    are routed on shortest paths, so central edges congest first — the
    virtual-circuit workload of the paper's introduction on every shape the
    library knows.
    """
    from repro.network.routing import random_source_target
    from repro.network.topologies import (
        binary_tree_graph,
        complete_graph,
        grid_graph,
        line_graph,
        ring_graph,
        star_graph,
    )

    constructors = {
        "line": lambda: line_graph(max(size, 2), capacity=capacity),
        "ring": lambda: ring_graph(max(size, 3), capacity=capacity),
        "star": lambda: star_graph(max(size, 1), capacity=capacity),
        "tree": lambda: binary_tree_graph(max(size, 1), capacity=capacity),
        "grid": lambda: grid_graph(max(size, 1), max(size, 1), capacity=capacity),
        "complete": lambda: complete_graph(max(size, 2), capacity=capacity),
    }
    if topology not in constructors:
        raise ValueError(f"unknown topology {topology!r}; known: {sorted(constructors)}")
    rng = as_generator(random_state)
    graph = constructors[topology]()
    costs = sample_costs(cost_sampler, num_requests, rng)
    requests: List[Request] = []
    for i in range(num_requests):
        source, target = random_source_target(graph, rng)
        path = graph.shortest_path(source, target)
        requests.append(graph.request_from_path(i, path, cost=float(costs[i])))
    return graph.build_instance(
        RequestSequence(requests), name=name or f"topology-stress-{topology}"
    )
