"""Request-cost generators used by the admission-control workloads.

The weighted bounds of the paper depend on the cost *spread* (through the
normalisation ``g <= 2mc``); the generators below produce the regimes the
experiments sweep: unit costs, narrow uniform spreads, heavy-tailed spreads
(which exercise the ``R_big`` / ``R_small`` preprocessing), and bimodal
cheap/expensive mixes.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator

__all__ = [
    "unit_costs",
    "uniform_costs",
    "pareto_costs",
    "lognormal_costs",
    "bimodal_costs",
    "zipf_costs",
    "sample_costs",
]


def unit_costs(count: int, random_state: RandomState = None) -> np.ndarray:
    """All-ones cost vector (the unweighted case)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return np.ones(count, dtype=float)


def uniform_costs(
    count: int, low: float = 1.0, high: float = 10.0, random_state: RandomState = None
) -> np.ndarray:
    """Costs drawn uniformly from ``[low, high]``."""
    if low <= 0 or high < low:
        raise ValueError("require 0 < low <= high")
    rng = as_generator(random_state)
    return rng.uniform(low, high, size=count)


def pareto_costs(
    count: int, shape: float = 1.5, scale: float = 1.0, random_state: RandomState = None
) -> np.ndarray:
    """Heavy-tailed Pareto costs (``scale`` is the minimum cost).

    A small ``shape`` produces occasional very expensive requests, which is
    the regime where protecting expensive requests (and the ``R_big`` class)
    matters most.
    """
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    rng = as_generator(random_state)
    return scale * (1.0 + rng.pareto(shape, size=count))


def lognormal_costs(
    count: int, sigma: float = 1.0, median: float = 5.0, random_state: RandomState = None
) -> np.ndarray:
    """Log-normal costs with the given median and log-scale spread."""
    if sigma < 0 or median <= 0:
        raise ValueError("sigma must be >= 0 and median > 0")
    rng = as_generator(random_state)
    return median * np.exp(rng.normal(0.0, sigma, size=count))


def zipf_costs(
    count: int,
    exponent: float = 1.8,
    scale: float = 1.0,
    cap: float = 1e4,
    support=None,
    random_state: RandomState = None,
) -> np.ndarray:
    """Zipf (zeta) distributed costs — the discrete heavy tail of serving mixes.

    Request "sizes" in serving systems are classically Zipf-distributed; here
    the rejection penalty plays that role.  ``exponent`` close to 1 gives an
    extreme tail; ``cap`` bounds the spread so the paper's normalisation
    ``g <= 2mc`` stays meaningful.

    Two modes:

    * ``support=None`` (default) — the unbounded zeta distribution
      ``P(k) ∝ k**-exponent`` over ``k = 1, 2, ...``, scaled by ``scale`` and
      clipped at ``cap``.  Requires ``exponent > 1`` (the zeta series
      diverges at 1, and NumPy would reject or loop on smaller values).
    * ``support=[c1, c2, ...]`` — a *ranked* Zipf over an explicit set of
      cost levels: level ``j`` (0-based) is drawn with probability
      proportional to ``(j + 1) ** -exponent``.  Requires ``exponent > 0``
      and at least **two** positive levels — a single-level support would
      make every "draw" that one value, a degenerate distribution that
      silently defeats the point of a heavy-tail sweep, so it is rejected
      with a clear error instead.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = as_generator(random_state)
    if support is not None:
        levels = np.asarray(support, dtype=float)
        if levels.ndim != 1 or levels.shape[0] < 2:
            raise ValueError(
                "support must contain at least two cost levels; a single-element "
                "support makes the Zipf draw degenerate (every cost identical)"
            )
        if np.any(levels <= 0) or not np.all(np.isfinite(levels)):
            raise ValueError("support cost levels must be positive finite numbers")
        if exponent <= 0:
            raise ValueError(
                f"exponent (alpha) must be > 0 for a ranked support, got {exponent}"
            )
        weights = np.arange(1, levels.shape[0] + 1, dtype=float) ** (-float(exponent))
        weights /= weights.sum()
        return levels[rng.choice(levels.shape[0], size=count, p=weights)]
    if exponent <= 1.0:
        raise ValueError(
            f"exponent (alpha) must be > 1 for the zeta distribution, got {exponent}"
        )
    if scale <= 0 or cap < scale:
        raise ValueError("require 0 < scale <= cap")
    raw = rng.zipf(exponent, size=count).astype(float)
    return np.minimum(scale * raw, float(cap))


def sample_costs(cost_sampler, count: int, random_state: RandomState = None) -> np.ndarray:
    """Run a cost sampler (default: unit costs) and validate its output.

    The shared entry point of every admission workload generator: coerces to a
    float vector, checks the shape and positivity, so a buggy sampler fails at
    generation time instead of deep inside an algorithm.
    """
    sampler = cost_sampler or unit_costs
    costs = np.asarray(sampler(count, random_state), dtype=float)
    if costs.shape != (count,):
        raise ValueError(f"cost sampler returned shape {costs.shape}, expected ({count},)")
    if np.any(costs <= 0):
        raise ValueError("cost sampler produced non-positive costs")
    return costs


def bimodal_costs(
    count: int,
    cheap: float = 1.0,
    expensive: float = 100.0,
    expensive_fraction: float = 0.1,
    random_state: RandomState = None,
) -> np.ndarray:
    """A cheap/expensive mix (motivates the weighted objective).

    ``expensive_fraction`` of the requests cost ``expensive``, the rest cost
    ``cheap``.
    """
    if cheap <= 0 or expensive <= 0:
        raise ValueError("costs must be positive")
    if not 0.0 <= expensive_fraction <= 1.0:
        raise ValueError("expensive_fraction must be in [0, 1]")
    rng = as_generator(random_state)
    mask = rng.random(count) < expensive_fraction
    return np.where(mask, float(expensive), float(cheap))
