"""Adversarial workloads for online set cover with repetitions.

Online set cover is hard precisely because the adversary can adapt: it keeps
requesting elements the algorithm has not covered (or has covered the least),
forcing it to spread purchases while the optimum buys a few well-chosen sets.
The generators here provide:

* :func:`adaptive_uncovered_adversary` — the adaptive strategy above, played
  against a live algorithm instance (the strongest practical adversary);
* :func:`nested_family_instance` — the nested family ``S_k = {0..k}``
  where OPT is a single set but cautious algorithms buy many;
* :func:`disjoint_blocks_instance` — blocks of elements covered by one cheap
  "block set" and many expensive "singleton sets"; arrivals hit every element
  of a few blocks, so OPT buys only those blocks;
* :func:`repetition_stress_instance` — a single high-degree element requested
  up to its full degree, forcing every algorithm to buy (almost) all of its
  sets; OPT does the same, so the ratio should be close to 1 — a calibration
  workload.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


from repro.core.protocols import OnlineSetCoverAlgorithm
from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "adaptive_uncovered_adversary",
    "nested_family_instance",
    "disjoint_blocks_instance",
    "repetition_stress_instance",
]


def adaptive_uncovered_adversary(
    system: SetSystem,
    algorithm_factory: Callable[[SetSystem], OnlineSetCoverAlgorithm],
    num_arrivals: int,
    *,
    allow_repetitions: bool = True,
    random_state: RandomState = None,
) -> Tuple[SetCoverInstance, OnlineSetCoverAlgorithm]:
    """Play an adaptive adversary against a live algorithm instance.

    At every step the adversary requests the element whose remaining coverage
    slack (coverage minus demand) is smallest — i.e. the element the algorithm
    is currently weakest on — subject to feasibility (an element is never
    requested more times than its degree; without repetitions, at most once).

    Returns the materialised instance (so offline optima can be computed) and
    the algorithm object that actually played it (so its cost can be read off
    directly — the adversary's choices depend on that very run).
    """
    rng = as_generator(random_state)
    algorithm = algorithm_factory(system)
    arrivals: List = []
    demands: Dict = {e: 0 for e in system.elements()}
    for _ in range(num_arrivals):
        candidates = []
        for element in system.elements():
            limit = system.degree(element) if allow_repetitions else 1
            if demands[element] < limit:
                slack = algorithm.coverage(element) - demands[element]
                candidates.append((slack, rng.random(), element))
        if not candidates:
            break
        candidates.sort(key=lambda t: (t[0], t[1]))
        element = candidates[0][2]
        demands[element] += 1
        arrivals.append(element)
        algorithm.process_element(element)
    instance = SetCoverInstance(system, arrivals, name="adaptive-adversary")
    return instance, algorithm


def nested_family_instance(levels: int, *, repetitions: int = 1) -> SetCoverInstance:
    """The nested family ``S_k = {0, ..., k}`` with elements requested bottom-up.

    OPT buys only the largest set (``repetitions`` largest sets if elements are
    requested ``repetitions`` times), while an algorithm that reacts locally to
    each arrival tends to buy many of the nested sets.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if repetitions < 1 or repetitions > 1 + 0:
        # Repetitions beyond 1 are only feasible for elements contained in
        # several sets; element ``k`` is in exactly ``levels - k`` sets.
        pass
    sets = {f"S{k}": set(range(k + 1)) for k in range(levels)}
    system = SetSystem(sets)
    arrivals: List[int] = []
    for element in range(levels):
        reps = min(repetitions, system.degree(element))
        arrivals.extend([element] * reps)
    return SetCoverInstance(system, arrivals, name="nested-family")


def disjoint_blocks_instance(
    num_blocks: int,
    block_size: int,
    *,
    blocks_requested: Optional[int] = None,
    singleton_cost: float = 1.0,
    block_cost: float = 1.0,
    random_state: RandomState = None,
) -> SetCoverInstance:
    """Blocks of elements, each coverable by one block set or many singletons.

    Element ``(b, i)`` belongs to the block set ``B_b`` (cost ``block_cost``)
    and to its own singleton set (cost ``singleton_cost``).  The adversary
    requests every element of ``blocks_requested`` blocks (default: all), so
    OPT pays ``blocks_requested * block_cost``; an algorithm that hedges with
    singletons pays up to ``block_size`` times more.
    """
    if num_blocks < 1 or block_size < 1:
        raise ValueError("num_blocks and block_size must be >= 1")
    rng = as_generator(random_state)
    blocks_requested = blocks_requested if blocks_requested is not None else num_blocks
    blocks_requested = min(blocks_requested, num_blocks)

    sets: Dict[str, List[Tuple[int, int]]] = {}
    costs: Dict[str, float] = {}
    for b in range(num_blocks):
        members = [(b, i) for i in range(block_size)]
        sets[f"B{b}"] = members
        costs[f"B{b}"] = block_cost
        for i in range(block_size):
            sets[f"x{b}_{i}"] = [(b, i)]
            costs[f"x{b}_{i}"] = singleton_cost
    system = SetSystem(sets, costs)

    chosen_blocks = rng.choice(num_blocks, size=blocks_requested, replace=False)
    arrivals: List[Tuple[int, int]] = []
    for b in chosen_blocks:
        for i in range(block_size):
            arrivals.append((int(b), i))
    order = rng.permutation(len(arrivals))
    arrivals = [arrivals[int(k)] for k in order]
    return SetCoverInstance(system, arrivals, name="disjoint-blocks")


def repetition_stress_instance(
    degree: int,
    *,
    extra_elements: int = 4,
    requested_repetitions: Optional[int] = None,
) -> SetCoverInstance:
    """One element contained in ``degree`` sets, requested up to ``degree`` times.

    Every algorithm must buy (almost) all sets containing the hot element, and
    so must OPT — the measured competitive ratio should be near 1, which makes
    this a calibration instance for the repetition machinery.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    requested = requested_repetitions or degree
    requested = min(requested, degree)
    sets: Dict[str, List[int]] = {}
    for k in range(degree):
        members = [0]
        if extra_elements:
            members.append(1 + (k % extra_elements))
        sets[f"S{k}"] = members
    system = SetSystem(sets)
    arrivals = [0] * requested
    return SetCoverInstance(system, arrivals, name="repetition-stress")
