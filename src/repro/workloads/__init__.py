"""Workload generators: random, adversarial and serving-style traffic instances."""

from repro.workloads.admission_adversarial import (
    benefit_objective_trap,
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
    overloaded_edge_adversary,
    repeated_overload_adversary,
)
from repro.workloads.admission_random import (
    hotspot_workload,
    line_interval_workload,
    random_path_workload,
    single_edge_workload,
)
from repro.workloads.admission_traffic import (
    adversarial_mix_workload,
    bursty_workload,
    diurnal_workload,
    flash_crowd_workload,
    topology_stress_workload,
    zipf_cost_workload,
)
from repro.workloads.costs import (
    bimodal_costs,
    lognormal_costs,
    pareto_costs,
    sample_costs,
    uniform_costs,
    unit_costs,
    zipf_costs,
)
from repro.workloads.setcover_adversarial import (
    adaptive_uncovered_adversary,
    disjoint_blocks_instance,
    nested_family_instance,
    repetition_stress_instance,
)
from repro.workloads.setcover_random import (
    random_arrivals,
    random_set_system,
    random_setcover_instance,
    regular_set_system,
    repetition_heavy_arrivals,
)

__all__ = [
    "benefit_objective_trap",
    "cheap_then_expensive_adversary",
    "long_vs_short_adversary",
    "overloaded_edge_adversary",
    "repeated_overload_adversary",
    "hotspot_workload",
    "line_interval_workload",
    "random_path_workload",
    "single_edge_workload",
    "adversarial_mix_workload",
    "bursty_workload",
    "diurnal_workload",
    "flash_crowd_workload",
    "topology_stress_workload",
    "zipf_cost_workload",
    "sample_costs",
    "zipf_costs",
    "bimodal_costs",
    "lognormal_costs",
    "pareto_costs",
    "uniform_costs",
    "unit_costs",
    "adaptive_uncovered_adversary",
    "disjoint_blocks_instance",
    "nested_family_instance",
    "repetition_stress_instance",
    "random_arrivals",
    "random_set_system",
    "random_setcover_instance",
    "regular_set_system",
    "repetition_heavy_arrivals",
]
