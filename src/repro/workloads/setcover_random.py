"""Random set systems and arrival sequences for online set cover with repetitions."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


from repro.instances.setcover import SetCoverInstance, SetSystem
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "random_set_system",
    "regular_set_system",
    "random_arrivals",
    "repetition_heavy_arrivals",
    "random_setcover_instance",
]


def random_set_system(
    num_elements: int,
    num_sets: int,
    membership_probability: float = 0.3,
    *,
    costs: Optional[Sequence[float]] = None,
    random_state: RandomState = None,
) -> SetSystem:
    """A Bernoulli random set system: element ``j`` is in set ``S`` w.p. ``p``.

    Every element is guaranteed to belong to at least one set (a random one is
    added if the Bernoulli draws left it uncovered), and every set is
    guaranteed non-empty, so the system is always a valid instance.
    """
    if num_elements < 1 or num_sets < 1:
        raise ValueError("num_elements and num_sets must be >= 1")
    if not 0.0 <= membership_probability <= 1.0:
        raise ValueError("membership_probability must be in [0, 1]")
    rng = as_generator(random_state)
    membership = rng.random((num_sets, num_elements)) < membership_probability
    # Guarantee non-empty sets and covered elements.
    for s in range(num_sets):
        if not membership[s].any():
            membership[s, int(rng.integers(0, num_elements))] = True
    for j in range(num_elements):
        if not membership[:, j].any():
            membership[int(rng.integers(0, num_sets)), j] = True
    sets: Dict[str, List[int]] = {
        f"S{s}": [j for j in range(num_elements) if membership[s, j]] for s in range(num_sets)
    }
    cost_map = None
    if costs is not None:
        if len(costs) != num_sets:
            raise ValueError("costs must have one entry per set")
        cost_map = {f"S{s}": float(costs[s]) for s in range(num_sets)}
    return SetSystem(sets, cost_map)


def regular_set_system(
    num_elements: int,
    num_sets: int,
    element_degree: int,
    *,
    random_state: RandomState = None,
) -> SetSystem:
    """A set system where every element belongs to exactly ``element_degree`` sets.

    Useful for repetition-heavy workloads: the maximum feasible demand of every
    element is exactly ``element_degree``.
    """
    if element_degree < 1 or element_degree > num_sets:
        raise ValueError("need 1 <= element_degree <= num_sets")
    rng = as_generator(random_state)
    sets: Dict[str, List[int]] = {f"S{s}": [] for s in range(num_sets)}
    for j in range(num_elements):
        owners = rng.choice(num_sets, size=element_degree, replace=False)
        for s in owners:
            sets[f"S{int(s)}"].append(j)
    # Drop empty sets (can happen when num_elements * degree < num_sets).
    sets = {sid: members for sid, members in sets.items() if members}
    return SetSystem(sets)


def random_arrivals(
    system: SetSystem,
    num_arrivals: int,
    *,
    max_repetitions: Optional[int] = None,
    random_state: RandomState = None,
) -> List:
    """Uniform random arrivals, truncated so no element exceeds its feasible demand.

    ``max_repetitions`` further caps the number of times any element arrives
    (defaults to its degree, the feasibility limit).
    """
    rng = as_generator(random_state)
    elements = list(system.elements())
    counts: Dict = {e: 0 for e in elements}
    arrivals: List = []
    attempts = 0
    while len(arrivals) < num_arrivals and attempts < 50 * num_arrivals:
        attempts += 1
        element = elements[int(rng.integers(0, len(elements)))]
        limit = system.degree(element)
        if max_repetitions is not None:
            limit = min(limit, max_repetitions)
        if counts[element] >= limit:
            continue
        counts[element] += 1
        arrivals.append(element)
    return arrivals


def repetition_heavy_arrivals(
    system: SetSystem,
    repetition_fraction: float = 0.8,
    *,
    random_state: RandomState = None,
) -> List:
    """Arrivals that repeatedly request a few high-degree elements.

    A ``repetition_fraction`` share of the high-degree elements is requested up
    to its full degree (interleaved), the remaining elements once each —
    the regime where "with repetitions" differs most from plain online set
    cover.
    """
    if not 0.0 < repetition_fraction <= 1.0:
        raise ValueError("repetition_fraction must be in (0, 1]")
    rng = as_generator(random_state)
    elements = sorted(system.elements(), key=lambda e: -system.degree(e))
    num_heavy = max(1, int(round(repetition_fraction * len(elements) * 0.25)))
    heavy = elements[:num_heavy]
    light = elements[num_heavy:]

    arrivals: List = []
    for element in light:
        arrivals.append(element)
    pending = {e: system.degree(e) for e in heavy}
    while pending:
        element = list(pending)[int(rng.integers(0, len(pending)))]
        arrivals.append(element)
        pending[element] -= 1
        if pending[element] <= 0:
            del pending[element]
    order = rng.permutation(len(arrivals))
    return [arrivals[int(k)] for k in order]


def random_setcover_instance(
    num_elements: int,
    num_sets: int,
    num_arrivals: int,
    *,
    membership_probability: float = 0.3,
    max_repetitions: Optional[int] = None,
    costs: Optional[Sequence[float]] = None,
    random_state: RandomState = None,
    name: str = "random-setcover",
) -> SetCoverInstance:
    """Convenience: a random set system plus random arrivals in one call."""
    rng = as_generator(random_state)
    system = random_set_system(
        num_elements, num_sets, membership_probability, costs=costs, random_state=rng
    )
    arrivals = random_arrivals(
        system, num_arrivals, max_repetitions=max_repetitions, random_state=rng
    )
    return SetCoverInstance(system, arrivals, name=name)
