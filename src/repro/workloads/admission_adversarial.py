"""Adversarial admission-control workloads.

Random workloads rarely separate a polylog-competitive algorithm from a naive
baseline; the constructions below are designed to:

* :func:`overloaded_edge_adversary` — flood a hidden subset of edges so that a
  large number of rejections is unavoidable, while leaving plenty of harmless
  requests around to tempt naive algorithms into the wrong rejections;
* :func:`cheap_then_expensive_adversary` — the classic weighted trap: cheap
  requests claim an edge first, then expensive requests need the same edge.
  OPT rejects the cheap ones; a non-preemptive algorithm is stuck paying for
  the expensive ones;
* :func:`long_vs_short_adversary` — a long path request followed by many
  single-edge requests on its edges; OPT rejects only the long one.  This is
  the structure behind the ``Omega(sqrt m)`` style lower bounds for too-simple
  deterministic rules;
* :func:`benefit_objective_trap` — the Section-1 motivation: an instance where
  a throughput-maximising algorithm can end up rejecting almost everything
  while an algorithm that targets rejections rejects only a handful;
* :func:`repeated_overload_adversary` — waves of overload on the same edge,
  exercising preemption decisions over time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.instances.admission import AdmissionInstance
from repro.instances.request import Request, RequestSequence
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "overloaded_edge_adversary",
    "cheap_then_expensive_adversary",
    "long_vs_short_adversary",
    "benefit_objective_trap",
    "repeated_overload_adversary",
]


def overloaded_edge_adversary(
    num_edges: int,
    capacity: int,
    *,
    num_hot_edges: int = 2,
    overload_factor: float = 3.0,
    decoys_per_hot: int = 4,
    random_state: RandomState = None,
    name: str = "overloaded-edges",
) -> AdmissionInstance:
    """Flood a hidden subset of edges beyond capacity, surrounded by decoys.

    ``num_hot_edges`` edges receive ``ceil(overload_factor * capacity)``
    single-edge requests each (so OPT must reject
    ``(overload_factor - 1) * capacity`` per hot edge), interleaved with
    two-edge decoy requests that pair a hot edge with a cold one — rejecting a
    decoy also relieves the hot edge, but OPT never needs to reject any
    cold-only request.
    """
    if num_hot_edges < 1 or num_hot_edges > num_edges:
        raise ValueError("need 1 <= num_hot_edges <= num_edges")
    rng = as_generator(random_state)
    capacities = {f"e{k}": capacity for k in range(num_edges)}
    hot = [f"e{k}" for k in range(num_hot_edges)]
    cold = [f"e{k}" for k in range(num_hot_edges, num_edges)] or hot

    requests: List[Request] = []
    rid = 0
    per_hot = int(np.ceil(overload_factor * capacity))
    for hot_edge in hot:
        for _ in range(per_hot):
            requests.append(Request(rid, frozenset({hot_edge}), 1.0))
            rid += 1
        for _ in range(decoys_per_hot):
            cold_edge = cold[int(rng.integers(0, len(cold)))]
            edges = {hot_edge, cold_edge} if cold_edge != hot_edge else {hot_edge}
            requests.append(Request(rid, frozenset(edges), 1.0))
            rid += 1
    order = rng.permutation(len(requests))
    reordered = [
        Request(i, requests[int(k)].edges, requests[int(k)].cost) for i, k in enumerate(order)
    ]
    return AdmissionInstance(capacities, RequestSequence(reordered), name=name)


def cheap_then_expensive_adversary(
    num_edges: int,
    capacity: int,
    *,
    expensive_cost: float = 50.0,
    expensive_per_edge: Optional[int] = None,
    name: str = "cheap-then-expensive",
) -> AdmissionInstance:
    """Cheap requests occupy each edge first, then expensive ones want it.

    Per edge: ``capacity`` cheap (cost 1) requests arrive first and fill it,
    then ``expensive_per_edge`` (default ``capacity``) requests of cost
    ``expensive_cost`` arrive on the same edge.  OPT rejects the cheap
    requests (cost ``capacity`` per edge); a non-preemptive algorithm must
    reject the expensive ones (cost ``capacity * expensive_cost`` per edge),
    a gap of ``expensive_cost``.
    """
    if capacity < 1 or num_edges < 1:
        raise ValueError("capacity and num_edges must be >= 1")
    expensive_per_edge = expensive_per_edge or capacity
    capacities = {f"e{k}": capacity for k in range(num_edges)}
    requests: List[Request] = []
    rid = 0
    for k in range(num_edges):
        edge = f"e{k}"
        for _ in range(capacity):
            requests.append(Request(rid, frozenset({edge}), 1.0))
            rid += 1
        for _ in range(expensive_per_edge):
            requests.append(Request(rid, frozenset({edge}), float(expensive_cost)))
            rid += 1
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def long_vs_short_adversary(
    num_edges: int,
    capacity: int = 1,
    *,
    shorts_per_edge: int = 1,
    name: str = "long-vs-short",
) -> AdmissionInstance:
    """One request spanning every edge, then short requests on each edge.

    The long request arrives first and occupies all ``num_edges`` edges; then
    ``shorts_per_edge * capacity`` single-edge requests arrive per edge.  OPT
    rejects only the long request (cost 1); any algorithm that refuses to
    preempt it must reject up to ``num_edges`` short requests.
    """
    if num_edges < 1 or capacity < 1:
        raise ValueError("num_edges and capacity must be >= 1")
    capacities = {f"e{k}": capacity for k in range(num_edges)}
    all_edges = frozenset(capacities)
    requests: List[Request] = [Request(0, all_edges, 1.0)]
    rid = 1
    for k in range(num_edges):
        for _ in range(shorts_per_edge * capacity):
            requests.append(Request(rid, frozenset({f"e{k}"}), 1.0))
            rid += 1
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def benefit_objective_trap(
    num_groups: int,
    group_size: int,
    capacity: int = 1,
    *,
    name: str = "benefit-trap",
) -> AdmissionInstance:
    """The Section-1 motivation: maximizing acceptances is not minimizing rejections.

    Each of the ``num_groups`` groups has a private edge of capacity
    ``capacity`` and receives ``group_size`` single-edge requests plus one
    "anchor" request that also touches a shared edge.  A throughput-maximising
    policy happily sacrifices whole groups to keep the shared edge free; the
    rejection-minimising optimum rejects exactly the per-group excess
    (``group_size + 1 - capacity`` per group at most) and never more.
    """
    if num_groups < 1 or group_size < 1:
        raise ValueError("num_groups and group_size must be >= 1")
    capacities = {"shared": max(1, num_groups // 2)}
    for k in range(num_groups):
        capacities[f"g{k}"] = capacity
    requests: List[Request] = []
    rid = 0
    for k in range(num_groups):
        requests.append(Request(rid, frozenset({f"g{k}", "shared"}), 1.0))
        rid += 1
        for _ in range(group_size):
            requests.append(Request(rid, frozenset({f"g{k}"}), 1.0))
            rid += 1
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)


def repeated_overload_adversary(
    capacity: int,
    num_waves: int,
    wave_size: Optional[int] = None,
    *,
    num_side_edges: int = 4,
    random_state: RandomState = None,
    name: str = "repeated-overload",
) -> AdmissionInstance:
    """Waves of overload on a single bottleneck edge, with side traffic.

    Every wave sends ``wave_size`` (default ``2 * capacity``) requests through
    the bottleneck, each also touching a random side edge.  OPT rejects
    ``wave_size * num_waves - capacity`` requests in total; online algorithms
    must keep deciding which standing requests to preempt as new waves arrive.
    """
    if capacity < 1 or num_waves < 1:
        raise ValueError("capacity and num_waves must be >= 1")
    rng = as_generator(random_state)
    wave_size = wave_size or 2 * capacity
    capacities = {"bottleneck": capacity}
    for k in range(num_side_edges):
        capacities[f"side{k}"] = capacity * num_waves * wave_size  # effectively uncapacitated
    requests: List[Request] = []
    rid = 0
    for _ in range(num_waves):
        for _ in range(wave_size):
            side = f"side{int(rng.integers(0, num_side_edges))}"
            requests.append(Request(rid, frozenset({"bottleneck", side}), 1.0))
            rid += 1
    return AdmissionInstance(capacities, RequestSequence(requests), name=name)
