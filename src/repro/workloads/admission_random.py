"""Random admission-control workloads on network topologies.

These generators turn a :class:`~repro.network.graph.CapacitatedGraph` (or a
bare edge set) into an :class:`~repro.instances.admission.AdmissionInstance`
by sampling requests:

* :func:`random_path_workload` — random source/target pairs routed on the
  graph (shortest or random simple path), the "virtual circuit" workload the
  paper's introduction describes;
* :func:`single_edge_workload` — requests touching single random edges
  (the workload the set-cover reduction produces in phase 2, and the purest
  stress test of the per-edge mechanism);
* :func:`hotspot_workload` — a fraction of requests funnelled through a small
  set of hotspot edges so rejections become unavoidable;
* :func:`line_interval_workload` — interval requests on a line network (the
  classical call-control workload).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.instances.admission import AdmissionInstance
from repro.instances.request import Request, RequestSequence
from repro.network.graph import CapacitatedGraph
from repro.network.routing import random_simple_path, random_source_target
from repro.network.topologies import line_graph
from repro.utils.rng import RandomState, as_generator
from repro.workloads.costs import sample_costs

CostSampler = Callable[[int, RandomState], np.ndarray]

__all__ = [
    "random_path_workload",
    "single_edge_workload",
    "hotspot_workload",
    "line_interval_workload",
]

def _costs(cost_sampler: Optional[CostSampler], count: int, rng) -> np.ndarray:
    """Module-local spelling; the validation lives in :func:`costs.sample_costs`."""
    return sample_costs(cost_sampler, count, rng)


def random_path_workload(
    graph: CapacitatedGraph,
    num_requests: int,
    *,
    cost_sampler: Optional[CostSampler] = None,
    shortest_paths: bool = True,
    random_state: RandomState = None,
    name: str = "random-paths",
) -> AdmissionInstance:
    """Random source/target requests routed on the graph.

    Parameters
    ----------
    graph:
        The capacitated network.
    num_requests:
        Number of requests to generate.
    cost_sampler:
        Callable ``(count, rng) -> costs``; defaults to unit costs.
    shortest_paths:
        Route along shortest paths (True) or random simple paths (False).
    """
    rng = as_generator(random_state)
    costs = _costs(cost_sampler, num_requests, rng)
    requests = []
    for i in range(num_requests):
        source, target = random_source_target(graph, rng)
        if shortest_paths:
            path = graph.shortest_path(source, target)
        else:
            path = random_simple_path(graph, source, target, rng)
        requests.append(graph.request_from_path(i, path, cost=float(costs[i])))
    return graph.build_instance(RequestSequence(requests), name=name)


def single_edge_workload(
    num_edges: int,
    num_requests: int,
    capacity: int = 1,
    *,
    concentration: float = 1.0,
    cost_sampler: Optional[CostSampler] = None,
    random_state: RandomState = None,
    name: str = "single-edge",
) -> AdmissionInstance:
    """Requests each occupying one edge, drawn from a (possibly skewed) distribution.

    ``concentration`` is the Zipf-like skew of the edge choice: 0 gives a
    uniform distribution over edges, larger values concentrate the load on the
    first few edges and force rejections there.
    """
    if num_edges < 1 or num_requests < 0:
        raise ValueError("num_edges must be >= 1 and num_requests >= 0")
    rng = as_generator(random_state)
    capacities = {f"e{k}": capacity for k in range(num_edges)}
    weights = np.arange(1, num_edges + 1, dtype=float) ** (-float(concentration))
    weights /= weights.sum()
    choices = rng.choice(num_edges, size=num_requests, p=weights)
    costs = _costs(cost_sampler, num_requests, rng)
    requests = RequestSequence(
        Request(i, frozenset({f"e{int(choices[i])}"}), float(costs[i])) for i in range(num_requests)
    )
    return AdmissionInstance(capacities, requests, name=name)


def hotspot_workload(
    graph: CapacitatedGraph,
    num_requests: int,
    *,
    num_hotspots: int = 2,
    hotspot_fraction: float = 0.7,
    cost_sampler: Optional[CostSampler] = None,
    random_state: RandomState = None,
    name: str = "hotspot",
) -> AdmissionInstance:
    """Random paths with a fraction of requests forced through hotspot edges.

    ``hotspot_fraction`` of the requests additionally occupy one of
    ``num_hotspots`` randomly chosen edges, creating localised congestion that
    the optimum resolves by rejecting only the cheapest conflicting requests.
    """
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    rng = as_generator(random_state)
    edge_ids = graph.edge_ids()
    num_hotspots = min(max(num_hotspots, 1), len(edge_ids))
    hotspot_indices = rng.choice(len(edge_ids), size=num_hotspots, replace=False)
    hotspots = [edge_ids[int(k)] for k in hotspot_indices]

    costs = _costs(cost_sampler, num_requests, rng)
    requests = []
    for i in range(num_requests):
        source, target = random_source_target(graph, rng)
        path = graph.shortest_path(source, target)
        edges = set(graph.path_edges(path))
        if rng.random() < hotspot_fraction:
            edges.add(hotspots[int(rng.integers(0, len(hotspots)))])
        requests.append(Request(i, frozenset(edges), float(costs[i])))
    return graph.build_instance(RequestSequence(requests), name=name)


def line_interval_workload(
    num_vertices: int,
    num_requests: int,
    capacity: int = 1,
    *,
    max_length: Optional[int] = None,
    cost_sampler: Optional[CostSampler] = None,
    random_state: RandomState = None,
    name: str = "line-intervals",
) -> AdmissionInstance:
    """Interval requests on a directed line (the classical call-control workload).

    Each request occupies a contiguous interval ``[a, b)`` of the line's edges,
    with ``a`` uniform and the length geometric-ish (uniform up to
    ``max_length``).
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = as_generator(random_state)
    graph = line_graph(num_vertices, capacity=capacity)
    max_length = max_length or (num_vertices - 1)
    costs = _costs(cost_sampler, num_requests, rng)
    requests = []
    for i in range(num_requests):
        start = int(rng.integers(0, num_vertices - 1))
        length = int(rng.integers(1, max_length + 1))
        end = min(start + length, num_vertices - 1)
        path = list(range(start, end + 1))
        requests.append(graph.request_from_path(i, path, cost=float(costs[i])))
    return graph.build_instance(RequestSequence(requests), name=name)
