"""Summary statistics for multi-seed trials."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread summary of a sample of measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    ci95_low: float
    ci95_high: float

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.3f} ±{(self.ci95_high - self.ci95_low) / 2:.3f} "
            f"(min={self.minimum:.3f}, median={self.median:.3f}, max={self.maximum:.3f}, n={self.count})"
        )


def summarize(values: Sequence[float] | Iterable[float]) -> SummaryStats:
    """Summarise a sample: mean, std, min/median/max and a normal-approx 95% CI.

    Infinite values (e.g. ratios against a zero optimum) are dropped before
    summarising; an empty (or all-infinite) sample yields NaNs.
    """
    data = np.asarray([v for v in values if math.isfinite(v)], dtype=float)
    if data.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan)
    mean = float(np.mean(data))
    std = float(np.std(data, ddof=1)) if data.size > 1 else 0.0
    half_width = 1.96 * std / math.sqrt(data.size) if data.size > 1 else 0.0
    return SummaryStats(
        count=int(data.size),
        mean=mean,
        std=std,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        median=float(np.median(data)),
        ci95_low=mean - half_width,
        ci95_high=mean + half_width,
    )
