"""Minimal ASCII plotting for experiment reports (no matplotlib dependency).

The paper has no figures; the scaling experiments still want to *show* how the
measured competitive ratio grows with the instance parameters next to the
polylog bound, and a terminal-friendly scatter/line rendering is enough for
EXPERIMENTS.md and benchmark output.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["ascii_line_plot", "ascii_series_table"]


def ascii_line_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII scatter plot.

    Each series gets its own marker character; axes are linear and labelled
    with their min/max values.
    """
    markers = "*o+x#@%&"
    points: List[Tuple[float, float, str]] = []
    for index, (name, data) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in data:
            if math.isfinite(x) and math.isfinite(y):
                points.append((float(x), float(y), marker))
    if not points:
        return (title or "") + "\n(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y, marker in points:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series.keys())
    )
    lines.append(legend)
    lines.append(f"{y_label}: [{y_min:.3g}, {y_max:.3g}]   {x_label}: [{x_min:.3g}, {x_max:.3g}]")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def ascii_series_table(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    x_name: str = "x",
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render aligned columns ``x, series1, series2, ...`` (the "figure as a table")."""
    names = list(series.keys())
    header = [x_name] + names
    rows: List[List[str]] = []
    for i, x in enumerate(x_values):
        row = [format(float(x), "g")]
        for name in names:
            values = series[name]
            row.append(format(float(values[i]), float_format) if i < len(values) else "")
        rows.append(row)
    widths = [max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c]) for c in range(len(header))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[c].ljust(widths[c]) for c in range(len(header))))
    lines.append("  ".join("-" * widths[c] for c in range(len(header))))
    for r in rows:
        lines.append("  ".join(r[c].ljust(widths[c]) for c in range(len(header))))
    return "\n".join(lines)
