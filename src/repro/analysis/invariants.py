"""Invariant checkers turning the paper's proofs into runtime assertions.

The experiments (and the property-based tests) do not just measure costs; they
verify that the structural claims made inside the proofs actually hold on every
run:

* admission control — the online accepted set is always feasible, the
  fractional covering constraints hold, weights are monotone and bounded, the
  number of augmentations respects Lemma 1;
* bicriteria set cover — the coverage target ``(1 - eps) k`` holds after every
  arrival, the potential never exceeds ``n^2``, no augmentation increases it,
  at most ``2 ln n`` sets are added per augmentation (Lemma 6), and the number
  of augmentations respects Lemma 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.bicriteria import BicriteriaOnlineSetCover
from repro.core.bounds import lemma1_augmentation_bound, lemma5_augmentation_bound
from repro.core.fractional import FractionalAdmissionControl
from repro.core.protocols import AdmissionResult
from repro.instances.admission import AdmissionInstance

__all__ = ["InvariantReport", "check_admission_result", "check_fractional_state", "check_bicriteria_state"]


@dataclass
class InvariantReport:
    """A list of violations (empty = all invariants hold)."""

    violations: List[str] = field(default_factory=list)

    def add(self, message: str) -> None:
        """Record one violation."""
        self.violations.append(message)

    @property
    def ok(self) -> bool:
        """True when no violation was recorded."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return "all invariants hold"
        return "; ".join(self.violations)


def check_admission_result(instance: AdmissionInstance, result: AdmissionResult) -> InvariantReport:
    """Check the structural invariants of a finished admission run."""
    report = InvariantReport()
    feasibility = instance.check_feasible(result.accepted_ids)
    if not feasibility.feasible:
        report.add(f"accepted set violates capacities: {feasibility.violations[:3]}")
    overlap = result.accepted_ids & (result.rejected_ids | result.preempted_ids)
    if overlap:
        report.add(f"requests both accepted and rejected: {sorted(overlap)[:5]}")
    all_ids = result.accepted_ids | result.rejected_ids | result.preempted_ids
    expected = frozenset(instance.requests.ids())
    if all_ids != expected:
        report.add(
            f"decision partition mismatch: {len(all_ids)} decided vs {len(expected)} requests"
        )
    recomputed = instance.rejection_cost(result.rejected_ids | result.preempted_ids)
    if abs(recomputed - result.rejection_cost) > 1e-6 * max(1.0, recomputed):
        report.add(
            f"reported rejection cost {result.rejection_cost} != recomputed {recomputed}"
        )
    return report


def check_fractional_state(
    algorithm: FractionalAdmissionControl,
    *,
    optimal_cost: Optional[float] = None,
) -> InvariantReport:
    """Check the weight-mechanism invariants and (optionally) Lemma 1's bound."""
    report = InvariantReport()
    for problem in algorithm.check_invariants():
        report.add(problem)
    if optimal_cost is not None and optimal_cost > 0:
        bound = lemma1_augmentation_bound(optimal_cost, algorithm.g, algorithm.c)
        if algorithm.num_augmentations > bound + 1e-9:
            report.add(
                f"Lemma 1 violated: {algorithm.num_augmentations} augmentations "
                f"> bound {bound:.2f} (alpha={optimal_cost}, g={algorithm.g}, c={algorithm.c})"
            )
    return report


def check_bicriteria_state(
    algorithm: BicriteriaOnlineSetCover,
    *,
    optimal_cost: Optional[float] = None,
) -> InvariantReport:
    """Check Lemma 5/6 invariants on a finished bicriteria run."""
    report = InvariantReport()
    if not algorithm.bicriteria_satisfied():
        report.add("bicriteria coverage target (1-eps)k violated for some element")
    n2 = max(algorithm.n, 2) ** 2
    if algorithm.max_potential_seen > n2 + 1e-6 * n2:
        report.add(
            f"potential exceeded n^2: {algorithm.max_potential_seen:.3f} > {n2:.3f}"
        )
    for trace in algorithm.traces:
        if trace.potential_after > trace.potential_before * (1 + 1e-9) + 1e-9:
            report.add(
                f"augmentation on element {trace.element!r} increased the potential "
                f"({trace.potential_before:.4f} -> {trace.potential_after:.4f})"
            )
            break
        if len(trace.sets_from_selection) > algorithm.selection_rounds:
            report.add(
                f"augmentation added {len(trace.sets_from_selection)} sets in step 2c "
                f"> 2 ln n = {algorithm.selection_rounds}"
            )
            break
    if optimal_cost is not None and optimal_cost > 0:
        bound = lemma5_augmentation_bound(optimal_cost, algorithm.m, algorithm.eps)
        if algorithm.num_augmentations > bound + 1e-9:
            report.add(
                f"Lemma 5 violated: {algorithm.num_augmentations} augmentations "
                f"> bound {bound:.2f} (alpha={optimal_cost}, m={algorithm.m}, eps={algorithm.eps})"
            )
    return report
