"""Plain-text tables and report formatting for experiments and benchmarks.

The benchmark harness prints the same rows EXPERIMENTS.md records, so the
format lives in one place.  No third-party table library is used: the output
has to be readable inside pytest-benchmark captures and CI logs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_records", "format_kv"]


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Parameters
    ----------
    rows:
        The data; each row is a mapping from column name to value.
    columns:
        Column order (defaults to the keys of the first row).
    float_format:
        ``format()`` spec applied to float cells.
    title:
        Optional title printed above the table.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        # Union of keys across rows, in order of first appearance, so rows with
        # heterogeneous columns (e.g. E7's two check families) all show up.
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = [str(c) for c in columns]
    body = [[_format_cell(row.get(c, ""), float_format) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(columns))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for r in body:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_records(records: Iterable, *, title: Optional[str] = None, float_format: str = ".3f") -> str:
    """Render ``CompetitiveRecord`` / ``TrialSummary`` objects via their ``row()`` method."""
    rows = [record.row() for record in records]
    return format_table(rows, title=title, float_format=float_format)


def format_kv(data: Mapping[str, Any], *, title: Optional[str] = None, float_format: str = ".4f") -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not data:
        lines.append("(empty)")
        return "\n".join(lines)
    width = max(len(str(k)) for k in data)
    for key, value in data.items():
        lines.append(f"{str(key).ljust(width)} : {_format_cell(value, float_format)}")
    return "\n".join(lines)
