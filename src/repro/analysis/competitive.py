"""Competitive-ratio measurement for single runs.

Ties together an online run, the offline comparator, and the relevant
theoretical bound into one record (:class:`CompetitiveRecord`) that the trial
runner and the experiments aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.bounds import BoundReport, bound_for_admission_instance, bound_for_setcover_instance
from repro.core.protocols import (
    AdmissionResult,
    OnlineAdmissionAlgorithm,
    OnlineSetCoverAlgorithm,
    SetCoverResult,
    run_admission,
    run_setcover,
)
from repro.instances.admission import AdmissionInstance
from repro.instances.setcover import SetCoverInstance
from repro.offline import (
    solve_admission_ilp,
    solve_admission_lp,
    solve_set_multicover_ilp,
    solve_set_multicover_lp,
)
from repro.utils.mathx import safe_ratio

__all__ = [
    "CompetitiveRecord",
    "evaluate_admission_run",
    "evaluate_admission_algorithm",
    "evaluate_setcover_run",
    "evaluate_setcover_algorithm",
]


@dataclass
class CompetitiveRecord:
    """One (algorithm, instance) evaluation.

    Attributes
    ----------
    algorithm:
        Display name of the online algorithm.
    instance_name:
        Display name of the instance.
    online_cost:
        Objective value achieved by the online algorithm.
    offline_cost:
        Offline comparator value (exact OPT, or a lower bound — see
        ``offline_kind``).
    offline_kind:
        ``"ilp"`` (exact), ``"lp"`` (fractional lower bound) or custom.
    ratio:
        ``online_cost / offline_cost`` with the 0/0 := 1 convention.
    bound:
        The paper's bound expression evaluated on the instance parameters.
    normalized_ratio:
        ``ratio / bound.value`` — the empirical "hidden constant"; should stay
        bounded as instances grow if the implementation matches the theory.
    feasible:
        Whether the online solution was feasible (admission) / satisfied
        demands (set cover).
    extra:
        Diagnostics carried over from the online result.
    """

    algorithm: str
    instance_name: str
    online_cost: float
    offline_cost: float
    offline_kind: str
    ratio: float
    bound: Optional[BoundReport] = None
    normalized_ratio: Optional[float] = None
    feasible: bool = True
    extra: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        """Flat dict for tables."""
        return {
            "algorithm": self.algorithm,
            "instance": self.instance_name,
            "online": self.online_cost,
            "offline": self.offline_cost,
            "offline_kind": self.offline_kind,
            "ratio": self.ratio,
            "bound": self.bound.value if self.bound else float("nan"),
            "ratio/bound": self.normalized_ratio if self.normalized_ratio is not None else float("nan"),
            "feasible": self.feasible,
        }


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def evaluate_admission_run(
    instance: AdmissionInstance,
    result: AdmissionResult,
    *,
    offline: str = "ilp",
    randomized_bound: bool = True,
    ilp_time_limit: Optional[float] = 30.0,
) -> CompetitiveRecord:
    """Compare a finished admission run against the offline optimum.

    ``offline`` selects the comparator: ``"ilp"`` (exact integral OPT, with a
    time limit), ``"lp"`` (fractional OPT — the right comparator for the
    fractional algorithm and a valid lower bound otherwise).
    """
    if offline == "ilp":
        opt = solve_admission_ilp(instance, time_limit=ilp_time_limit)
        offline_cost, offline_kind = opt.cost, f"ilp:{opt.status}"
    elif offline == "lp":
        opt_lp = solve_admission_lp(instance)
        offline_cost, offline_kind = opt_lp.cost, f"lp:{opt_lp.status}"
    else:
        raise ValueError(f"unknown offline comparator {offline!r}")

    ratio = safe_ratio(result.rejection_cost, offline_cost)
    bound = bound_for_admission_instance(instance, randomized=randomized_bound)
    return CompetitiveRecord(
        algorithm=result.algorithm,
        instance_name=instance.name,
        online_cost=result.rejection_cost,
        offline_cost=offline_cost,
        offline_kind=offline_kind,
        ratio=ratio,
        bound=bound,
        normalized_ratio=bound.normalized(ratio),
        feasible=result.feasible,
        extra=dict(result.extra),
    )


def evaluate_admission_algorithm(
    instance: AdmissionInstance,
    algorithm_factory: Callable[[AdmissionInstance], OnlineAdmissionAlgorithm],
    **kwargs,
) -> CompetitiveRecord:
    """Run ``algorithm_factory(instance)`` on the instance and evaluate it."""
    algorithm = algorithm_factory(instance)
    result = run_admission(algorithm, instance)
    return evaluate_admission_run(instance, result, **kwargs)


# ---------------------------------------------------------------------------
# Set cover with repetitions
# ---------------------------------------------------------------------------


def evaluate_setcover_run(
    instance: SetCoverInstance,
    result: SetCoverResult,
    *,
    offline: str = "ilp",
    bicriteria_bound: bool = False,
    ilp_time_limit: Optional[float] = 30.0,
) -> CompetitiveRecord:
    """Compare a finished set-cover run against the offline multi-cover optimum."""
    demands = instance.demands()
    if offline == "ilp":
        opt = solve_set_multicover_ilp(instance.system, demands, time_limit=ilp_time_limit)
        offline_cost, offline_kind = opt.cost, f"ilp:{opt.status}"
    elif offline == "lp":
        opt_lp = solve_set_multicover_lp(instance.system, demands)
        offline_cost, offline_kind = opt_lp.cost, f"lp:{opt_lp.status}"
    else:
        raise ValueError(f"unknown offline comparator {offline!r}")

    ratio = safe_ratio(result.cost, offline_cost)
    bound = bound_for_setcover_instance(instance, bicriteria=bicriteria_bound)
    feasible = result.satisfied or bool(result.extra.get("bicriteria_satisfied", False))
    return CompetitiveRecord(
        algorithm=result.algorithm,
        instance_name=instance.name,
        online_cost=result.cost,
        offline_cost=offline_cost,
        offline_kind=offline_kind,
        ratio=ratio,
        bound=bound,
        normalized_ratio=bound.normalized(ratio),
        feasible=feasible,
        extra=dict(result.extra),
    )


def evaluate_setcover_algorithm(
    instance: SetCoverInstance,
    algorithm_factory: Callable[[SetCoverInstance], OnlineSetCoverAlgorithm],
    **kwargs,
) -> CompetitiveRecord:
    """Run ``algorithm_factory(instance)`` on the instance and evaluate it."""
    algorithm = algorithm_factory(instance)
    result = run_setcover(algorithm, instance)
    return evaluate_setcover_run(instance, result, **kwargs)
