"""Multi-seed trial runner.

Randomized algorithms (and randomized workloads) need several independent runs
before a competitive ratio means anything.  :func:`run_admission_trials` /
:func:`run_setcover_trials` run ``(workload seed, algorithm seed)`` pairs and
aggregate the resulting :class:`~repro.analysis.competitive.CompetitiveRecord`
objects into a :class:`TrialSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.competitive import (
    CompetitiveRecord,
    evaluate_admission_run,
    evaluate_setcover_run,
)
from repro.analysis.stats import SummaryStats, summarize
from repro.core.protocols import run_admission, run_setcover
from repro.instances.admission import AdmissionInstance
from repro.instances.setcover import SetCoverInstance
from repro.utils.rng import spawn_generators

__all__ = ["TrialSummary", "run_admission_trials", "run_setcover_trials"]


@dataclass
class TrialSummary:
    """Aggregate of several :class:`CompetitiveRecord` objects for one configuration."""

    label: str
    records: List[CompetitiveRecord] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        """Number of runs aggregated."""
        return len(self.records)

    def ratios(self) -> List[float]:
        """Measured competitive ratios, one per trial."""
        return [r.ratio for r in self.records]

    def ratio_stats(self) -> SummaryStats:
        """Summary statistics of the measured ratios."""
        return summarize(self.ratios())

    def normalized_stats(self) -> SummaryStats:
        """Summary statistics of ratio / theoretical bound."""
        return summarize(r.normalized_ratio for r in self.records if r.normalized_ratio is not None)

    def online_cost_stats(self) -> SummaryStats:
        """Summary statistics of the online costs."""
        return summarize(r.online_cost for r in self.records)

    def offline_cost_stats(self) -> SummaryStats:
        """Summary statistics of the offline comparator costs."""
        return summarize(r.offline_cost for r in self.records)

    def all_feasible(self) -> bool:
        """True if every trial produced a feasible online solution."""
        return all(r.feasible for r in self.records)

    def max_ratio(self) -> float:
        """Worst measured ratio across trials."""
        ratios = self.ratios()
        return max(ratios) if ratios else float("nan")

    def row(self) -> Dict[str, Any]:
        """Flat dict for report tables."""
        ratio = self.ratio_stats()
        normalized = self.normalized_stats()
        return {
            "label": self.label,
            "trials": self.num_trials,
            "ratio_mean": ratio.mean,
            "ratio_max": ratio.maximum,
            "ratio/bound_mean": normalized.mean,
            "online_mean": self.online_cost_stats().mean,
            "offline_mean": self.offline_cost_stats().mean,
            "feasible": self.all_feasible(),
        }


def run_admission_trials(
    instance_factory: Callable[[np.random.Generator], AdmissionInstance],
    algorithm_factory: Callable[[AdmissionInstance, np.random.Generator], Any],
    *,
    num_trials: int = 5,
    random_state: Any = 0,
    label: str = "trial",
    offline: str = "ilp",
    randomized_bound: bool = True,
    ilp_time_limit: Optional[float] = 30.0,
) -> TrialSummary:
    """Run several independent admission-control trials.

    ``instance_factory(rng)`` builds a (possibly random) instance; the
    ``algorithm_factory(instance, rng)`` builds the online algorithm, seeded
    independently of the instance.
    """
    summary = TrialSummary(label=label)
    generators = spawn_generators(random_state, 2 * num_trials)
    for t in range(num_trials):
        instance_rng, algo_rng = generators[2 * t], generators[2 * t + 1]
        instance = instance_factory(instance_rng)
        algorithm = algorithm_factory(instance, algo_rng)
        result = run_admission(algorithm, instance)
        record = evaluate_admission_run(
            instance,
            result,
            offline=offline,
            randomized_bound=randomized_bound,
            ilp_time_limit=ilp_time_limit,
        )
        summary.records.append(record)
    return summary


def run_setcover_trials(
    instance_factory: Callable[[np.random.Generator], SetCoverInstance],
    algorithm_factory: Callable[[SetCoverInstance, np.random.Generator], Any],
    *,
    num_trials: int = 5,
    random_state: Any = 0,
    label: str = "trial",
    offline: str = "ilp",
    bicriteria_bound: bool = False,
    ilp_time_limit: Optional[float] = 30.0,
) -> TrialSummary:
    """Run several independent set-cover trials (same structure as admission)."""
    summary = TrialSummary(label=label)
    generators = spawn_generators(random_state, 2 * num_trials)
    for t in range(num_trials):
        instance_rng, algo_rng = generators[2 * t], generators[2 * t + 1]
        instance = instance_factory(instance_rng)
        algorithm = algorithm_factory(instance, algo_rng)
        result = run_setcover(algorithm, instance)
        record = evaluate_setcover_run(
            instance,
            result,
            offline=offline,
            bicriteria_bound=bicriteria_bound,
            ilp_time_limit=ilp_time_limit,
        )
        summary.records.append(record)
    return summary
