"""Multi-seed trial runner with parallel execution.

Randomized algorithms (and randomized workloads) need several independent runs
before a competitive ratio means anything.  :func:`run_admission_trials` /
:func:`run_setcover_trials` run ``(workload seed, algorithm seed)`` pairs and
aggregate the resulting :class:`~repro.analysis.competitive.CompetitiveRecord`
objects into a :class:`TrialSummary`.

Every trial's seed pair is derived from the master seed *before* dispatch
(:func:`repro.engine.executor.derive_seed_pairs`, which matches the historical
``spawn_generators`` derivation exactly), so the summary is bit-identical
whether trials run serially (``jobs=1``), on a thread pool, or — when the
factories are picklable module-level callables — across processes.

Since the unified run-spec API (:mod:`repro.api`), :func:`execute_trial_suite`
is the engine room every execution path shares, and the public
``run_admission_trials`` / ``run_setcover_trials`` wrappers are deprecation
shims: they behave exactly as before but ask callers to build a
:class:`~repro.api.spec.RunSpec` instead.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.analysis.competitive import (
    CompetitiveRecord,
    evaluate_admission_run,
    evaluate_setcover_run,
)
from repro.analysis.stats import SummaryStats, summarize
from repro.core.bounds import fractional_admission_bound
from repro.core.protocols import run_admission, run_setcover
from repro.engine.executor import derive_seed_pairs, execute
from repro.instances.admission import AdmissionInstance
from repro.instances.compiled import compile_instance
from repro.instances.setcover import SetCoverInstance
from repro.offline import solve_admission_lp_cached
from repro.utils.mathx import safe_ratio
from repro.utils.rng import as_generator

__all__ = [
    "TrialSummary",
    "execute_trial_suite",
    "run_admission_trials",
    "run_setcover_trials",
]


@dataclass
class TrialSummary:
    """Aggregate of several :class:`CompetitiveRecord` objects for one configuration."""

    label: str
    records: List[CompetitiveRecord] = field(default_factory=list)

    @property
    def num_trials(self) -> int:
        """Number of runs aggregated."""
        return len(self.records)

    def ratios(self) -> List[float]:
        """Measured competitive ratios, one per trial."""
        return [r.ratio for r in self.records]

    def ratio_stats(self) -> SummaryStats:
        """Summary statistics of the measured ratios."""
        return summarize(self.ratios())

    def normalized_stats(self) -> SummaryStats:
        """Summary statistics of ratio / theoretical bound."""
        return summarize(r.normalized_ratio for r in self.records if r.normalized_ratio is not None)

    def online_cost_stats(self) -> SummaryStats:
        """Summary statistics of the online costs."""
        return summarize(r.online_cost for r in self.records)

    def offline_cost_stats(self) -> SummaryStats:
        """Summary statistics of the offline comparator costs."""
        return summarize(r.offline_cost for r in self.records)

    def all_feasible(self) -> bool:
        """True if every trial produced a feasible online solution."""
        return all(r.feasible for r in self.records)

    def max_ratio(self) -> float:
        """Worst measured ratio across trials."""
        ratios = self.ratios()
        return max(ratios) if ratios else float("nan")

    def row(self) -> Dict[str, Any]:
        """Flat dict for report tables."""
        ratio = self.ratio_stats()
        normalized = self.normalized_stats()
        return {
            "label": self.label,
            "trials": self.num_trials,
            "ratio_mean": ratio.mean,
            "ratio_max": ratio.maximum,
            "ratio/bound_mean": normalized.mean,
            "online_mean": self.online_cost_stats().mean,
            "offline_mean": self.offline_cost_stats().mean,
            "feasible": self.all_feasible(),
        }


@dataclass
class _TrialSpec:
    """One self-contained trial: factories plus pre-derived seeds.

    The spec is what crosses the executor boundary, so it carries everything a
    worker needs and nothing it must share: the instance and algorithm
    factories, the two seeds (picklable ``SeedSequence`` children or ints),
    and the offline-evaluation knobs.
    """

    kind: str  # "admission" | "setcover"
    instance_factory: Callable
    algorithm_factory: Callable
    instance_seed: Any
    algo_seed: Any
    offline: str
    randomized_bound: bool
    bicriteria_bound: bool
    ilp_time_limit: Optional[float]
    compile_instances: bool = True
    streaming: bool = False
    #: Route compiled runs through the whole-trace executor (never changes a
    #: number; ``False`` is the per-arrival escape hatch).
    vectorized: bool = True
    #: Optional ``(instance, algorithm) -> mapping`` measurement hook, run in
    #: the worker right after the online run; merged into the record's extras.
    probe: Optional[Callable[[Any, Any], Mapping[str, Any]]] = None
    #: Streaming scale-out config (shards/workers/strategy + the algorithm
    #: key and backend knobs needed to build per-shard sessions).  When set,
    #: the trial runs through :class:`~repro.engine.streaming.
    #: ShardedStreamRouter` (in-process) or :class:`~repro.engine.shards.
    #: ProcessShardPool` (worker processes) instead of a single algorithm
    #: object; the ``algorithm_factory`` is bypassed.
    sharding: Optional[Dict[str, Any]] = None


def _stream_through_session(
    instance: AdmissionInstance, algorithm, *, vectorized: bool = True
) -> None:
    """Feed an instance through a :class:`StreamingSession` micro-batch loop.

    Decisions are identical to the batch pipelines (same per-arrival float
    operations); this path exists so sweeps can exercise the serving-layer
    code end to end.
    """
    from repro.engine.streaming import StreamingSession

    session = StreamingSession(
        instance.capacities, algorithm=algorithm, vectorized=vectorized, name=instance.name
    )
    session.submit_stream(iter(instance.requests))


def _evaluate_fractional_trial(
    instance: AdmissionInstance,
    algorithm,
    *,
    compile_instances: bool,
    streaming: bool = False,
    vectorized: bool = True,
) -> CompetitiveRecord:
    """Evaluate a fractional-style algorithm (no integral ``result()``).

    The Section-2 fractional algorithm exposes ``process_sequence`` /
    ``fractional_cost`` instead of the integral
    :class:`~repro.core.protocols.AdmissionResult` protocol; its natural
    comparator is the *fractional* optimum (the LP), exactly as in E1, so the
    ``offline`` knob is ignored here and the record says ``lp``.
    """
    start = time.perf_counter()
    if streaming:
        _stream_through_session(instance, algorithm, vectorized=vectorized)
    elif compile_instances and hasattr(algorithm, "process_compiled_range"):
        compiled = compile_instance(instance)
        algorithm.process_compiled_range(
            compiled, 0, compiled.num_requests, vectorized=vectorized
        )
    else:
        # Fractional-style algorithms without a range path (the doubling
        # wrapper, externally-built objects) keep the sequence entry point.
        algorithm.process_sequence(
            compile_instance(instance) if compile_instances else instance.requests
        )
    online_seconds = time.perf_counter() - start
    # Cached: the oracle-alpha factories and invariant probes may have solved
    # (or may later solve) the same instance's LP in this worker.
    opt = solve_admission_lp_cached(instance)
    online_cost = algorithm.fractional_cost()
    ratio = safe_ratio(online_cost, opt.cost)
    bound = fractional_admission_bound(
        instance.num_edges, max(instance.max_capacity, 1), weighted=not instance.is_unit_cost()
    )
    extra: Dict[str, Any] = {
        "num_augmentations": getattr(algorithm, "num_augmentations", None),
        "online_seconds": online_seconds,
    }
    # Fractional-mechanism parameters the bound expressions need (Lemma 1 /
    # Theorem 2 consumers read these off the record instead of the live object).
    for attr in ("g", "c", "alpha"):
        if hasattr(algorithm, attr):
            extra[attr] = getattr(algorithm, attr)
    return CompetitiveRecord(
        algorithm=getattr(algorithm, "name", type(algorithm).__name__),
        instance_name=instance.name,
        online_cost=online_cost,
        offline_cost=opt.cost,
        offline_kind=f"lp:{opt.status}",
        ratio=ratio,
        bound=bound,
        normalized_ratio=bound.normalized(ratio),
        feasible=True,
        extra=extra,
    )


def _evaluate_sharded_trial(instance: AdmissionInstance, spec: _TrialSpec) -> CompetitiveRecord:
    """Evaluate one trial through the sharded streaming layer.

    Builds a :class:`~repro.engine.streaming.ShardedStreamRouter` (in-process,
    ``workers == 1``) or a :class:`~repro.engine.shards.ProcessShardPool`
    (one worker process per shard) over the instance's capacities, streams the
    arrivals through it, and aggregates the per-shard fractional costs.  Under
    the ``namespace`` strategy the aggregate equals a single-process router
    run at 1e-9 (the pool builds the identical sessions), so the reported
    ratio is independent of worker count.  The comparator is the *global* LP
    optimum, as in :func:`_evaluate_fractional_trial`.
    """
    sharding = spec.sharding or {}
    algorithm_key = sharding["algorithm"]
    strategy = sharding.get("strategy", "namespace")
    workers = int(sharding.get("workers", 1))
    shards = int(sharding.get("shards", 1))
    kwargs = dict(sharding.get("algorithm_kwargs") or {})
    vectorized = bool(sharding.get("vectorized", True))
    # The fractional mechanism is deterministic; the session seed is provenance
    # only, but derive it from the trial's seed pair so it stays reproducible.
    seed = int(as_generator(spec.algo_seed).integers(2**31 - 1))

    start = time.perf_counter()
    shard_lines: List[Dict[str, Any]]
    if workers > 1:
        from repro.engine.shards import ProcessShardPool

        with ProcessShardPool(
            instance.capacities,
            workers,
            algorithm_key,
            strategy=strategy,
            backend=sharding.get("backend"),
            record=sharding.get("record"),
            seed=seed,
            algorithm_kwargs=kwargs,
            retain_log=False,
            vectorized=vectorized,
            name=instance.name,
        ) as pool:
            pool.submit_stream(iter(instance.requests))
            shard_lines = list(pool.summary()["shards"].values())
    else:
        from repro.engine.streaming import ShardedStreamRouter

        router = ShardedStreamRouter(
            instance.capacities,
            shards,
            algorithm_key,
            backend=sharding.get("backend"),
            record=sharding.get("record"),
            seed=seed,
            algorithm_kwargs=kwargs,
            retain_log=False,
            vectorized=vectorized,
            name=instance.name,
        )
        router.submit_batch(list(instance.requests))
        shard_lines = []
        for _, session in router.sessions():
            line = session.summary()
            line["augmentations"] = getattr(session.algorithm, "num_augmentations", None)
            shard_lines.append(line)
    online_seconds = time.perf_counter() - start

    missing = [line["name"] for line in shard_lines if "fractional_cost" not in line]
    if missing:
        raise TypeError(
            f"sharded trials aggregate fractional costs, but shards {missing} report "
            f"none; algorithm {algorithm_key!r} is not fractional-style"
        )
    online_cost = float(sum(line["fractional_cost"] for line in shard_lines))
    augmentations = [line.get("augmentations") for line in shard_lines]
    opt = solve_admission_lp_cached(instance)
    ratio = safe_ratio(online_cost, opt.cost)
    bound = fractional_admission_bound(
        instance.num_edges, max(instance.max_capacity, 1), weighted=not instance.is_unit_cost()
    )
    return CompetitiveRecord(
        algorithm=algorithm_key,
        instance_name=instance.name,
        online_cost=online_cost,
        offline_cost=opt.cost,
        offline_kind=f"lp:{opt.status}",
        ratio=ratio,
        bound=bound,
        normalized_ratio=bound.normalized(ratio),
        feasible=True,
        extra={
            "num_augmentations": (
                None if any(a is None for a in augmentations) else int(sum(augmentations))
            ),
            "online_seconds": online_seconds,
            "shards": shards,
            "workers": workers,
            "strategy": strategy,
        },
    )


def _run_trial(spec: _TrialSpec) -> CompetitiveRecord:
    """Execute one trial (worker function; module-level so it can pickle)."""
    instance = spec.instance_factory(as_generator(spec.instance_seed))
    if spec.sharding is not None:
        # Sharded streaming builds its sessions per shard from the algorithm
        # registry key; the single-object algorithm factory is bypassed.
        return _evaluate_sharded_trial(instance, spec)
    algorithm = spec.algorithm_factory(instance, as_generator(spec.algo_seed))
    if spec.kind == "admission":
        if not hasattr(algorithm, "result"):
            # Fractional-style algorithms never produce an integral result;
            # they are compared against the LP optimum instead.
            record = _evaluate_fractional_trial(
                instance,
                algorithm,
                compile_instances=spec.compile_instances,
                streaming=spec.streaming,
                vectorized=spec.vectorized,
            )
            return _apply_probe(spec, record, instance, algorithm)
        start = time.perf_counter()
        if spec.streaming:
            _stream_through_session(instance, algorithm, vectorized=spec.vectorized)
            result = algorithm.result()
        else:
            compiled = (
                compile_instance(instance)
                if spec.compile_instances and hasattr(algorithm, "process_indexed")
                else None
            )
            result = run_admission(
                algorithm, instance, compiled=compiled, vectorized=spec.vectorized
            )
        online_seconds = time.perf_counter() - start
        record = evaluate_admission_run(
            instance,
            result,
            offline=spec.offline,
            randomized_bound=spec.randomized_bound,
            ilp_time_limit=spec.ilp_time_limit,
        )
        record.extra.setdefault("online_seconds", online_seconds)
        return _apply_probe(spec, record, instance, algorithm)
    start = time.perf_counter()
    result = run_setcover(algorithm, instance)
    online_seconds = time.perf_counter() - start
    record = evaluate_setcover_run(
        instance,
        result,
        offline=spec.offline,
        bicriteria_bound=spec.bicriteria_bound,
        ilp_time_limit=spec.ilp_time_limit,
    )
    record.extra.setdefault("online_seconds", online_seconds)
    return _apply_probe(spec, record, instance, algorithm)


def _apply_probe(
    spec: _TrialSpec, record: CompetitiveRecord, instance: Any, algorithm: Any
) -> CompetitiveRecord:
    """Merge the spec's measurement probe (if any) into the record's extras.

    Probes run in the worker while the algorithm object is still alive, which
    is what lets experiment-style consumers extract invariant checks and
    internal counters without re-running anything.
    """
    if spec.probe is not None:
        record.extra.update(spec.probe(instance, algorithm))
    return record


def execute_trial_suite(
    kind: str,
    instance_factory: Callable,
    algorithm_factory: Callable,
    *,
    num_trials: int,
    random_state: Any,
    label: str,
    offline: str,
    randomized_bound: bool = True,
    bicriteria_bound: bool = False,
    ilp_time_limit: Optional[float] = 20.0,
    jobs: int = 1,
    compile_instances: bool = True,
    streaming: bool = False,
    vectorized: bool = True,
    probe: Optional[Callable[[Any, Any], Mapping[str, Any]]] = None,
    sharding: Optional[Dict[str, Any]] = None,
) -> TrialSummary:
    """Run a suite of independent trials and aggregate the records.

    This is the shared engine room below the run-spec facade
    (:class:`repro.api.Runner` dispatches every spec here); the deprecated
    ``run_admission_trials`` / ``run_setcover_trials`` wrappers delegate to it
    unchanged, so legacy and facade numbers are identical by construction.
    """
    specs = [
        _TrialSpec(
            kind=kind,
            instance_factory=instance_factory,
            algorithm_factory=algorithm_factory,
            instance_seed=instance_seed,
            algo_seed=algo_seed,
            offline=offline,
            randomized_bound=randomized_bound,
            bicriteria_bound=bicriteria_bound,
            ilp_time_limit=ilp_time_limit,
            compile_instances=compile_instances,
            streaming=streaming,
            vectorized=vectorized,
            probe=probe,
            sharding=None if sharding is None else dict(sharding),
        )
        for instance_seed, algo_seed in derive_seed_pairs(random_state, num_trials)
    ]
    records = execute(_run_trial, specs, jobs=jobs)
    return TrialSummary(label=label, records=list(records))


def run_admission_trials(
    instance_factory: Callable[[np.random.Generator], AdmissionInstance],
    algorithm_factory: Callable[[AdmissionInstance, np.random.Generator], Any],
    *,
    num_trials: int = 5,
    random_state: Any = 0,
    label: str = "trial",
    offline: str = "ilp",
    randomized_bound: bool = True,
    ilp_time_limit: Optional[float] = 30.0,
    jobs: int = 1,
    compile_instances: bool = True,
    streaming: bool = False,
) -> TrialSummary:
    """Run several independent admission-control trials.

    ``instance_factory(rng)`` builds a (possibly random) instance; the
    ``algorithm_factory(instance, rng)`` builds the online algorithm, seeded
    independently of the instance.  ``jobs > 1`` fans the trials out over the
    engine executor without changing any result.  ``compile_instances`` (the
    default) compiles each trial instance once and streams it through the
    algorithm's indexed fast path — also without changing any result.
    ``streaming`` routes each trial through a
    :class:`~repro.engine.streaming.StreamingSession` micro-batch loop (the
    serving-layer path) instead — once more without changing any result.

    .. deprecated::
        Build a :class:`repro.api.RunSpec` and use :class:`repro.api.Runner`
        instead; this wrapper delegates to the same machinery and will keep
        producing identical numbers, but new call sites should use the facade.
    """
    warnings.warn(
        "run_admission_trials() is deprecated; build a repro.api.RunSpec and use "
        "repro.api.Runner instead (numbers are identical)",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_trial_suite(
        "admission",
        instance_factory,
        algorithm_factory,
        num_trials=num_trials,
        random_state=random_state,
        label=label,
        offline=offline,
        randomized_bound=randomized_bound,
        bicriteria_bound=False,
        ilp_time_limit=ilp_time_limit,
        jobs=jobs,
        compile_instances=compile_instances,
        streaming=streaming,
    )


def run_setcover_trials(
    instance_factory: Callable[[np.random.Generator], SetCoverInstance],
    algorithm_factory: Callable[[SetCoverInstance, np.random.Generator], Any],
    *,
    num_trials: int = 5,
    random_state: Any = 0,
    label: str = "trial",
    offline: str = "ilp",
    bicriteria_bound: bool = False,
    ilp_time_limit: Optional[float] = 30.0,
    jobs: int = 1,
) -> TrialSummary:
    """Run several independent set-cover trials (same structure as admission).

    .. deprecated::
        Build a :class:`repro.api.RunSpec` (``problem="setcover"``) and use
        :class:`repro.api.Runner` instead.
    """
    warnings.warn(
        "run_setcover_trials() is deprecated; build a repro.api.RunSpec "
        "(problem='setcover') and use repro.api.Runner instead (numbers are identical)",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_trial_suite(
        "setcover",
        instance_factory,
        algorithm_factory,
        num_trials=num_trials,
        random_state=random_state,
        label=label,
        offline=offline,
        # The randomized_bound flag only applies to admission evaluation; keep
        # the unused value False so it never leaks a wrong default.
        randomized_bound=False,
        bicriteria_bound=bicriteria_bound,
        ilp_time_limit=ilp_time_limit,
        jobs=jobs,
    )
