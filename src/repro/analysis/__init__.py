"""Competitive-ratio measurement, multi-seed trials, invariants and reporting."""

from repro.analysis.ascii_plot import ascii_line_plot, ascii_series_table
from repro.analysis.competitive import (
    CompetitiveRecord,
    evaluate_admission_algorithm,
    evaluate_admission_run,
    evaluate_setcover_algorithm,
    evaluate_setcover_run,
)
from repro.analysis.invariants import (
    InvariantReport,
    check_admission_result,
    check_bicriteria_state,
    check_fractional_state,
)
from repro.analysis.report import format_kv, format_records, format_table
from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.trials import (
    TrialSummary,
    execute_trial_suite,
    run_admission_trials,
    run_setcover_trials,
)

__all__ = [
    "ascii_line_plot",
    "ascii_series_table",
    "CompetitiveRecord",
    "evaluate_admission_algorithm",
    "evaluate_admission_run",
    "evaluate_setcover_algorithm",
    "evaluate_setcover_run",
    "InvariantReport",
    "check_admission_result",
    "check_bicriteria_state",
    "check_fractional_state",
    "format_kv",
    "format_records",
    "format_table",
    "SummaryStats",
    "summarize",
    "TrialSummary",
    "execute_trial_suite",
    "run_admission_trials",
    "run_setcover_trials",
]
