"""Deterministic random-number handling.

Every stochastic component in the library (randomized rounding, workload
generators, multi-seed trials) accepts either an integer seed, ``None``, or an
existing :class:`numpy.random.Generator`.  Routing all of them through
:func:`as_generator` keeps experiments reproducible and lets the trial runner
spawn statistically independent child generators for parallel-style sweeps.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["RandomState", "as_generator", "spawn_generators", "derive_seed", "stable_seed"]

#: Anything the library accepts where randomness is needed.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing generator (returned unchanged so that callers can share a
        stream when they intend to).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        f"random_state must be None, int, SeedSequence or Generator, got {type(random_state)!r}"
    )


def spawn_generators(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent generators.

    Multi-seed experiments use this so each trial has its own stream while
    the whole sweep is still determined by one master seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(random_state, np.random.SeedSequence):
        seq = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive children from the generator's bit stream.
        seeds = random_state.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    else:
        seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def stable_seed(*parts) -> int:
    """Derive a deterministic 31-bit seed from arbitrary printable parts.

    Unlike ``hash()``, the result does not depend on ``PYTHONHASHSEED``, so
    experiment sweeps produce identical workloads across processes and runs.
    """
    import hashlib

    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def derive_seed(random_state: RandomState, salt: int = 0) -> int:
    """Derive a reproducible integer seed from ``random_state`` and ``salt``.

    Useful when a component needs to persist the seed it used (e.g. experiment
    metadata) rather than an opaque generator object.
    """
    if isinstance(random_state, (int, np.integer)):
        return (int(random_state) * 0x9E3779B97F4A7C15 + salt) % (2**63 - 1)
    gen = as_generator(random_state)
    return int(gen.integers(0, 2**63 - 1)) ^ salt
