"""Shared low-level utilities used across the :mod:`repro` package.

The utilities are intentionally dependency-light: deterministic random number
handling (:mod:`repro.utils.rng`), guarded math helpers used by the
competitive-analysis bounds (:mod:`repro.utils.mathx`), lightweight timing
(:mod:`repro.utils.timing`), logging setup (:mod:`repro.utils.logging`), and
argument validation helpers (:mod:`repro.utils.validation`).
"""

from repro.utils.mathx import (
    ceil_log2,
    log2_guarded,
    ln_guarded,
    safe_ratio,
    harmonic_number,
    clamp,
)
from repro.utils.rng import RandomState, as_generator, spawn_generators, derive_seed
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_integer,
    check_in_range,
)

__all__ = [
    "ceil_log2",
    "log2_guarded",
    "ln_guarded",
    "safe_ratio",
    "harmonic_number",
    "clamp",
    "RandomState",
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "Timer",
    "timed",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_integer",
    "check_in_range",
]
