"""Logging configuration for the library.

The library never configures the root logger on import; applications call
:func:`configure_logging` explicitly (the examples do).  Modules obtain their
logger through :func:`get_logger` so all of them share the ``repro.`` prefix.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure_logging"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("core.fractional")`` and ``get_logger("repro.core.fractional")``
    return the same logger.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure_logging(level: int = logging.INFO, *, stream=None, fmt: Optional[str] = None) -> None:
    """Attach a stream handler to the ``repro`` logger hierarchy.

    Calling it twice replaces the previous handler rather than duplicating
    output (useful in notebooks and repeated example runs).
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt or _FORMAT))
    logger.addHandler(handler)
    logger.propagate = False
