"""Small guarded math helpers.

The competitive bounds of the paper are expressed in terms of logarithms of
instance parameters (``log(mc)``, ``log m log n`` ...).  For tiny instances
these logarithms can be zero or negative, which would make thresholds such as
``1 / (12 log(mc))`` meaningless.  The helpers here centralise the guards so
every algorithm and bound function treats degenerate parameters the same way.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "log2_guarded",
    "ln_guarded",
    "ceil_log2",
    "safe_ratio",
    "harmonic_number",
    "clamp",
    "geometric_mean",
    "is_power_of_two",
]


def log2_guarded(x: float, minimum: float = 1.0) -> float:
    """Return ``log2(x)`` but never less than ``minimum``.

    The paper's algorithms divide by quantities such as ``log(mc)``.  For
    ``mc <= 2`` the logarithm would be at most 1 (or 0), which would produce
    degenerate rejection thresholds; the guarded version keeps every formula
    well defined on small instances while being identical to ``log2`` on the
    asymptotic regime the theorems address.

    Parameters
    ----------
    x:
        Argument of the logarithm. Values below 1 are treated as 1.
    minimum:
        Lower bound for the returned value (default 1.0).
    """
    if x < 1.0:
        x = 1.0
    return max(math.log2(x), minimum)


def ln_guarded(x: float, minimum: float = 1.0) -> float:
    """Natural-logarithm counterpart of :func:`log2_guarded`."""
    if x < 1.0:
        x = 1.0
    return max(math.log(x), minimum)


def ceil_log2(x: float) -> int:
    """Return ``ceil(log2(x))`` for ``x >= 1`` (and 0 for smaller values)."""
    if x <= 1:
        return 0
    return int(math.ceil(math.log2(x)))


def safe_ratio(numerator: float, denominator: float, *, zero_over_zero: float = 1.0) -> float:
    """Competitive ratio ``numerator / denominator`` with the 0/0 convention.

    An online algorithm that pays 0 while the optimum pays 0 is (vacuously)
    1-competitive, hence ``zero_over_zero`` defaults to 1.  A strictly
    positive cost against a zero optimum is reported as ``math.inf``.
    """
    if denominator == 0:
        return zero_over_zero if numerator == 0 else math.inf
    return numerator / denominator


def harmonic_number(n: int) -> float:
    """Return the ``n``-th harmonic number ``H_n = 1 + 1/2 + ... + 1/n``.

    Used by the classical greedy set-cover approximation bound ``H_n <= ln n + 1``.
    """
    if n <= 0:
        return 0.0
    if n < 128:
        return sum(1.0 / k for k in range(1, n + 1))
    # Asymptotic expansion is plenty accurate for the analysis reports.
    gamma = 0.5772156649015329
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into the closed interval ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"clamp interval is empty: [{lo}, {hi}]")
    return lo if x < lo else hi if x > hi else x


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (1.0 for an empty iterable)."""
    total = 0.0
    count = 0
    for v in values:
        if v <= 0:
            raise ValueError("geometric_mean requires strictly positive values")
        total += math.log(v)
        count += 1
    if count == 0:
        return 1.0
    return math.exp(total / count)


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0
