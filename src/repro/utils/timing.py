"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Tuple, TypeVar

__all__ = ["Timer", "timed"]

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating timer keyed by section name.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.section("solve"):
    ...     _ = sum(range(1000))
    >>> "solve" in timer.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a named section; durations accumulate across uses."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never timed)."""
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per call for ``name`` (0.0 if never timed)."""
        count = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / count if count else 0.0

    def summary(self) -> str:
        """Human-readable one-line-per-section summary."""
        lines = []
        for name in sorted(self.totals):
            lines.append(
                f"{name:<30s} total={self.totals[name]:.4f}s "
                f"calls={self.counts[name]} mean={self.mean(name):.6f}s"
            )
        return "\n".join(lines)


def timed(func: Callable[..., T]) -> Callable[..., Tuple[T, float]]:
    """Return a wrapper that also reports the call's wall-clock duration."""

    def wrapper(*args, **kwargs) -> Tuple[T, float]:
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    wrapper.__name__ = getattr(func, "__name__", "timed")
    wrapper.__doc__ = func.__doc__
    return wrapper
