"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_integer",
    "check_in_range",
]


def check_positive(value: Any, name: str) -> float:
    """Validate ``value > 0`` and return it as ``float``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: Any, name: str) -> float:
    """Validate ``value >= 0`` and return it as ``float``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: Any, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it as ``float``."""
    value = check_non_negative(value, name)
    if value > 1:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Validate that ``value`` is an integer (optionally bounded below)."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_in_range(value: Any, name: str, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi`` and return it as ``float``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return float(value)
