"""E7 — the proofs' potential-function invariants, checked at runtime.

Two families of checks:

* **Lemma 1** (admission control): with ``alpha`` equal to the optimal
  fractional cost, the potential ``prod_i max(f_i, 1/(gc))^{f*_i p_i}`` starts
  at ``(gc)^{-alpha}``, never exceeds ``2^alpha``, and the number of
  augmentations is at most ``alpha log2(2gc)``.
* **Lemma 5 / Lemma 6** (bicriteria set cover): the potential ``Phi`` never
  exceeds ``n^2``, no augmentation increases it, at most ``2 ln n`` sets are
  selected per augmentation, and the number of augmentations respects
  Lemma 5's bound computed from the offline optimum.

The checks need the *live* algorithm object after its run, which is exactly
what the run-spec facade's measurement probes provide: each configuration is
one :class:`~repro.api.spec.RunSpec` whose probe performs the invariant
checks inside the worker and returns booleans on the row's ``extra``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.analysis.invariants import check_bicriteria_state, check_fractional_state
from repro.api import Runner, RunSpec
from repro.core.potential import check_lemma1
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.experiments.e1_fractional import OracleAlphaFractional
from repro.experiments.e6_bicriteria import E6Workload
from repro.instances.admission import AdmissionInstance
from repro.instances.setcover import SetCoverInstance
from repro.offline import solve_admission_lp_cached, solve_set_multicover_ilp
from repro.utils.rng import stable_seed
from repro.workloads import single_edge_workload, uniform_costs

EXPERIMENT_ID = "E7"
TITLE = "Potential-function invariants (Lemmas 1, 5 and 6)"
VALIDATES = "Lemma 1, Lemma 5, Lemma 6"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional",)
USES_SETCOVER = ("bicriteria",)

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


@dataclass(frozen=True)
class E7Workload:
    """Picklable congestion workload builder for the Lemma 1 checks."""

    m: int
    c: int

    def __call__(self, rng):
        return single_edge_workload(
            num_edges=self.m,
            num_requests=4 * self.m,
            capacity=self.c,
            concentration=1.1,
            cost_sampler=lambda count, r: uniform_costs(count, 1.0, 3.0, random_state=r),
            random_state=rng,
        )


def lemma1_probe(instance: AdmissionInstance, algorithm: Any) -> Dict[str, Any]:
    """Check Lemma 1's state invariants and potential bounds on a finished run."""
    # Cached: the oracle-alpha factory and the trial comparator already solved
    # this instance's LP in the same worker.
    opt = solve_admission_lp_cached(instance)
    alpha = max(opt.cost, 1e-9)
    report = check_fractional_state(algorithm, optimal_cost=alpha)
    # Potential check needs the optimal fractional solution expressed in
    # the algorithm's normalised cost units.
    normalized_costs = {
        rid: algorithm.weight_state.cost_of(rid) for rid in algorithm.weight_state.weights()
    }
    fractions = {rid: opt.fractions.get(rid, 0.0) for rid in normalized_costs}
    normalized_alpha = sum(fractions[rid] * normalized_costs[rid] for rid in fractions)
    check = check_lemma1(
        algorithm.weight_state,
        fractions,
        normalized_costs,
        alpha=max(normalized_alpha, 1e-9),
        g=algorithm.g,
        c=algorithm.c,
    )
    return {"invariant_ok": bool(report.ok), "potential_ok": bool(check.all_ok)}


@dataclass(frozen=True)
class Lemma56Probe:
    """Check Lemmas 5 and 6 on a finished bicriteria run (needs the ILP OPT)."""

    ilp_time_limit: Optional[float]

    def __call__(self, instance: SetCoverInstance, algorithm: Any) -> Dict[str, Any]:
        opt = solve_set_multicover_ilp(
            instance.system, instance.demands(), time_limit=self.ilp_time_limit
        )
        report = check_bicriteria_state(algorithm, optimal_cost=opt.cost)
        return {
            "invariant_ok": bool(report.ok),
            "potential_fraction": algorithm.max_potential_seen / (max(algorithm.n, 2) ** 2),
        }


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the invariant checks and return one row per configuration."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(4)
    runner = Runner()
    sizes = [(8, 2), (16, 4), (32, 8)] if config.quick else [(8, 2), (16, 4), (32, 8), (64, 8), (128, 16)]

    # -- Lemma 1 on the fractional algorithm -------------------------------------
    for m, c in sizes:
        spec = RunSpec(
            factory=E7Workload(m, c),
            algorithm=OracleAlphaFractional(config.engine),
            backend=config.backend,
            mode="compiled" if config.compile else "batch",
            record=config.record,
            trials=trials,
            jobs=config.engine.effective_jobs,
            seed=stable_seed(config.seed, m, c, "e7-frac"),
            probe=lemma1_probe,
            label=f"E7 lemma1 m={m} c={c}",
        )
        cell = runner.run(spec)
        result.rows.append(
            {
                "check": "lemma1",
                "size": f"m={m},c={c}",
                "trials": trials,
                "invariants_ok": sum(int(row.extra["invariant_ok"]) for row in cell),
                "potential_ok": sum(int(row.extra["potential_ok"]) for row in cell),
            }
        )

    # -- Lemmas 5 and 6 on the bicriteria algorithm --------------------------------
    sc_sizes = [(16, 8), (32, 16)] if config.quick else [(16, 8), (32, 16), (64, 24), (128, 32)]
    for n, m in sc_sizes:
        spec = RunSpec(
            problem="setcover",
            factory=E6Workload(n, m),
            algorithm="bicriteria",
            algorithm_params={"eps": 0.2},
            backend=config.backend,
            record=config.record,
            trials=trials,
            jobs=config.engine.effective_jobs,
            seed=stable_seed(config.seed, n, m, "e7-bic"),
            offline="lp",  # the probe does its own exact solve; keep the row's comparator cheap
            probe=Lemma56Probe(config.ilp_time_limit),
            label=f"E7 lemma5+6 n={n} m={m}",
        )
        cell = runner.run(spec)
        result.rows.append(
            {
                "check": "lemma5+6",
                "size": f"n={n},m={m}",
                "trials": trials,
                "invariants_ok": sum(int(row.extra["invariant_ok"]) for row in cell),
                "max_potential/n^2": max(row.extra["potential_fraction"] for row in cell),
            }
        )
    result.notes.append("invariants_ok must equal trials in every row; max_potential/n^2 must stay <= 1.")
    return result


register(EXPERIMENT_ID, run)
