"""E7 — the proofs' potential-function invariants, checked at runtime.

Two families of checks:

* **Lemma 1** (admission control): with ``alpha`` equal to the optimal
  fractional cost, the potential ``prod_i max(f_i, 1/(gc))^{f*_i p_i}`` starts
  at ``(gc)^{-alpha}``, never exceeds ``2^alpha``, and the number of
  augmentations is at most ``alpha log2(2gc)``.
* **Lemma 5 / Lemma 6** (bicriteria set cover): the potential ``Phi`` never
  exceeds ``n^2``, no augmentation increases it, at most ``2 ln n`` sets are
  selected per augmentation, and the number of augmentations respects
  Lemma 5's bound computed from the offline optimum.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.invariants import check_bicriteria_state, check_fractional_state
from repro.core.potential import check_lemma1
from repro.engine.runtime import make_admission_algorithm, make_setcover_algorithm
from repro.core.protocols import run_setcover
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.setcover import SetCoverInstance
from repro.instances.compiled import compile_instance
from repro.offline import solve_admission_lp, solve_set_multicover_ilp
from repro.utils.rng import spawn_generators, stable_seed
from repro.workloads import single_edge_workload, uniform_costs
from repro.workloads.setcover_random import random_set_system, repetition_heavy_arrivals

EXPERIMENT_ID = "E7"
TITLE = "Potential-function invariants (Lemmas 1, 5 and 6)"
VALIDATES = "Lemma 1, Lemma 5, Lemma 6"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional",)
USES_SETCOVER = ("bicriteria",)

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the invariant checks and return one row per configuration."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(4)
    sizes = [(8, 2), (16, 4), (32, 8)] if config.quick else [(8, 2), (16, 4), (32, 8), (64, 8), (128, 16)]

    # -- Lemma 1 on the fractional algorithm -------------------------------------
    for m, c in sizes:
        generators = spawn_generators(stable_seed(config.seed, m, c, "e7-frac"), trials)
        checks_ok = 0
        invariant_ok = 0
        for rng in generators:
            instance = single_edge_workload(
                num_edges=m,
                num_requests=4 * m,
                capacity=c,
                concentration=1.1,
                cost_sampler=lambda count, r: uniform_costs(count, 1.0, 3.0, random_state=r),
                random_state=rng,
            )
            opt = solve_admission_lp(instance)
            alpha = max(opt.cost, 1e-9)
            algo = make_admission_algorithm(
                "fractional", instance, alpha=alpha, backend=config.engine
            )
            algo.process_sequence(
                compile_instance(instance) if config.compile else instance.requests
            )
            report = check_fractional_state(algo, optimal_cost=alpha)
            invariant_ok += int(report.ok)
            # Potential check needs the optimal fractional solution expressed in
            # the algorithm's normalised cost units.
            normalized_costs = {
                rid: algo.weight_state.cost_of(rid)
                for rid in algo.weight_state.weights()
            }
            fractions = {rid: opt.fractions.get(rid, 0.0) for rid in normalized_costs}
            normalized_alpha = sum(fractions[rid] * normalized_costs[rid] for rid in fractions)
            check = check_lemma1(
                algo.weight_state,
                fractions,
                normalized_costs,
                alpha=max(normalized_alpha, 1e-9),
                g=algo.g,
                c=algo.c,
            )
            checks_ok += int(check.all_ok)
        result.rows.append(
            {
                "check": "lemma1",
                "size": f"m={m},c={c}",
                "trials": trials,
                "invariants_ok": invariant_ok,
                "potential_ok": checks_ok,
            }
        )

    # -- Lemmas 5 and 6 on the bicriteria algorithm --------------------------------
    sc_sizes = [(16, 8), (32, 16)] if config.quick else [(16, 8), (32, 16), (64, 24), (128, 32)]
    for n, m in sc_sizes:
        generators = spawn_generators(stable_seed(config.seed, n, m, "e7-bic"), trials)
        invariant_ok = 0
        max_potential_fraction = 0.0
        for rng in generators:
            system = random_set_system(n, m, min(0.5, 4.0 / m + 0.1), random_state=rng)
            arrivals = repetition_heavy_arrivals(system, random_state=rng)
            instance = SetCoverInstance(system, arrivals)
            algorithm = make_setcover_algorithm(
                "bicriteria", instance, eps=0.2, backend=config.engine
            )
            run_setcover(algorithm, instance)
            opt = solve_set_multicover_ilp(system, instance.demands(), time_limit=config.ilp_time_limit)
            report = check_bicriteria_state(algorithm, optimal_cost=opt.cost)
            invariant_ok += int(report.ok)
            max_potential_fraction = max(
                max_potential_fraction,
                algorithm.max_potential_seen / (max(algorithm.n, 2) ** 2),
            )
        result.rows.append(
            {
                "check": "lemma5+6",
                "size": f"n={n},m={m}",
                "trials": trials,
                "invariants_ok": invariant_ok,
                "max_potential/n^2": max_potential_fraction,
            }
        )
    result.notes.append("invariants_ok must equal trials in every row; max_potential/n^2 must stay <= 1.")
    return result


register(EXPERIMENT_ID, run)
