"""E2 — Lemma 1: the number of weight augmentations is ``O(alpha log(gc))``.

The experiment runs the fractional algorithm with the optimal fractional cost
``alpha`` supplied (the setting Lemma 1 analyses), counts the weight
augmentations actually performed, and compares them with the explicit bound
``alpha * log2(2 g c)``.  The reported ``augs/bound`` column must never exceed
1 if the implementation matches the proof.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bounds import lemma1_augmentation_bound
from repro.engine.runtime import make_admission_algorithm
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.compiled import compile_instance
from repro.offline import solve_admission_lp
from repro.utils.rng import spawn_generators, stable_seed
from repro.workloads import single_edge_workload, uniform_costs

EXPERIMENT_ID = "E2"
TITLE = "Weight-augmentation count vs Lemma 1 bound"
VALIDATES = "Lemma 1 (at most O(alpha log(gc)) augmentations)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional",)
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(8, 2), (16, 4), (32, 4)]
    return [(8, 2), (16, 4), (32, 4), (64, 8), (128, 8), (256, 16)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E2 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)

    for m, c in _grid(config):
        generators = spawn_generators(stable_seed(config.seed, m, c, "e2"), trials)
        worst_fraction = 0.0
        total_augs = 0
        total_bound = 0.0
        violations = 0
        for rng in generators:
            instance = single_edge_workload(
                num_edges=m,
                num_requests=5 * m,
                capacity=c,
                concentration=1.0,
                cost_sampler=lambda count, r: uniform_costs(count, 1.0, 4.0, random_state=r),
                random_state=rng,
            )
            opt = solve_admission_lp(instance)
            alpha = max(opt.cost, 1e-9)
            algo = make_admission_algorithm(
                "fractional", instance, alpha=alpha, backend=config.engine
            )
            algo.process_sequence(
                compile_instance(instance) if config.compile else instance.requests
            )
            bound = lemma1_augmentation_bound(alpha, algo.g, algo.c)
            total_augs += algo.num_augmentations
            total_bound += bound
            if bound > 0:
                worst_fraction = max(worst_fraction, algo.num_augmentations / bound)
            if algo.num_augmentations > bound + 1e-9:
                violations += 1
        result.rows.append(
            {
                "m": m,
                "c": c,
                "trials": trials,
                "augmentations_total": total_augs,
                "bound_total": total_bound,
                "augs/bound_worst": worst_fraction,
                "violations": violations,
            }
        )
    result.notes.append("Lemma 1 requires augs/bound_worst <= 1 and violations == 0 everywhere.")
    return result


register(EXPERIMENT_ID, run)
