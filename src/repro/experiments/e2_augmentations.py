"""E2 — Lemma 1: the number of weight augmentations is ``O(alpha log(gc))``.

The experiment runs the fractional algorithm with the optimal fractional cost
``alpha`` supplied (the setting Lemma 1 analyses), counts the weight
augmentations actually performed, and compares them with the explicit bound
``alpha * log2(2 g c)``.  The reported ``augs/bound`` column must never exceed
1 if the implementation matches the proof.

Each grid cell is one :class:`~repro.api.spec.RunSpec`; the augmentation
count and the mechanism parameters (``g``, ``c``, ``alpha``) come back on
each trial row's ``extra``, so the bound is evaluated from the result set
rather than from a live algorithm object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import Runner, RunSpec
from repro.core.bounds import lemma1_augmentation_bound
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.experiments.e1_fractional import OracleAlphaFractional
from repro.utils.rng import stable_seed
from repro.workloads import single_edge_workload, uniform_costs

EXPERIMENT_ID = "E2"
TITLE = "Weight-augmentation count vs Lemma 1 bound"
VALIDATES = "Lemma 1 (at most O(alpha log(gc)) augmentations)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional",)
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


@dataclass(frozen=True)
class E2Workload:
    """Picklable congestion workload builder for one (m, c) grid cell."""

    m: int
    c: int

    def __call__(self, rng: np.random.Generator):
        return single_edge_workload(
            num_edges=self.m,
            num_requests=5 * self.m,
            capacity=self.c,
            concentration=1.0,
            cost_sampler=lambda count, r: uniform_costs(count, 1.0, 4.0, random_state=r),
            random_state=rng,
        )


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(8, 2), (16, 4), (32, 4)]
    return [(8, 2), (16, 4), (32, 4), (64, 8), (128, 8), (256, 16)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E2 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)
    runner = Runner()

    for m, c in _grid(config):
        spec = RunSpec(
            factory=E2Workload(m, c),
            algorithm=OracleAlphaFractional(config.engine),
            backend=config.backend,
            mode="compiled" if config.compile else "batch",
            record=config.record,
            trials=trials,
            jobs=config.engine.effective_jobs,
            seed=stable_seed(config.seed, m, c, "e2"),
            label=f"E2 m={m} c={c}",
        )
        worst_fraction = 0.0
        total_augs = 0
        total_bound = 0.0
        violations = 0
        for row in runner.run(spec):
            augmentations = int(row.extra["num_augmentations"])
            bound = lemma1_augmentation_bound(
                row.extra["alpha"], row.extra["g"], row.extra["c"]
            )
            total_augs += augmentations
            total_bound += bound
            if bound > 0:
                worst_fraction = max(worst_fraction, augmentations / bound)
            if augmentations > bound + 1e-9:
                violations += 1
        result.rows.append(
            {
                "m": m,
                "c": c,
                "trials": trials,
                "augmentations_total": total_augs,
                "bound_total": total_bound,
                "augs/bound_worst": worst_fraction,
                "violations": violations,
            }
        )
    result.notes.append("Lemma 1 requires augs/bound_worst <= 1 and violations == 0 everywhere.")
    return result


register(EXPERIMENT_ID, run)
