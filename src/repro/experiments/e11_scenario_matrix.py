"""E11 — the scenario matrix: competitive ratios across generated traffic.

The theorems promise competitiveness against *every* adversary, but E1–E10
each probe one hand-picked construction.  E11 runs the paper's algorithms
over the scenario registry's serving-style families — bursty/MMPP arrivals,
Zipf cost mixes, diurnal curves, flash crowds, interleaved adversaries,
topology stress — next to a naive baseline, through
:meth:`repro.api.RunSpec.grid` and the :class:`~repro.api.Runner` (the same
cells, seeds and numbers the legacy sweep produced).  The quantity to watch
is the *spread*: the paper's algorithms should stay within a small factor of
the offline bound on every row, while the baseline's ratio varies wildly
with the traffic shape.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Runner, RunSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult, register

EXPERIMENT_ID = "E11"
TITLE = "Scenario matrix: algorithms x generated traffic families"
VALIDATES = "the competitive guarantees hold across serving-style scenarios"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional", "randomized", "doubling", "reject-when-full")
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _scenarios(config: ExperimentConfig):
    quick = ["bursty", "zipf_costs", "flash_crowd"]
    if config.quick:
        return quick
    return quick + ["diurnal", "adversarial_mix", "topology_stress"]


def _algorithms(config: ExperimentConfig):
    if config.quick:
        return ["fractional", "randomized", "reject-when-full"]
    return ["fractional", "randomized", "doubling", "reject-when-full"]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the scenario matrix and return one row per (scenario, algorithm)."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    specs = RunSpec.grid(
        _scenarios(config),
        _algorithms(config),
        backends=[config.backend],
        modes=["compiled" if config.compile else "batch"],
        seed=config.seed,
        trials=config.scaled_trials(5),
        jobs=config.engine.effective_jobs,
        record=config.record,
        offline="lp",
        ilp_time_limit=config.ilp_time_limit,
    )
    outcome = Runner().run(specs)
    result.rows = [
        {"scenario": row.pop("source"), **row}
        for row in outcome.aggregate(by=("source", "algorithm"))
    ]
    result.metadata["comparison"] = outcome.comparison_table(index="source")
    result.notes.append(
        "offline=lp is a lower bound on OPT, so ratios are conservative (upper bounds); "
        "the paper's algorithms should stay flat across rows while the baseline swings."
    )
    return result


register(EXPERIMENT_ID, run)
