"""E4 — Theorem 4: the unweighted randomized algorithm is ``O(log m log c)``-competitive.

Unit-cost congestion workloads, sweeping ``m`` and ``c`` independently so the
two logarithmic factors can be seen separately.  The comparator is the exact
integral optimum; the bound column is ``log2(m) * log2(c)``.

Each (workload, m, c) cell is one :class:`~repro.api.spec.RunSpec` with the
legacy seeds and factories, so the numbers are unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Runner, RunSpec
from repro.core.bounds import randomized_admission_bound
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.utils.rng import stable_seed
from repro.workloads import overloaded_edge_adversary, repeated_overload_adversary

EXPERIMENT_ID = "E4"
TITLE = "Randomized admission control, unweighted workloads"
VALIDATES = "Theorem 4 (O(log m log c) competitive, unweighted)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("randomized",)
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(8, 2), (16, 4), (32, 8)]
    return [(8, 2), (16, 4), (32, 8), (64, 8), (128, 16), (256, 16)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E4 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)
    runner = Runner()

    workloads = {
        "overloaded-edges": lambda m, c, rng: overloaded_edge_adversary(
            num_edges=m,
            capacity=c,
            num_hot_edges=max(2, m // 8),
            overload_factor=3.0,
            random_state=rng,
        ),
        "repeated-overload": lambda m, c, rng: repeated_overload_adversary(
            capacity=c, num_waves=max(2, m // 8), num_side_edges=max(2, m - 1), random_state=rng
        ),
    }

    for m, c in _grid(config):
        bound = randomized_admission_bound(m, c, weighted=False)
        for workload_name, make in workloads.items():
            spec = RunSpec(
                factory=lambda rng, make=make, m=m, c=c: make(m, c, rng),
                algorithm="randomized",
                algorithm_params={"weighted": False},
                backend=config.backend,
                mode="compiled" if config.compile else "batch",
                record=config.record,
                trials=trials,
                jobs=config.engine.effective_jobs,
                seed=stable_seed(config.seed, m, c, workload_name, "e4"),
                offline="ilp",
                ilp_time_limit=config.ilp_time_limit,
                randomized_bound=True,
                label=f"{workload_name} m={m} c={c}",
            )
            cell = runner.run(spec)
            stats = cell.ratio_stats()
            result.rows.append(
                {
                    "workload": workload_name,
                    "m": m,
                    "c": c,
                    "trials": trials,
                    "ratio_mean": stats.mean,
                    "ratio_max": stats.maximum,
                    "bound": bound.value,
                    "ratio/bound": stats.mean / bound.value,
                    "feasible": cell.all_feasible(),
                }
            )
    result.notes.append("ratio/bound staying bounded as m, c grow is Theorem 4's prediction.")
    return result


register(EXPERIMENT_ID, run)
