"""E5 — Section 4: online set cover with repetitions via the admission-control reduction.

Runs :class:`~repro.core.setcover_reduction.OnlineSetCoverViaAdmissionControl`
(the paper's ``O(log m log n)`` / ``O(log^2(mn))`` randomized algorithm) on
random and adversarial set systems with repeated arrivals, verifying that

* the produced cover always satisfies every element's demand (correctness of
  the reduction), and
* the cost ratio against the exact multi-cover optimum stays within the
  polylog bound.

Each (workload, n, m) cell is one :class:`~repro.api.spec.RunSpec` with
``problem="setcover"``; seeds and factories match the legacy trial runner,
so the numbers are unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Runner, RunSpec
from repro.core.bounds import set_cover_randomized_bound
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.setcover import SetCoverInstance
from repro.utils.rng import stable_seed
from repro.workloads import (
    disjoint_blocks_instance,
    random_setcover_instance,
    repetition_heavy_arrivals,
)
from repro.workloads.setcover_random import random_set_system

EXPERIMENT_ID = "E5"
TITLE = "Online set cover with repetitions via the reduction"
VALIDATES = "Section 4 reduction; O(log m log n) unweighted / O(log^2(mn)) weighted"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ()
USES_SETCOVER = ("reduction",)

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(16, 8), (32, 12), (48, 16)]
    return [(16, 8), (32, 12), (48, 16), (96, 24), (160, 32), (256, 48)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E5 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)
    runner = Runner()

    def random_instance(n, m, rng):
        return random_setcover_instance(
            num_elements=n,
            num_sets=m,
            num_arrivals=2 * n,
            membership_probability=min(0.5, 4.0 / m + 0.1),
            random_state=rng,
        )

    def repetition_instance(n, m, rng):
        system = random_set_system(n, m, min(0.5, 4.0 / m + 0.1), random_state=rng)
        arrivals = repetition_heavy_arrivals(system, random_state=rng)
        return SetCoverInstance(system, arrivals, name="repetition-heavy")

    def blocks_instance(n, m, rng):
        num_blocks = max(2, m // 4)
        block_size = max(2, n // num_blocks)
        return disjoint_blocks_instance(
            num_blocks=num_blocks,
            block_size=block_size,
            blocks_requested=max(1, num_blocks // 2),
            random_state=rng,
        )

    workloads = {
        "random-arrivals": random_instance,
        "repetition-heavy": repetition_instance,
        "disjoint-blocks": blocks_instance,
    }

    for n, m in _grid(config):
        bound = set_cover_randomized_bound(m, n, weighted=False)
        for workload_name, make in workloads.items():
            spec = RunSpec(
                problem="setcover",
                factory=lambda rng, make=make, n=n, m=m: make(n, m, rng),
                algorithm="reduction",
                backend=config.backend,
                record=config.record,
                trials=trials,
                jobs=config.engine.effective_jobs,
                seed=stable_seed(config.seed, n, m, workload_name, "e5"),
                offline="ilp",
                ilp_time_limit=config.ilp_time_limit,
                label=f"{workload_name} n={n} m={m}",
            )
            cell = runner.run(spec)
            stats = cell.ratio_stats()
            result.rows.append(
                {
                    "workload": workload_name,
                    "n": n,
                    "m": m,
                    "trials": trials,
                    "ratio_mean": stats.mean,
                    "ratio_max": stats.maximum,
                    "bound": bound.value,
                    "ratio/bound": stats.mean / bound.value,
                    "all_covered": cell.all_feasible(),
                }
            )
    result.notes.append("all_covered must be 'yes' everywhere: the reduction always yields a feasible multi-cover.")
    return result


register(EXPERIMENT_ID, run)
