"""E3 — Theorem 3: the randomized algorithm is ``O(log^2(mc))``-competitive (weighted).

The experiment runs the guess-and-double randomized algorithm (the full
pipeline a user would deploy: no oracle knowledge of OPT) on weighted
congestion workloads with heavy-tailed and bimodal costs, and reports the
measured competitive ratio against the exact integral optimum next to the
``log2(mc)^2`` bound.

Every (workload, m, c) cell is one :class:`~repro.api.spec.RunSpec` executed
by the :class:`~repro.api.runner.Runner`; seeds, factories and the offline
comparator are exactly those of the legacy trial runner, so the numbers are
unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Runner, RunSpec
from repro.core.bounds import randomized_admission_bound
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.utils.rng import stable_seed
from repro.workloads import (
    bimodal_costs,
    cheap_then_expensive_adversary,
    pareto_costs,
    single_edge_workload,
)

EXPERIMENT_ID = "E3"
TITLE = "Randomized admission control, weighted workloads"
VALIDATES = "Theorem 3 (O(log^2(mc)) competitive, weighted)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("doubling",)
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(8, 2), (16, 4), (32, 4)]
    return [(8, 2), (16, 4), (32, 4), (64, 8), (128, 8)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E3 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)
    runner = Runner()

    workloads = {
        "pareto-single-edge": lambda m, c, rng: single_edge_workload(
            num_edges=m,
            num_requests=4 * m,
            capacity=c,
            concentration=1.2,
            cost_sampler=lambda count, r: pareto_costs(count, shape=1.5, random_state=r),
            random_state=rng,
        ),
        "bimodal-single-edge": lambda m, c, rng: single_edge_workload(
            num_edges=m,
            num_requests=4 * m,
            capacity=c,
            concentration=1.5,
            cost_sampler=lambda count, r: bimodal_costs(count, 1.0, 50.0, 0.2, random_state=r),
            random_state=rng,
        ),
        "cheap-then-expensive": lambda m, c, rng: cheap_then_expensive_adversary(
            num_edges=m, capacity=c, expensive_cost=25.0
        ),
    }

    for m, c in _grid(config):
        bound = randomized_admission_bound(m, c, weighted=True)
        for workload_name, make in workloads.items():
            spec = RunSpec(
                factory=lambda rng, make=make, m=m, c=c: make(m, c, rng),
                algorithm="doubling",
                algorithm_params={"weighted": True},
                backend=config.backend,
                mode="compiled" if config.compile else "batch",
                record=config.record,
                trials=trials,
                jobs=config.engine.effective_jobs,
                seed=stable_seed(config.seed, m, c, workload_name),
                offline="ilp",
                ilp_time_limit=config.ilp_time_limit,
                label=f"{workload_name} m={m} c={c}",
            )
            cell = runner.run(spec)
            stats = cell.ratio_stats()
            result.rows.append(
                {
                    "workload": workload_name,
                    "m": m,
                    "c": c,
                    "trials": trials,
                    "ratio_mean": stats.mean,
                    "ratio_max": stats.maximum,
                    "bound": bound.value,
                    "ratio/bound": stats.mean / bound.value,
                    "feasible": cell.all_feasible(),
                }
            )
    result.notes.append(
        "The measured ratio should grow no faster than log^2(mc); ratio/bound stays bounded."
    )
    return result


register(EXPERIMENT_ID, run)
