"""Experiment suite (E1–E11): the paper's theorems as measurable experiments.

Importing this package registers every experiment; use::

    from repro.experiments import run_experiment, all_experiments
    result = run_experiment("E1")
    print(result.table())
"""

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
)

# Importing the modules registers them.
from repro.experiments import (  # noqa: F401  (imported for registration side effect)
    e1_fractional,
    e2_augmentations,
    e3_randomized_weighted,
    e4_randomized_unweighted,
    e5_reduction,
    e6_bicriteria,
    e7_potentials,
    e8_baselines,
    e9_doubling,
    e10_scaling,
    e11_scenario_matrix,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "register",
    "run_experiment",
]


def run_experiment(experiment_id: str, config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run one experiment by id (``"E1"`` ... ``"E11"``)."""
    runner = get_experiment(experiment_id)
    return runner(config)
