"""Experiment harness: shared configuration, result container and registry.

Every experiment module (``e1_fractional`` ... ``e10_scaling``) exposes::

    EXPERIMENT_ID, TITLE, VALIDATES
    run(config: ExperimentConfig | None = None) -> ExperimentResult

The benchmark suite calls ``run`` with ``quick=True`` settings and prints the
resulting table; the EXPERIMENTS.md numbers come from the default (fuller)
settings.  Keeping configuration in one dataclass makes the sweeps
reproducible (a single master seed) and lets the scaling experiment reuse the
other experiments' machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.engine.config import EngineConfig
from repro.engine.registry import EXPERIMENTS

__all__ = ["ExperimentConfig", "ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes
    ----------
    quick:
        Use the reduced parameter grid (what the benchmarks run); the full
        grid is used for the numbers recorded in EXPERIMENTS.md.
    seed:
        Master seed; every trial derives its own stream from it.
    num_trials:
        Independent repetitions per configuration point.
    ilp_time_limit:
        Time limit (seconds) handed to the exact offline solvers.
    backend:
        Weight-mechanism backend every experiment builds its algorithms with
        (``"python"`` or ``"numpy"``); resolved through
        :data:`repro.engine.registry.WEIGHT_BACKENDS`.
    jobs:
        Worker count for the parallel trial executor (``1`` = serial,
        ``0`` = one worker per core).
    compile:
        Compile admission instances once (edge interning + CSR paths) and
        stream them through the algorithms' indexed fast paths.  Results are
        identical either way; ``--no-compile`` exists for A/B timing.
    record:
        Materialize per-arrival weight-mechanism diagnostics.  Algorithms
        that consume them (the randomized rounding) keep recording regardless.
    """

    quick: bool = True
    seed: int = 20050718  # SPAA 2005 conference date — an arbitrary fixed seed.
    num_trials: int = 3
    ilp_time_limit: float = 20.0
    backend: str = "python"
    jobs: int = 1
    compile: bool = True
    record: bool = True

    def scaled_trials(self, full: int) -> int:
        """Number of trials to run: ``num_trials`` when quick, ``full`` otherwise."""
        return self.num_trials if self.quick else full

    @property
    def engine(self) -> EngineConfig:
        """The engine view of this configuration (backend + jobs + compile/record)."""
        return EngineConfig(
            backend=self.backend, jobs=self.jobs, compile=self.compile, record=self.record
        )


@dataclass
class ExperimentResult:
    """Uniform output of every experiment."""

    experiment_id: str
    title: str
    validates: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def table(self, columns: Optional[Sequence[str]] = None, float_format: str = ".3f") -> str:
        """Render the result rows as a plain-text table."""
        title = f"[{self.experiment_id}] {self.title} — validates {self.validates}"
        text = format_table(self.rows, columns, title=title, float_format=float_format)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def max_value(self, column: str) -> float:
        """Maximum of a numeric column over all rows (NaN if absent)."""
        values = [row[column] for row in self.rows if column in row]
        return max(values) if values else float("nan")

    def mean_value(self, column: str) -> float:
        """Mean of a numeric column over all rows (NaN if absent)."""
        values = [row[column] for row in self.rows if column in row]
        return sum(values) / len(values) if values else float("nan")


def register(experiment_id: str, runner: Callable[..., ExperimentResult]) -> None:
    """Register an experiment runner under its id (``"E1"`` ... ``"E10"``).

    Delegates to the engine's :data:`~repro.engine.registry.EXPERIMENTS`
    registry; re-registering an id replaces the previous runner (experiments
    are re-registered when their module reloads).
    """
    EXPERIMENTS.register(experiment_id, runner, overwrite=True)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment runner (:class:`KeyError` if unknown)."""
    return EXPERIMENTS.get(experiment_id)


def all_experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    """All registered experiments keyed by id."""
    return dict(EXPERIMENTS.items())
