"""E6 — Theorem 7: the deterministic bicriteria algorithm.

Sweeps ``(n, m)`` and the slack ``eps``; for every configuration the experiment
reports the measured cost ratio against the exact (full-coverage) multi-cover
optimum, the worst per-element coverage fraction actually achieved, and the
``log2(m) log2(n)`` bound.  Theorem 7's two claims map to two columns:

* ``ratio/bound`` stays bounded (competitiveness), and
* ``min_coverage_fraction >= 1 - eps`` (the bicriteria guarantee).
"""

from __future__ import annotations

from typing import Optional

from repro.core.bounds import bicriteria_set_cover_bound
from repro.core.protocols import run_setcover
from repro.engine.runtime import make_setcover_algorithm
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.setcover import SetCoverInstance
from repro.offline import solve_set_multicover_ilp
from repro.utils.mathx import safe_ratio
from repro.utils.rng import spawn_generators, stable_seed
from repro.workloads.setcover_random import random_set_system, repetition_heavy_arrivals

EXPERIMENT_ID = "E6"
TITLE = "Deterministic bicriteria online set cover"
VALIDATES = "Theorem 7 (O(log m log n) competitive with (1-eps)k coverage)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ()
USES_SETCOVER = ("bicriteria",)

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(16, 8), (32, 16)]
    return [(16, 8), (32, 16), (64, 24), (128, 32), (192, 48)]


def _eps_values(config: ExperimentConfig):
    if config.quick:
        return [0.1, 0.3]
    return [0.05, 0.1, 0.2, 0.3, 0.5]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E6 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(4)

    for n, m in _grid(config):
        bound = bicriteria_set_cover_bound(m, n)
        for eps in _eps_values(config):
            generators = spawn_generators(stable_seed(config.seed, n, m, eps, "e6"), trials)
            ratios = []
            min_fraction = 1.0
            augmentations = 0
            for rng in generators:
                system = random_set_system(n, m, min(0.5, 4.0 / m + 0.1), random_state=rng)
                arrivals = repetition_heavy_arrivals(system, random_state=rng)
                instance = SetCoverInstance(system, arrivals, name=f"repetition n={n} m={m}")
                algorithm = make_setcover_algorithm(
                    "bicriteria", instance, eps=eps, backend=config.engine
                )
                run_setcover(algorithm, instance)
                opt = solve_set_multicover_ilp(system, instance.demands(), time_limit=config.ilp_time_limit)
                ratios.append(safe_ratio(algorithm.cost(), opt.cost))
                augmentations += algorithm.num_augmentations
                for element, demand in instance.demands().items():
                    fraction = algorithm.coverage(element) / demand if demand else 1.0
                    min_fraction = min(min_fraction, fraction)
            mean_ratio = sum(ratios) / len(ratios)
            result.rows.append(
                {
                    "n": n,
                    "m": m,
                    "eps": eps,
                    "trials": trials,
                    "ratio_mean": mean_ratio,
                    "ratio_max": max(ratios),
                    "bound": bound.value,
                    "ratio/bound": mean_ratio / bound.value,
                    "min_coverage_fraction": min_fraction,
                    "coverage_ok": min_fraction >= (1.0 - eps) - 1e-9,
                    "augmentations": augmentations,
                }
            )
    result.notes.append(
        "coverage_ok must hold everywhere; the offline optimum covers demands fully, so the "
        "ratio compares a (1-eps)-coverage solution against a full-coverage optimum, as in the paper."
    )
    return result


register(EXPERIMENT_ID, run)
