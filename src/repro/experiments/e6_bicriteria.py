"""E6 — Theorem 7: the deterministic bicriteria algorithm.

Sweeps ``(n, m)`` and the slack ``eps``; for every configuration the experiment
reports the measured cost ratio against the exact (full-coverage) multi-cover
optimum, the worst per-element coverage fraction actually achieved, and the
``log2(m) log2(n)`` bound.  Theorem 7's two claims map to two columns:

* ``ratio/bound`` stays bounded (competitiveness), and
* ``min_coverage_fraction >= 1 - eps`` (the bicriteria guarantee).

Each (n, m, eps) cell is one :class:`~repro.api.spec.RunSpec` with
``problem="setcover"``; the per-element coverage fractions are extracted by a
measurement probe that runs in the worker while the algorithm object is
alive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.api import Runner, RunSpec
from repro.core.bounds import bicriteria_set_cover_bound
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.setcover import SetCoverInstance
from repro.utils.rng import stable_seed
from repro.workloads.setcover_random import random_set_system, repetition_heavy_arrivals

EXPERIMENT_ID = "E6"
TITLE = "Deterministic bicriteria online set cover"
VALIDATES = "Theorem 7 (O(log m log n) competitive with (1-eps)k coverage)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ()
USES_SETCOVER = ("bicriteria",)

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


@dataclass(frozen=True)
class E6Workload:
    """Picklable repetition-heavy set-cover workload for one (n, m) cell."""

    n: int
    m: int

    def __call__(self, rng: np.random.Generator) -> SetCoverInstance:
        system = random_set_system(
            self.n, self.m, min(0.5, 4.0 / self.m + 0.1), random_state=rng
        )
        arrivals = repetition_heavy_arrivals(system, random_state=rng)
        return SetCoverInstance(system, arrivals, name=f"repetition n={self.n} m={self.m}")


def coverage_probe(instance: SetCoverInstance, algorithm: Any) -> Dict[str, Any]:
    """Measure the worst per-element coverage fraction of a finished run."""
    min_fraction = 1.0
    for element, demand in instance.demands().items():
        fraction = algorithm.coverage(element) / demand if demand else 1.0
        min_fraction = min(min_fraction, fraction)
    return {
        "min_coverage_fraction": min_fraction,
        "num_augmentations": algorithm.num_augmentations,
    }


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(16, 8), (32, 16)]
    return [(16, 8), (32, 16), (64, 24), (128, 32), (192, 48)]


def _eps_values(config: ExperimentConfig):
    if config.quick:
        return [0.1, 0.3]
    return [0.05, 0.1, 0.2, 0.3, 0.5]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E6 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(4)
    runner = Runner()

    for n, m in _grid(config):
        bound = bicriteria_set_cover_bound(m, n)
        for eps in _eps_values(config):
            spec = RunSpec(
                problem="setcover",
                factory=E6Workload(n, m),
                algorithm="bicriteria",
                algorithm_params={"eps": eps},
                backend=config.backend,
                record=config.record,
                trials=trials,
                jobs=config.engine.effective_jobs,
                seed=stable_seed(config.seed, n, m, eps, "e6"),
                offline="ilp",
                ilp_time_limit=config.ilp_time_limit,
                bicriteria_bound=True,
                probe=coverage_probe,
                label=f"E6 n={n} m={m} eps={eps}",
            )
            cell = runner.run(spec)
            ratios = cell.ratios()
            min_fraction = min(row.extra["min_coverage_fraction"] for row in cell)
            augmentations = sum(int(row.extra["num_augmentations"]) for row in cell)
            mean_ratio = sum(ratios) / len(ratios)
            result.rows.append(
                {
                    "n": n,
                    "m": m,
                    "eps": eps,
                    "trials": trials,
                    "ratio_mean": mean_ratio,
                    "ratio_max": max(ratios),
                    "bound": bound.value,
                    "ratio/bound": mean_ratio / bound.value,
                    "min_coverage_fraction": min_fraction,
                    "coverage_ok": min_fraction >= (1.0 - eps) - 1e-9,
                    "augmentations": augmentations,
                }
            )
    result.notes.append(
        "coverage_ok must hold everywhere; the offline optimum covers demands fully, so the "
        "ratio compares a (1-eps)-coverage solution against a full-coverage optimum, as in the paper."
    )
    return result


register(EXPERIMENT_ID, run)
