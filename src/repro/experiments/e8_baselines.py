"""E8 — baseline comparison on adversarial workloads.

Section 1 motivates the paper in two steps: (i) benefit-maximising algorithms
can reject far more than necessary, and (ii) the simple deterministic
algorithms known before (Blum–Kalai–Kleinberg) pay polynomial factors where a
polylogarithmic one is achievable.  The experiment plays the paper's
algorithms and the baseline family on the adversarial workload suite and
reports one row per (workload, algorithm) with the measured ratio, so the
"who wins, by roughly what factor" shape can be read off directly.

Each (workload, algorithm) pair is one single-trial
:class:`~repro.api.spec.RunSpec` over the pre-built adversarial instance;
the algorithm rng is pinned per pair (exactly the legacy seeds), so the
numbers are unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.api import FixedSeedAlgorithmFactory, Runner, RunSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.utils.rng import as_generator, stable_seed
from repro.workloads import (
    benefit_objective_trap,
    cheap_then_expensive_adversary,
    long_vs_short_adversary,
    overloaded_edge_adversary,
    repeated_overload_adversary,
)

EXPERIMENT_ID = "E8"
TITLE = "Paper's algorithms vs baselines on adversarial workloads"
VALIDATES = "Section 1 motivation; comparison against BKK-style baselines"

#: Algorithm registry keys this experiment resolves through the engine
#: (display label -> (registry key, extra kwargs)).
ALGORITHM_TABLE = {
    "Doubling (paper)": ("doubling", {}),
    "Randomized (no alpha)": ("randomized", {}),
    "RejectWhenFull": ("reject-when-full", {}),
    "KeepExpensive": ("keep-expensive", {}),
    "GreedySwap": ("greedy-swap", {}),
    "ThresholdPreemption": ("threshold", {}),
    "ExponentialBenefit": ("exponential-benefit", {}),
}
USES_ADMISSION = tuple(key for key, _ in ALGORITHM_TABLE.values())
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _workloads(config: ExperimentConfig) -> Dict[str, Callable]:
    scale = 1 if config.quick else 3
    return {
        "cheap-then-expensive": lambda rng: cheap_then_expensive_adversary(
            num_edges=8 * scale, capacity=2, expensive_cost=50.0
        ),
        "long-vs-short": lambda rng: long_vs_short_adversary(num_edges=12 * scale, capacity=1),
        "benefit-trap": lambda rng: benefit_objective_trap(num_groups=6 * scale, group_size=4),
        "overloaded-edges": lambda rng: overloaded_edge_adversary(
            num_edges=16 * scale, capacity=2, num_hot_edges=3, random_state=rng
        ),
        "repeated-overload": lambda rng: repeated_overload_adversary(
            capacity=3, num_waves=4 * scale, random_state=rng
        ),
    }


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run every algorithm on every adversarial workload and tabulate the ratios."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    runner = Runner()

    for workload_name, make in _workloads(config).items():
        rng = as_generator(stable_seed(config.seed, workload_name, "e8"))
        # One instance serves every algorithm on this workload; compilation
        # is memoized on the instance, so one compile serves them all too.
        instance = make(rng)
        for algo_name, (key, extra) in ALGORITHM_TABLE.items():
            spec = RunSpec(
                instance=instance,
                algorithm=FixedSeedAlgorithmFactory(
                    key,
                    config.engine,
                    stable_seed(config.seed, workload_name, algo_name, "e8"),
                    tuple(sorted(extra.items())),
                ),
                backend=config.backend,
                mode="compiled" if config.compile else "batch",
                record=config.record,
                trials=1,
                offline="ilp",
                ilp_time_limit=config.ilp_time_limit,
                label=f"{workload_name} x {algo_name}",
            )
            for row in runner.run(spec):
                result.rows.append(
                    {
                        "workload": workload_name,
                        "algorithm": algo_name,
                        "online": row.online_cost,
                        "offline": row.offline_cost,
                        "ratio": row.ratio,
                        "feasible": row.feasible,
                    }
                )
    result.notes.append(
        "Expected shape: the non-preemptive and benefit-maximising baselines blow up on "
        "cheap-then-expensive / long-vs-short / benefit-trap, while the paper's algorithms stay polylogarithmic."
    )
    return result


register(EXPERIMENT_ID, run)
