"""E1 — Theorem 2: the fractional algorithm is ``O(log(mc))``-competitive.

For a sweep of ``(m, c)`` the experiment runs the fractional algorithm (with
``alpha`` set to the optimal fractional cost, as the theorem assumes after the
guess-and-double reduction) on congested single-edge and adversarial workloads,
and reports the ratio of the fractional online cost to the optimal fractional
cost next to the ``log2(mc)`` (weighted) / ``log2(c)`` (unweighted) bound.
The quantity to watch is ``ratio / bound``: Theorem 2 says it stays bounded by
a constant as ``m`` and ``c`` grow.

Each grid cell is one :class:`~repro.api.spec.RunSpec` executed by the
:class:`~repro.api.runner.Runner`; the workload builders and the oracle-alpha
algorithm factory are module-level dataclasses so cells can fan out over
processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import Runner, RunSpec
from repro.core.bounds import fractional_admission_bound
from repro.engine.config import EngineConfig
from repro.engine.runtime import make_admission_algorithm
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.offline import solve_admission_lp_cached
from repro.utils.rng import stable_seed
from repro.workloads import overloaded_edge_adversary, pareto_costs, single_edge_workload

EXPERIMENT_ID = "E1"
TITLE = "Fractional admission control vs fractional OPT"
VALIDATES = "Theorem 2 (O(log mc) weighted, O(log c) unweighted)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional",)
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


@dataclass(frozen=True)
class E1Workload:
    """Picklable workload builder for one (m, c, weighted) grid cell."""

    m: int
    c: int
    weighted: bool

    def __call__(self, rng: np.random.Generator):
        if self.weighted:
            return single_edge_workload(
                num_edges=self.m,
                num_requests=4 * self.m,
                capacity=self.c,
                concentration=1.2,
                cost_sampler=lambda count, r: pareto_costs(count, shape=1.5, random_state=r),
                random_state=rng,
            )
        return overloaded_edge_adversary(
            num_edges=self.m,
            capacity=self.c,
            num_hot_edges=max(2, self.m // 8),
            overload_factor=2.5,
            random_state=rng,
        )


@dataclass(frozen=True)
class OracleAlphaFractional:
    """Build the fractional algorithm with ``alpha`` set to the LP optimum.

    Theorem 2 analyses the algorithm *after* the guess-and-double reduction,
    i.e. with the optimal fractional cost supplied; the factory computes it
    per instance inside the worker so specs stay declarative.
    """

    config: EngineConfig
    __name__ = "fractional[alpha=opt]"

    def __call__(self, instance, rng: np.random.Generator):
        # Cached: the trial evaluation solves the same instance's LP as the
        # comparator, so the pair costs one solve per instance, not two.
        opt = solve_admission_lp_cached(instance)
        return make_admission_algorithm(
            "fractional", instance, alpha=max(opt.cost, 1e-9), backend=self.config
        )


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(8, 2), (16, 4), (32, 8)]
    return [(8, 2), (16, 4), (32, 8), (64, 8), (128, 16), (256, 32)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E1 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)
    runner = Runner()

    for m, c in _grid(config):
        for weighted in (False, True):
            spec = RunSpec(
                factory=E1Workload(m, c, weighted),
                algorithm=(
                    OracleAlphaFractional(config.engine) if weighted else "fractional"
                ),
                backend=config.backend,
                mode="compiled" if config.compile else "batch",
                record=config.record,
                trials=trials,
                jobs=config.engine.effective_jobs,
                seed=stable_seed(config.seed, m, c, weighted),
                label=f"E1 m={m} c={c} weighted={weighted}",
            )
            ratios = runner.run(spec).ratios()
            bound = fractional_admission_bound(m, c, weighted=weighted)
            mean_ratio = sum(ratios) / len(ratios)
            result.rows.append(
                {
                    "m": m,
                    "c": c,
                    "weighted": weighted,
                    "trials": trials,
                    "ratio_mean": mean_ratio,
                    "ratio_max": max(ratios),
                    "bound": bound.value,
                    "ratio/bound": mean_ratio / bound.value,
                }
            )
    result.notes.append(
        "ratio/bound should stay roughly constant (the hidden O(1)) as m and c grow."
    )
    return result


register(EXPERIMENT_ID, run)
