"""E1 — Theorem 2: the fractional algorithm is ``O(log(mc))``-competitive.

For a sweep of ``(m, c)`` the experiment runs the fractional algorithm (with
``alpha`` set to the optimal fractional cost, as the theorem assumes after the
guess-and-double reduction) on congested single-edge and adversarial workloads,
and reports the ratio of the fractional online cost to the optimal fractional
cost next to the ``log2(mc)`` (weighted) / ``log2(c)`` (unweighted) bound.
The quantity to watch is ``ratio / bound``: Theorem 2 says it stays bounded by
a constant as ``m`` and ``c`` grow.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bounds import fractional_admission_bound
from repro.engine.runtime import make_admission_algorithm
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.compiled import compile_instance
from repro.offline import solve_admission_lp
from repro.utils.mathx import safe_ratio
from repro.utils.rng import spawn_generators, stable_seed
from repro.workloads import overloaded_edge_adversary, pareto_costs, single_edge_workload

EXPERIMENT_ID = "E1"
TITLE = "Fractional admission control vs fractional OPT"
VALIDATES = "Theorem 2 (O(log mc) weighted, O(log c) unweighted)"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("fractional",)
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(8, 2), (16, 4), (32, 8)]
    return [(8, 2), (16, 4), (32, 8), (64, 8), (128, 16), (256, 32)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E1 sweep and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(5)

    for m, c in _grid(config):
        for weighted in (False, True):
            generators = spawn_generators(stable_seed(config.seed, m, c, weighted), trials)
            ratios: List[float] = []
            for rng in generators:
                if weighted:
                    instance = single_edge_workload(
                        num_edges=m,
                        num_requests=4 * m,
                        capacity=c,
                        concentration=1.2,
                        cost_sampler=lambda count, r: pareto_costs(count, shape=1.5, random_state=r),
                        random_state=rng,
                    )
                else:
                    instance = overloaded_edge_adversary(
                        num_edges=m,
                        capacity=c,
                        num_hot_edges=max(2, m // 8),
                        overload_factor=2.5,
                        random_state=rng,
                    )
                opt = solve_admission_lp(instance)
                algo = make_admission_algorithm(
                    "fractional",
                    instance,
                    alpha=max(opt.cost, 1e-9) if weighted else None,
                    backend=config.engine,
                )
                algo.process_sequence(
                    compile_instance(instance) if config.compile else instance.requests
                )
                ratios.append(safe_ratio(algo.fractional_cost(), opt.cost))
            bound = fractional_admission_bound(m, c, weighted=weighted)
            mean_ratio = sum(ratios) / len(ratios)
            result.rows.append(
                {
                    "m": m,
                    "c": c,
                    "weighted": weighted,
                    "trials": trials,
                    "ratio_mean": mean_ratio,
                    "ratio_max": max(ratios),
                    "bound": bound.value,
                    "ratio/bound": mean_ratio / bound.value,
                }
            )
    result.notes.append(
        "ratio/bound should stay roughly constant (the hidden O(1)) as m and c grow."
    )
    return result


register(EXPERIMENT_ID, run)
