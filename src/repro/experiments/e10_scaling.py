"""E10 — scaling: wall-clock cost and ratio growth versus the polylog bounds.

Two questions a downstream user asks before adopting the library:

* how does the measured competitive ratio *grow* with the instance size (it
  should track the polylog bound, not a polynomial), and
* how long does a run take as the instance grows (the implementation should be
  near-linear in the total path length of the request sequence).

The experiment sweeps instance sizes, measures both, and emits an ASCII series
table (the "figure") alongside the usual rows.

Each size is one single-trial :class:`~repro.api.spec.RunSpec`; the online
wall-clock (compilation + arrival streaming, excluding the offline solve)
comes back on the row's ``extra["online_seconds"]``.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.ascii_plot import ascii_series_table
from repro.api import FixedSeedAlgorithmFactory, Runner, RunSpec
from repro.core.bounds import randomized_admission_bound, set_cover_randomized_bound
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.utils.rng import as_generator, stable_seed
from repro.workloads import overloaded_edge_adversary, random_setcover_instance

EXPERIMENT_ID = "E10"
TITLE = "Scaling of measured ratios and wall-clock time"
VALIDATES = "Growth-rate shape of Theorems 3, 4 and the Section 4 reduction"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("randomized",)
USES_SETCOVER = ("reduction",)

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _admission_sizes(config: ExperimentConfig):
    if config.quick:
        return [16, 32, 64]
    return [16, 32, 64, 128, 256, 512]


def _setcover_sizes(config: ExperimentConfig):
    if config.quick:
        return [(24, 12), (48, 16)]
    return [(24, 12), (48, 16), (96, 24), (192, 32), (384, 48)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the scaling sweep; LP comparators keep large sizes tractable."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    runner = Runner()

    admission_sizes = _admission_sizes(config)
    ratios = []
    bounds = []
    runtimes = []
    for m in admission_sizes:
        c = 4
        rng = as_generator(stable_seed(config.seed, m, "e10-admission"))
        instance = overloaded_edge_adversary(
            num_edges=m, capacity=c, num_hot_edges=max(2, m // 8), overload_factor=3.0, random_state=rng
        )
        spec = RunSpec(
            instance=instance,
            algorithm=FixedSeedAlgorithmFactory(
                "randomized",
                config.engine,
                stable_seed(config.seed, m, "algo"),
                (("weighted", False),),
            ),
            backend=config.backend,
            mode="compiled" if config.compile else "batch",
            record=config.record,
            trials=1,
            offline="lp",
            label=f"E10 admission m={m}",
        )
        [row] = runner.run(spec)
        elapsed = float(row.extra["online_seconds"])
        bound = randomized_admission_bound(m, c, weighted=False).value
        ratios.append(row.ratio)
        bounds.append(bound)
        runtimes.append(elapsed)
        result.rows.append(
            {
                "problem": "admission",
                "size": m,
                "requests": instance.num_requests,
                "ratio": row.ratio,
                "bound": bound,
                "ratio/bound": row.ratio / bound,
                "runtime_s": elapsed,
            }
        )
    result.metadata["admission_series"] = ascii_series_table(
        admission_sizes,
        {"ratio": ratios, "log m * log c": bounds, "runtime_s": runtimes},
        x_name="m",
        title="Admission control: measured ratio vs bound vs runtime",
    )

    sc_ratios = []
    sc_bounds = []
    sc_sizes = _setcover_sizes(config)
    for n, m in sc_sizes:
        instance = random_setcover_instance(
            num_elements=n,
            num_sets=m,
            num_arrivals=2 * n,
            membership_probability=min(0.5, 4.0 / m + 0.1),
            random_state=stable_seed(config.seed, n, m, "e10-sc"),
        )
        spec = RunSpec(
            problem="setcover",
            instance=instance,
            algorithm=FixedSeedAlgorithmFactory(
                "reduction",
                config.engine,
                stable_seed(config.seed, n, m, "sc-algo"),
                problem="setcover",
            ),
            backend=config.backend,
            record=config.record,
            trials=1,
            offline="lp",
            label=f"E10 setcover n={n} m={m}",
        )
        [row] = runner.run(spec)
        bound = set_cover_randomized_bound(m, n).value
        sc_ratios.append(row.ratio)
        sc_bounds.append(bound)
        result.rows.append(
            {
                "problem": "setcover",
                "size": n,
                "requests": instance.num_arrivals,
                "ratio": row.ratio,
                "bound": bound,
                "ratio/bound": row.ratio / bound,
                "runtime_s": float(row.extra["online_seconds"]),
            }
        )
    result.metadata["setcover_series"] = ascii_series_table(
        [n for n, _ in sc_sizes],
        {"ratio": sc_ratios, "log m * log n": sc_bounds},
        x_name="n",
        title="Set cover via reduction: measured ratio vs bound",
    )
    result.notes.append("Ratios are measured against LP lower bounds here, so they are upper bounds on the true ratios.")
    return result


register(EXPERIMENT_ID, run)
