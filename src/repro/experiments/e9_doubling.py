"""E9 — guess-and-double estimation of OPT (Section 2 preprocessing).

Compares three configurations of the randomized algorithm on heavy-tailed
weighted workloads:

* **oracle** — ``alpha`` set to the exact optimal cost (the setting the
  theorems analyse directly);
* **doubling** — ``alpha`` estimated online by the guess-and-double wrapper
  (what a deployment would run);
* **no-classing** — ``alpha`` unset, so the ``R_big`` / ``R_small``
  preprocessing is skipped entirely.

Section 2 claims the doubling wrapper loses only a constant factor relative to
the oracle; the no-classing column shows why the preprocessing exists at all
(expensive requests are no longer protected).  The table also records how many
phases (doublings) were used.

Each configuration is one :class:`~repro.api.spec.RunSpec` sharing the cell's
master seed, so all three run on the *same* per-trial instances; the
algorithm rngs are pinned per configuration exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import FixedSeedAlgorithmFactory, Runner, RunSpec
from repro.engine.config import EngineConfig
from repro.engine.runtime import make_admission_algorithm
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.offline import solve_admission_ilp
from repro.utils.rng import as_generator, stable_seed
from repro.workloads import bimodal_costs, pareto_costs, single_edge_workload

EXPERIMENT_ID = "E9"
TITLE = "Guess-and-double vs oracle alpha vs no preprocessing"
VALIDATES = "Section 2 preprocessing (R_big / R_small, doubling) loses only constants"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("randomized", "doubling")
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


@dataclass(frozen=True)
class E9Workload:
    """Picklable heavy-tailed congestion workload for one (m, c, costs) cell."""

    m: int
    c: int
    cost_name: str

    def __call__(self, rng: np.random.Generator):
        if self.cost_name == "pareto":
            sampler = lambda count, r: pareto_costs(count, shape=1.2, random_state=r)  # noqa: E731
        else:
            sampler = lambda count, r: bimodal_costs(count, 1.0, 200.0, 0.1, random_state=r)  # noqa: E731
        return single_edge_workload(
            num_edges=self.m,
            num_requests=4 * self.m,
            capacity=self.c,
            concentration=1.3,
            cost_sampler=sampler,
            random_state=rng,
        )


@dataclass(frozen=True)
class OracleAlphaRandomized:
    """Build the randomized algorithm with ``alpha`` set to the exact OPT.

    The oracle configuration the theorems analyse: the factory solves the
    instance's ILP inside the worker and hands the optimal cost to the
    algorithm, with a pinned rng so all randomness comes from the workload.
    """

    config: EngineConfig
    seed: int
    ilp_time_limit: Optional[float]
    __name__ = "randomized[alpha=opt]"

    def __call__(self, instance, rng: np.random.Generator):
        opt = solve_admission_ilp(instance, time_limit=self.ilp_time_limit)
        return make_admission_algorithm(
            "randomized",
            instance,
            weighted=True,
            alpha=max(opt.cost, 1e-9),
            random_state=as_generator(self.seed),
            backend=self.config,
        )


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(16, 2), (32, 4)]
    return [(16, 2), (32, 4), (64, 8), (128, 8)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E9 comparison and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(4)
    runner = Runner()

    for m, c in _grid(config):
        for cost_name in ("pareto", "bimodal"):
            configurations = {
                "oracle": OracleAlphaRandomized(
                    config.engine,
                    stable_seed(config.seed, m, c, cost_name, "oracle"),
                    config.ilp_time_limit,
                ),
                "doubling": FixedSeedAlgorithmFactory(
                    "doubling",
                    config.engine,
                    stable_seed(config.seed, m, c, cost_name, "dbl"),
                    (("weighted", True),),
                ),
                "no-classing": FixedSeedAlgorithmFactory(
                    "randomized",
                    config.engine,
                    stable_seed(config.seed, m, c, cost_name, "raw"),
                    (("weighted", True),),
                ),
            }
            sums = {}
            phases_total = 0
            for label, algorithm in configurations.items():
                spec = RunSpec(
                    factory=E9Workload(m, c, cost_name),
                    algorithm=algorithm,
                    backend=config.backend,
                    mode="compiled" if config.compile else "batch",
                    record=config.record,
                    trials=trials,
                    jobs=config.engine.effective_jobs,
                    # One master seed per cell: all three configurations see
                    # the same per-trial instances, exactly as the legacy
                    # shared-instance loop did.
                    seed=stable_seed(config.seed, m, c, cost_name, "e9"),
                    offline="ilp",
                    ilp_time_limit=config.ilp_time_limit,
                    label=f"E9 {cost_name} m={m} c={c} [{label}]",
                )
                cell = runner.run(spec)
                sums[label] = sum(cell.ratios())
                if label == "doubling":
                    phases_total += sum(row.extra.get("num_phases", 0) for row in cell)
            result.rows.append(
                {
                    "m": m,
                    "c": c,
                    "costs": cost_name,
                    "trials": trials,
                    "ratio_oracle": sums["oracle"] / trials,
                    "ratio_doubling": sums["doubling"] / trials,
                    "ratio_no_classing": sums["no-classing"] / trials,
                    "doubling/oracle": sums["doubling"] / max(sums["oracle"], 1e-12),
                    "phases_mean": phases_total / trials,
                }
            )
    result.notes.append(
        "doubling/oracle should stay a small constant; ratio_no_classing showcases why the "
        "R_big/R_small preprocessing matters on heavy-tailed costs."
    )
    return result


register(EXPERIMENT_ID, run)
