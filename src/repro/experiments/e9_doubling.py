"""E9 — guess-and-double estimation of OPT (Section 2 preprocessing).

Compares three configurations of the randomized algorithm on heavy-tailed
weighted workloads:

* **oracle** — ``alpha`` set to the exact optimal cost (the setting the
  theorems analyse directly);
* **doubling** — ``alpha`` estimated online by the guess-and-double wrapper
  (what a deployment would run);
* **no-classing** — ``alpha`` unset, so the ``R_big`` / ``R_small``
  preprocessing is skipped entirely.

Section 2 claims the doubling wrapper loses only a constant factor relative to
the oracle; the no-classing column shows why the preprocessing exists at all
(expensive requests are no longer protected).  The table also records how many
phases (doublings) were used.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.competitive import evaluate_admission_run
from repro.core.protocols import run_admission
from repro.engine.runtime import make_admission_algorithm
from repro.experiments.base import ExperimentConfig, ExperimentResult, register
from repro.instances.compiled import compile_instance
from repro.offline import solve_admission_ilp
from repro.utils.rng import as_generator, spawn_generators, stable_seed
from repro.workloads import bimodal_costs, pareto_costs, single_edge_workload

EXPERIMENT_ID = "E9"
TITLE = "Guess-and-double vs oracle alpha vs no preprocessing"
VALIDATES = "Section 2 preprocessing (R_big / R_small, doubling) loses only constants"

#: Algorithm registry keys this experiment resolves through the engine.
USES_ADMISSION = ("randomized", "doubling")
USES_SETCOVER = ()

__all__ = ["run", "EXPERIMENT_ID", "TITLE", "VALIDATES"]


def _grid(config: ExperimentConfig):
    if config.quick:
        return [(16, 2), (32, 4)]
    return [(16, 2), (32, 4), (64, 8), (128, 8)]


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    """Run the E9 comparison and return the result table."""
    config = config or ExperimentConfig()
    result = ExperimentResult(EXPERIMENT_ID, TITLE, VALIDATES)
    trials = config.scaled_trials(4)

    cost_models = {
        "pareto": lambda count, r: pareto_costs(count, shape=1.2, random_state=r),
        "bimodal": lambda count, r: bimodal_costs(count, 1.0, 200.0, 0.1, random_state=r),
    }

    for m, c in _grid(config):
        for cost_name, sampler in cost_models.items():
            generators = spawn_generators(stable_seed(config.seed, m, c, cost_name, "e9"), trials)
            sums = {"oracle": 0.0, "doubling": 0.0, "no-classing": 0.0}
            phases_total = 0
            for rng in generators:
                instance = single_edge_workload(
                    num_edges=m,
                    num_requests=4 * m,
                    capacity=c,
                    concentration=1.3,
                    cost_sampler=sampler,
                    random_state=rng,
                )
                opt = solve_admission_ilp(instance, time_limit=config.ilp_time_limit)
                alpha = max(opt.cost, 1e-9)
                # One compilation is shared by all three algorithm configs
                # below — the "compile once per instance, reuse" contract.
                compiled = compile_instance(instance) if config.compile else None
                configs = {
                    "oracle": lambda: make_admission_algorithm(
                        "randomized", instance, weighted=True, alpha=alpha,
                        random_state=as_generator(stable_seed(config.seed, m, c, cost_name, "oracle")),
                        backend=config.engine,
                    ),
                    "doubling": lambda: make_admission_algorithm(
                        "doubling", instance, weighted=True,
                        random_state=as_generator(stable_seed(config.seed, m, c, cost_name, "dbl")),
                        backend=config.engine,
                    ),
                    "no-classing": lambda: make_admission_algorithm(
                        "randomized", instance, weighted=True,
                        random_state=as_generator(stable_seed(config.seed, m, c, cost_name, "raw")),
                        backend=config.engine,
                    ),
                }
                for label, factory in configs.items():
                    algorithm = factory()
                    record = evaluate_admission_run(
                        instance,
                        run_admission(algorithm, instance, compiled=compiled),
                        offline="ilp",
                        ilp_time_limit=config.ilp_time_limit,
                    )
                    sums[label] += record.ratio
                    if label == "doubling":
                        phases_total += record.extra.get("num_phases", 0)
            result.rows.append(
                {
                    "m": m,
                    "c": c,
                    "costs": cost_name,
                    "trials": trials,
                    "ratio_oracle": sums["oracle"] / trials,
                    "ratio_doubling": sums["doubling"] / trials,
                    "ratio_no_classing": sums["no-classing"] / trials,
                    "doubling/oracle": sums["doubling"] / max(sums["oracle"], 1e-12),
                    "phases_mean": phases_total / trials,
                }
            )
    result.notes.append(
        "doubling/oracle should stay a small constant; ratio_no_classing showcases why the "
        "R_big/R_small preprocessing matters on heavy-tailed costs."
    )
    return result


register(EXPERIMENT_ID, run)
