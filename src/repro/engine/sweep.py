"""The legacy scenario-sweep entry point, now a shim over the run-spec facade.

:class:`ScenarioSweep` predates the unified run-spec API (:mod:`repro.api`):
it was the fourth bespoke way to run scenarios x algorithms x backends.  The
class survives as a deprecation shim — construction emits a
:class:`DeprecationWarning`, and :meth:`ScenarioSweep.run` compiles the sweep
into :class:`~repro.api.spec.RunSpec` cells executed by
:class:`~repro.api.runner.Runner` — so existing call sites keep producing
bit-identical numbers while new code writes::

    from repro.api import RunSpec, Runner

    specs = RunSpec.grid(["bursty", "flash_crowd"], ["fractional", "randomized"],
                         backends=["numpy"], trials=3, seed=7)
    results = Runner().run(specs)
    print(results.comparison_table())

Cell seeds still derive with :func:`repro.utils.rng.stable_seed` from
``(master seed, scenario key, algorithm key)`` — the derivation now lives in
:meth:`RunSpec.grid` — so adding or removing a scenario never perturbs the
numbers of the others, and a single cell can be reproduced in isolation.

The picklable factories that cross the executor boundary moved to
:mod:`repro.api.sources`; their historical names are re-exported here.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.analysis.trials import TrialSummary
from repro.api.sources import RegistryAlgorithmFactory, ScenarioSource
from repro.engine.config import EngineConfig
from repro.engine.runtime import ensure_builtin_registrations
from repro.scenarios.registry import Scenario, get_scenario

__all__ = [
    "ScenarioSweep",
    "SweepResult",
    "ScenarioInstanceFactory",
    "SweepAlgorithmFactory",
]

#: Historical names of the picklable factories (canonical homes are in
#: :mod:`repro.api.sources`); kept so existing imports and pickles keep working.
ScenarioInstanceFactory = ScenarioSource
SweepAlgorithmFactory = RegistryAlgorithmFactory


@dataclass
class SweepResult:
    """Aggregated outcome of one scenario x algorithm sweep."""

    summaries: Dict[Tuple[str, str], TrialSummary]
    scenarios: List[str]
    algorithms: List[str]
    backend: str
    seed: int
    num_trials: int
    offline: str

    def rows(self) -> List[Dict[str, Any]]:
        """One flat row per (scenario, algorithm) cell, in grid order."""
        out: List[Dict[str, Any]] = []
        for scenario in self.scenarios:
            for algorithm in self.algorithms:
                summary = self.summaries[(scenario, algorithm)]
                ratio = summary.ratio_stats()
                out.append(
                    {
                        "scenario": scenario,
                        "algorithm": algorithm,
                        "trials": summary.num_trials,
                        "ratio_mean": ratio.mean,
                        "ratio_max": ratio.maximum,
                        "online_mean": summary.online_cost_stats().mean,
                        "offline_mean": summary.offline_cost_stats().mean,
                        "feasible": summary.all_feasible(),
                    }
                )
        return out

    def table(self, float_format: str = ".3f") -> str:
        """The long-form table: one row per cell."""
        title = (
            f"Scenario sweep — backend={self.backend}, trials={self.num_trials}, "
            f"seed={self.seed}, offline={self.offline}"
        )
        return format_table(self.rows(), title=title, float_format=float_format)

    def comparison_table(self, float_format: str = ".3f") -> str:
        """The cross-scenario pivot: one row per scenario, one ratio column per algorithm."""
        rows = []
        for scenario in self.scenarios:
            row: Dict[str, Any] = {"scenario": scenario}
            for algorithm in self.algorithms:
                summary = self.summaries[(scenario, algorithm)]
                row[f"ratio[{algorithm}]"] = summary.ratio_stats().mean
            rows.append(row)
        return format_table(
            rows, title="Cross-scenario comparison (mean competitive ratio)",
            float_format=float_format,
        )

    def report(self) -> str:
        """Long table plus the cross-scenario pivot."""
        return self.table() + "\n\n" + self.comparison_table()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (what ``repro sweep --out`` writes)."""
        return {
            "schema": 1,
            "backend": self.backend,
            "seed": self.seed,
            "num_trials": self.num_trials,
            "offline": self.offline,
            "scenarios": list(self.scenarios),
            "algorithms": list(self.algorithms),
            "cells": [
                {**row, "ratios": self.summaries[(row["scenario"], row["algorithm"])].ratios()}
                for row in self.rows()
            ],
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write :meth:`to_dict` as JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def run_sweep_specs(
    scenarios: Sequence[Scenario],
    algorithms: Sequence[str],
    *,
    config: EngineConfig,
    num_trials: int,
    seed: int,
    offline: str,
    ilp_time_limit: Optional[float],
    streaming: bool = False,
    overrides: Optional[Dict[str, Tuple[Tuple[str, Any], ...]]] = None,
) -> SweepResult:
    """Compile a sweep into run specs, execute them, and adapt the result.

    Shared by the :class:`ScenarioSweep` shim and the CLI's ``sweep``
    subcommand (which no longer goes through the deprecated class).  Cell
    seeds, factories and the execution path are exactly those of
    :meth:`repro.api.spec.RunSpec.grid` + :class:`repro.api.runner.Runner`.
    """
    from repro.api import Runner, RunSpec

    from repro.engine.streaming import STREAMING_ALGORITHMS
    from repro.utils.rng import stable_seed

    if not scenarios:
        raise ValueError("need at least one scenario")
    if not algorithms:
        raise ValueError("need at least one algorithm")
    keys = [s.key for s in scenarios]
    dup = sorted({k for k in keys if keys.count(k) > 1})
    if dup:
        raise ValueError(f"duplicate scenario keys in sweep: {dup}")
    dup = sorted({a for a in algorithms if list(algorithms).count(a) > 1})
    if dup:
        raise ValueError(f"duplicate algorithm keys in sweep: {dup}")
    overrides = overrides or {}
    mode = "streaming" if streaming else ("compiled" if config.compile else "batch")
    runner = Runner()
    summaries: Dict[Tuple[str, str], TrialSummary] = {}
    for scenario in scenarios:
        for algorithm in algorithms:
            # The facade's eager validation restricts mode="streaming" to the
            # streaming-capable registry keys; the legacy sweep also streamed
            # baselines through the session's per-request fallback.  Keep that
            # behaviour by handing such cells a pre-built (callable) factory,
            # which the spec accepts for externally-managed algorithms.
            spec_algorithm: Any = algorithm
            if streaming and algorithm not in STREAMING_ALGORITHMS:
                spec_algorithm = RegistryAlgorithmFactory(algorithm, config, (), "admission")
            spec = RunSpec(
                scenario=scenario,
                algorithm=spec_algorithm,
                backend=config.backend,
                mode=mode,
                seed=stable_seed(seed, scenario.key, algorithm, "sweep"),
                scenario_params=dict(overrides.get(scenario.key, ())),
                trials=num_trials,
                # The spec requires an explicit positive worker count; resolve
                # the legacy "0 = all cores" convention before building it.
                jobs=config.effective_jobs,
                record=config.record,
                offline=offline,
                ilp_time_limit=ilp_time_limit,
                label=f"{scenario.key} x {algorithm}",
            )
            summaries[(scenario.key, algorithm)] = runner.run_summary(spec)
    return SweepResult(
        summaries=summaries,
        scenarios=[s.key for s in scenarios],
        algorithms=list(algorithms),
        backend=config.backend,
        seed=seed,
        num_trials=num_trials,
        offline=offline,
    )


class ScenarioSweep:
    """Deprecated sweep runner: a shim over ``RunSpec.grid`` + ``Runner``.

    Parameters
    ----------
    scenarios:
        Scenario keys (resolved through the scenario registry) or
        :class:`~repro.scenarios.registry.Scenario` objects (e.g. from
        :func:`repro.scenarios.trace.scenario_from_trace`).
    algorithms:
        Admission-algorithm registry keys (``"fractional"``,
        ``"randomized"``, ``"doubling"``, the baselines, ...).
    backend:
        Weight-backend key every algorithm is built with.
    jobs:
        Parallel workers per cell (trials fan out; 1 = serial, 0 = all
        cores).  Never changes any number.
    num_trials:
        Independent (workload seed, algorithm seed) trials per cell.
    seed:
        Master seed; each cell derives its own stable seed from it.
    offline:
        Offline comparator for integral algorithms (``"lp"`` — fast, a valid
        lower bound, the default — or ``"ilp"`` for exact OPT).  Fractional
        algorithms always compare against the LP.
    ilp_time_limit:
        Time limit (s) for exact offline solves when ``offline="ilp"``.
    compile:
        Compile each trial instance once and stream the indexed fast path.
    streaming:
        Route every trial through the serving layer
        (:class:`~repro.engine.streaming.StreamingSession` micro-batches)
        instead of the batch pipeline.  Decisions — and therefore every
        reported number — are identical.
    scenario_overrides:
        Optional per-scenario parameter overrides:
        ``{"bursty": {"num_requests": 1000}}``.

    .. deprecated::
        Use :meth:`repro.api.RunSpec.grid` with :class:`repro.api.Runner`;
        this class delegates to them and produces identical numbers.
    """

    def __init__(
        self,
        scenarios: Sequence[Union[str, Scenario]],
        algorithms: Sequence[str],
        *,
        backend: str = "python",
        jobs: int = 1,
        num_trials: int = 3,
        seed: int = 0,
        offline: str = "lp",
        ilp_time_limit: Optional[float] = 20.0,
        compile: bool = True,
        record: bool = True,
        streaming: bool = False,
        scenario_overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        warnings.warn(
            "ScenarioSweep is deprecated; use repro.api.RunSpec.grid(...) with "
            "repro.api.Runner instead (numbers are identical)",
            DeprecationWarning,
            stacklevel=2,
        )
        if not scenarios:
            raise ValueError("need at least one scenario")
        if not algorithms:
            raise ValueError("need at least one algorithm")
        ensure_builtin_registrations()
        self.scenarios: List[Scenario] = [get_scenario(s) for s in scenarios]
        self.algorithms: List[str] = list(algorithms)
        # Cells are keyed by (scenario key, algorithm key); duplicates would
        # silently overwrite each other's summaries, so reject them up front
        # (two --trace files with the same stem are the easy way to hit this).
        seen_keys = [s.key for s in self.scenarios]
        dup = sorted({k for k in seen_keys if seen_keys.count(k) > 1})
        if dup:
            raise ValueError(f"duplicate scenario keys in sweep: {dup}")
        dup = sorted({a for a in self.algorithms if self.algorithms.count(a) > 1})
        if dup:
            raise ValueError(f"duplicate algorithm keys in sweep: {dup}")
        self.config = EngineConfig(backend=backend, jobs=jobs, compile=compile, record=record)
        self.streaming = bool(streaming)
        self.num_trials = int(num_trials)
        self.seed = int(seed)
        self.offline = offline
        self.ilp_time_limit = ilp_time_limit
        overrides = scenario_overrides or {}
        self._overrides: Dict[str, Tuple[Tuple[str, Any], ...]] = {
            key: tuple(sorted(params.items())) for key, params in overrides.items()
        }

    def run(self) -> SweepResult:
        """Run every (scenario, algorithm) cell through the run-spec facade."""
        return run_sweep_specs(
            self.scenarios,
            self.algorithms,
            config=self.config,
            num_trials=self.num_trials,
            seed=self.seed,
            offline=self.offline,
            ilp_time_limit=self.ilp_time_limit,
            streaming=self.streaming,
            overrides=self._overrides,
        )
