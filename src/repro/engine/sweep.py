"""The scenario sweep runner: scenarios x algorithms x backends, one matrix.

:class:`ScenarioSweep` turns the scenario registry and the algorithm registry
into an open-ended evaluation matrix: every (scenario, algorithm) cell runs
``num_trials`` independent trials through the engine's parallel trial
executor (:func:`repro.analysis.trials.run_admission_trials`, with
pre-dispatch seed derivation so ``jobs=N`` never changes a number), and the
result aggregates competitive ratios into one cross-scenario comparison
table.

Cell seeds are derived with :func:`repro.utils.rng.stable_seed` from
``(master seed, scenario key, algorithm key)`` — *not* from the cell's
position in the grid — so adding or removing a scenario never perturbs the
numbers of the others, and a single cell can be reproduced in isolation::

    ScenarioSweep(["bursty"], ["fractional"], seed=7).run()

The factories that cross the executor boundary
(:class:`ScenarioInstanceFactory`, :class:`SweepAlgorithmFactory`) are
module-level dataclasses, so cells fan out over *processes* whenever the
scenario's builder pickles (all built-ins do).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.trials import TrialSummary, run_admission_trials
from repro.engine.config import EngineConfig
from repro.engine.runtime import ensure_builtin_registrations, make_admission_algorithm
from repro.instances.admission import AdmissionInstance
from repro.scenarios.registry import Scenario, get_scenario
from repro.utils.rng import stable_seed

__all__ = [
    "ScenarioSweep",
    "SweepResult",
    "ScenarioInstanceFactory",
    "SweepAlgorithmFactory",
]


@dataclass(frozen=True)
class ScenarioInstanceFactory:
    """Picklable ``rng -> instance`` factory for one scenario.

    Carries the :class:`~repro.scenarios.registry.Scenario` object itself
    (not just its key), so process-pool workers need no registry state.
    """

    scenario: Scenario
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self, rng: np.random.Generator) -> AdmissionInstance:
        return self.scenario.build(random_state=rng, **dict(self.overrides))


@dataclass(frozen=True)
class SweepAlgorithmFactory:
    """Picklable ``(instance, rng) -> algorithm`` factory for one registry key."""

    key: str
    config: EngineConfig
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self, instance: AdmissionInstance, rng: np.random.Generator):
        return make_admission_algorithm(
            self.key, instance, random_state=rng, backend=self.config, **dict(self.kwargs)
        )


@dataclass
class SweepResult:
    """Aggregated outcome of one scenario x algorithm sweep."""

    summaries: Dict[Tuple[str, str], TrialSummary]
    scenarios: List[str]
    algorithms: List[str]
    backend: str
    seed: int
    num_trials: int
    offline: str

    def rows(self) -> List[Dict[str, Any]]:
        """One flat row per (scenario, algorithm) cell, in grid order."""
        out: List[Dict[str, Any]] = []
        for scenario in self.scenarios:
            for algorithm in self.algorithms:
                summary = self.summaries[(scenario, algorithm)]
                ratio = summary.ratio_stats()
                out.append(
                    {
                        "scenario": scenario,
                        "algorithm": algorithm,
                        "trials": summary.num_trials,
                        "ratio_mean": ratio.mean,
                        "ratio_max": ratio.maximum,
                        "online_mean": summary.online_cost_stats().mean,
                        "offline_mean": summary.offline_cost_stats().mean,
                        "feasible": summary.all_feasible(),
                    }
                )
        return out

    def table(self, float_format: str = ".3f") -> str:
        """The long-form table: one row per cell."""
        title = (
            f"Scenario sweep — backend={self.backend}, trials={self.num_trials}, "
            f"seed={self.seed}, offline={self.offline}"
        )
        return format_table(self.rows(), title=title, float_format=float_format)

    def comparison_table(self, float_format: str = ".3f") -> str:
        """The cross-scenario pivot: one row per scenario, one ratio column per algorithm."""
        rows = []
        for scenario in self.scenarios:
            row: Dict[str, Any] = {"scenario": scenario}
            for algorithm in self.algorithms:
                summary = self.summaries[(scenario, algorithm)]
                row[f"ratio[{algorithm}]"] = summary.ratio_stats().mean
            rows.append(row)
        return format_table(
            rows, title="Cross-scenario comparison (mean competitive ratio)",
            float_format=float_format,
        )

    def report(self) -> str:
        """Long table plus the cross-scenario pivot."""
        return self.table() + "\n\n" + self.comparison_table()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (what ``repro sweep --out`` writes)."""
        return {
            "schema": 1,
            "backend": self.backend,
            "seed": self.seed,
            "num_trials": self.num_trials,
            "offline": self.offline,
            "scenarios": list(self.scenarios),
            "algorithms": list(self.algorithms),
            "cells": [
                {**row, "ratios": self.summaries[(row["scenario"], row["algorithm"])].ratios()}
                for row in self.rows()
            ],
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write :meth:`to_dict` as JSON and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


class ScenarioSweep:
    """Fan scenarios x algorithms out through the parallel trial executor.

    Parameters
    ----------
    scenarios:
        Scenario keys (resolved through the scenario registry) or
        :class:`~repro.scenarios.registry.Scenario` objects (e.g. from
        :func:`repro.scenarios.trace.scenario_from_trace`).
    algorithms:
        Admission-algorithm registry keys (``"fractional"``,
        ``"randomized"``, ``"doubling"``, the baselines, ...).
    backend:
        Weight-backend key every algorithm is built with.
    jobs:
        Parallel workers per cell (trials fan out; 1 = serial, 0 = all
        cores).  Never changes any number.
    num_trials:
        Independent (workload seed, algorithm seed) trials per cell.
    seed:
        Master seed; each cell derives its own stable seed from it.
    offline:
        Offline comparator for integral algorithms (``"lp"`` — fast, a valid
        lower bound, the default — or ``"ilp"`` for exact OPT).  Fractional
        algorithms always compare against the LP.
    ilp_time_limit:
        Time limit (s) for exact offline solves when ``offline="ilp"``.
    compile:
        Compile each trial instance once and stream the indexed fast path.
    streaming:
        Route every trial through the serving layer
        (:class:`~repro.engine.streaming.StreamingSession` micro-batches)
        instead of the batch pipeline.  Decisions — and therefore every
        reported number — are identical; the knob exists so sweeps exercise
        the streaming code end to end (``repro sweep --streaming``).
    scenario_overrides:
        Optional per-scenario parameter overrides:
        ``{"bursty": {"num_requests": 1000}}``.
    """

    def __init__(
        self,
        scenarios: Sequence[Union[str, Scenario]],
        algorithms: Sequence[str],
        *,
        backend: str = "python",
        jobs: int = 1,
        num_trials: int = 3,
        seed: int = 0,
        offline: str = "lp",
        ilp_time_limit: Optional[float] = 20.0,
        compile: bool = True,
        record: bool = True,
        streaming: bool = False,
        scenario_overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    ):
        if not scenarios:
            raise ValueError("need at least one scenario")
        if not algorithms:
            raise ValueError("need at least one algorithm")
        ensure_builtin_registrations()
        self.scenarios: List[Scenario] = [get_scenario(s) for s in scenarios]
        self.algorithms: List[str] = list(algorithms)
        # Cells are keyed by (scenario key, algorithm key); duplicates would
        # silently overwrite each other's summaries, so reject them up front
        # (two --trace files with the same stem are the easy way to hit this).
        seen_keys = [s.key for s in self.scenarios]
        dup = sorted({k for k in seen_keys if seen_keys.count(k) > 1})
        if dup:
            raise ValueError(f"duplicate scenario keys in sweep: {dup}")
        dup = sorted({a for a in self.algorithms if self.algorithms.count(a) > 1})
        if dup:
            raise ValueError(f"duplicate algorithm keys in sweep: {dup}")
        self.config = EngineConfig(backend=backend, jobs=jobs, compile=compile, record=record)
        self.streaming = bool(streaming)
        self.num_trials = int(num_trials)
        self.seed = int(seed)
        self.offline = offline
        self.ilp_time_limit = ilp_time_limit
        overrides = scenario_overrides or {}
        self._overrides: Dict[str, Tuple[Tuple[str, Any], ...]] = {
            key: tuple(sorted(params.items())) for key, params in overrides.items()
        }

    def run(self) -> SweepResult:
        """Run every (scenario, algorithm) cell and aggregate the records."""
        summaries: Dict[Tuple[str, str], TrialSummary] = {}
        for scenario in self.scenarios:
            instance_factory = ScenarioInstanceFactory(
                scenario, self._overrides.get(scenario.key, ())
            )
            for algorithm in self.algorithms:
                cell_seed = stable_seed(self.seed, scenario.key, algorithm, "sweep")
                summaries[(scenario.key, algorithm)] = run_admission_trials(
                    instance_factory,
                    SweepAlgorithmFactory(algorithm, self.config),
                    num_trials=self.num_trials,
                    random_state=cell_seed,
                    label=f"{scenario.key} x {algorithm}",
                    offline=self.offline,
                    ilp_time_limit=self.ilp_time_limit,
                    jobs=self.config.jobs,
                    compile_instances=self.config.compile,
                    streaming=self.streaming,
                )
        return SweepResult(
            summaries=summaries,
            scenarios=[s.key for s in self.scenarios],
            algorithms=list(self.algorithms),
            backend=self.config.backend,
            seed=self.seed,
            num_trials=self.num_trials,
            offline=self.offline,
        )
