"""Vectorized sampling primitives for the randomized rounding layer.

Two utilities back the Section-3 randomized algorithm's coin flips:

* :func:`bernoulli_batch` draws one coin per entry of a probability vector in
  a single generator call.  For NumPy's ``Generator`` (PCG64),
  ``rng.random(k)`` consumes the bit stream exactly as ``k`` scalar
  ``rng.random()`` calls would, so batching the step-3 coins is
  **stream-identical** to the per-request loop: the same seed produces the
  same accept/reject trajectory.  Callers must pre-filter entries whose
  probability is zero or negative — the scalar loop skips those *without
  drawing*, and keeping them in the batch would shift the stream.
* :func:`inverse_weighted_sample` draws a weighted sample *without*
  replacement via the inverse-weight exponential-key ordering (one uniform
  per element, ``u_i ** (1/w_i)`` keys, take the largest): one vectorized
  pass instead of ``k`` sequential roulette spins.  The rounding layer uses
  it to pick eviction candidates proportionally to their shadow weights in
  analysis tooling; it is also the building block for batch preemption
  experiments.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = ["bernoulli_batch", "inverse_weighted_sample"]


def bernoulli_batch(
    rng: np.random.Generator, probabilities: Union[np.ndarray, Sequence[float]]
) -> np.ndarray:
    """One Bernoulli coin per probability, drawn in a single generator call.

    Returns ``bool[k]`` where entry ``i`` is ``True`` with probability
    ``probabilities[i]`` (the scalar equivalent of
    ``rng.random() < probabilities[i]``, in order).  Entries must be strictly
    positive: the scalar loops this replaces skip non-positive probabilities
    *before* drawing, so including them here would desynchronise the stream.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    k = probs.shape[0]
    if k == 0:
        return np.zeros(0, dtype=bool)
    try:
        draws = rng.random(k)
    except TypeError:
        # Duck-typed generators (test stubs, legacy RandomState wrappers) may
        # only expose scalar random(); fall back to k sequential draws, which
        # is what the batched call is stream-equivalent to anyway.
        draws = np.fromiter((rng.random() for _ in range(k)), dtype=np.float64, count=k)
    return draws < probs


def inverse_weighted_sample(
    rng: np.random.Generator,
    weights: Union[np.ndarray, Sequence[float]],
    k: int,
) -> np.ndarray:
    """Weighted sampling without replacement via inverse-weight keys.

    Draws ``min(k, #nonzero)`` distinct indices with probability proportional
    to ``weights`` using the exponential-key ordering: one uniform ``u_i`` per
    element, key ``u_i ** (1 / w_i)``, keep the ``k`` largest keys.  Zero
    weights never get sampled (and consume no randomness beyond their uniform
    draw being skipped entirely).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        w = w.ravel()
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    nonzero = np.nonzero(w > 0)[0]
    if k == 0 or nonzero.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    u = rng.random(nonzero.shape[0])
    keys = u ** (1.0 / w[nonzero])
    take = min(k, nonzero.shape[0])
    # argpartition bounds the sort to the k survivors, then order them by key.
    part = np.argpartition(keys, keys.shape[0] - take)[keys.shape[0] - take :]
    order = part[np.argsort(keys[part])[::-1]]
    return nonzero[order].astype(np.intp, copy=False)
