"""Multi-process shard scale-out: shared-memory traces + pluggable routing.

:class:`~repro.engine.streaming.ShardedStreamRouter` scales the streaming
service *within* one process: N independent sessions, one per namespace
partition, all sharing the GIL.  This module scales the same vector of
sessions *out* to N worker processes:

* :class:`SharedCompiledTrace` publishes a
  :class:`~repro.instances.compiled.CompiledInstance`'s CSR arrays
  (``indptr`` / ``indices`` over dense edge ids, plus ``costs`` /
  ``request_ids`` / ``capacities``) once via
  :mod:`multiprocessing.shared_memory`; every worker maps the segments
  zero-copy, so compile cost and instance memory are paid once regardless of
  worker count.  Workers materialise :class:`~repro.instances.request.
  Request` objects lazily from the shared arrays (:class:`_LazyRequests`),
  in the same canonical edge order as the originals, so integral algorithms
  that need rich request objects behave bit-identically.
* :data:`ROUTING_STRATEGIES` is a :class:`~repro.engine.registry.Registry`
  of pluggable routing policies: ``namespace`` (the router's partition,
  bit-compatible), ``round_robin``, ``least_loaded`` (outstanding-batch
  depth) and ``cost_aware`` (melange-style bucketed per-shard cost tables).
* :class:`ProcessShardPool` runs one
  :class:`~repro.engine.streaming.StreamingSession` per worker process and
  speaks a strict FIFO command protocol over pipes, so micro-batches can be
  submitted asynchronously (``collect=False``) and drained with a barrier.
  Pool checkpoints extend the router's vector-of-session shape
  (:data:`POOL_CHECKPOINT_KIND`): drain, snapshot every worker, restore the
  whole pool in a fresh set of processes.

Determinism contract: under the ``namespace`` strategy the pool builds the
*exact* sessions :class:`ShardedStreamRouter` builds — same capacity
partition, same ``stable_seed(seed, "stream-shard", k)`` per-shard seeds,
same ``submit_batch`` code path — so decisions match the single-process
router at 1e-9 (bit-for-bit in practice), and per-shard results are
independent of *where* each session runs.  The replica strategies
(``round_robin`` / ``least_loaded`` / ``cost_aware``) instead give every
worker the full capacity map and spread whole micro-batches; they trade the
partition guarantee for throughput on un-namespaced traffic.

Shared-memory hygiene: the parent owns every segment and unlinks it on
:meth:`ProcessShardPool.close` — including the failure paths (construction
errors, worker crashes), so CI runners never leak ``/dev/shm``.  Workers
attach read-only and explicitly unregister from the resource tracker (the
tracker would otherwise double-unlink on worker exit).
"""

from __future__ import annotations

import signal
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.backends import BackendSpec, resolve_backend_name, resolve_record_flag
from repro.engine.registry import Registry
from repro.instances.compiled import CompiledInstance
from repro.instances.request import EdgeId, Request
from repro.instances.serialize import (
    CHECKPOINT_SCHEMA,
    CheckpointFormatError,
    dump_checkpoint,
    load_checkpoint,
    validate_checkpoint,
)
from repro.utils.rng import stable_seed

__all__ = [
    "ROUTING_STRATEGIES",
    "RoutingStrategy",
    "NamespaceStrategy",
    "RoundRobinStrategy",
    "LeastLoadedStrategy",
    "CostAwareStrategy",
    "SharedCompiledTrace",
    "attach_shared_trace",
    "ProcessShardPool",
    "ShardWorkerError",
    "POOL_CHECKPOINT_KIND",
]

#: The ``kind`` field of a pool checkpoint (strategy state + one checkpoint
#: per worker, the router's vector-of-sessions shape extended).
POOL_CHECKPOINT_KIND = "shard-pool-checkpoint"


class ShardWorkerError(RuntimeError):
    """A worker process failed (build error, command error, or sudden death).

    The message carries the worker's traceback when one was received, so
    failures inside a shard debug like failures in-process.
    """


# ---------------------------------------------------------------------------
# Routing strategies
# ---------------------------------------------------------------------------

#: Pluggable batch-routing policies, mirroring the engine registries: strict
#: duplicate registration, unknown keys raise with the known-key list.
ROUTING_STRATEGIES: Registry = Registry("routing strategy")


class RoutingStrategy:
    """Decide which shard a micro-batch lands on.

    ``partitioned`` strategies split the edge set across shards (each worker
    owns a disjoint capacity partition and arrivals route per-request by
    namespace); replica strategies give every worker the full capacity map
    and route whole batches.  :meth:`route` receives the batch's request
    costs and the per-shard outstanding-batch depths and returns a shard
    index; it is called only for replica strategies.

    Routing state that future routing depends on (cursors, accumulated work)
    round-trips through :meth:`export_state` / :meth:`restore_state` so a
    restored pool keeps routing exactly where the checkpoint stopped.
    """

    #: True when the strategy partitions edges across shards (namespace
    #: routing); False when every shard replicates the full capacity map.
    partitioned = False

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)

    def route(self, costs: Sequence[float], depths: Sequence[int]) -> int:
        """Shard index for a batch with ``costs``, given outstanding depths."""
        raise NotImplementedError

    def export_state(self) -> Dict[str, Any]:
        """JSON-able routing state (what future routing depends on)."""
        return {}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`export_state`."""


@ROUTING_STRATEGIES.register("namespace")
class NamespaceStrategy(RoutingStrategy):
    """Today's router behavior: partition edges by namespace, bit-compatible.

    Every namespace maps to ``stable_seed(namespace, "stream-shard") %
    num_shards`` — the exact :class:`~repro.engine.streaming.
    ShardedStreamRouter` mapping — so a pool and a router with the same shard
    count produce identical decisions.
    """

    partitioned = True

    def shard_of_namespace(self, namespace: str) -> int:
        """Deterministic namespace -> shard mapping (hash-seed independent)."""
        return stable_seed(namespace, "stream-shard") % self.num_shards

    def route(self, costs: Sequence[float], depths: Sequence[int]) -> int:
        raise TypeError(
            "namespace routing is per-request (partitioned), not per-batch; "
            "the pool routes through shard_of_namespace()"
        )


@ROUTING_STRATEGIES.register("round_robin")
class RoundRobinStrategy(RoutingStrategy):
    """Cycle batches through the shards in index order."""

    def __init__(self, num_shards: int):
        super().__init__(num_shards)
        self._cursor = 0

    def route(self, costs: Sequence[float], depths: Sequence[int]) -> int:
        shard = self._cursor
        self._cursor = (self._cursor + 1) % self.num_shards
        return shard

    def export_state(self) -> Dict[str, Any]:
        return {"cursor": self._cursor}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self._cursor = int(state.get("cursor", 0)) % self.num_shards


@ROUTING_STRATEGIES.register("least_loaded")
class LeastLoadedStrategy(RoutingStrategy):
    """Route to the shard with the fewest outstanding (unacknowledged) batches.

    Depth is the pool's pending-reply count per worker, refreshed by the
    non-blocking reap the pool performs before every routing decision, so a
    slow shard sheds load to its idle peers.  Ties break to the lowest index,
    keeping the policy deterministic for a given completion pattern.
    """

    def route(self, costs: Sequence[float], depths: Sequence[int]) -> int:
        return int(min(range(self.num_shards), key=lambda k: (depths[k], k)))


@ROUTING_STRATEGIES.register("cost_aware")
class CostAwareStrategy(RoutingStrategy):
    """Melange-style bucketed-cost load balancing.

    Request costs are bucketed into geometric bands (``bucket_edges``); each
    shard has a per-bucket unit-work table (``1 / shard_speeds[k]`` by
    default, so heterogeneous workers can be modelled by passing speeds).  A
    batch's estimated work on shard ``k`` is the sum of its requests' bucket
    weights; the batch routes to the shard minimising *cumulative assigned
    work*, which balances total estimated work deterministically — the
    bucketed analogue of join-shortest-queue without needing completion
    feedback.  The accumulators are checkpoint state.
    """

    #: RPR004 allowlist: the unit-work table is derived in the constructor
    #: from bucket_edges/shard_speeds and never mutated; only ``_assigned``
    #: (the accumulators) is durable routing state.
    _LINT_STATE_EXEMPT = frozenset({"_table"})

    def __init__(
        self,
        num_shards: int,
        *,
        bucket_edges: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        shard_speeds: Optional[Sequence[float]] = None,
    ):
        super().__init__(num_shards)
        self.bucket_edges = tuple(float(e) for e in bucket_edges)
        if list(self.bucket_edges) != sorted(self.bucket_edges):
            raise ValueError("bucket_edges must be sorted ascending")
        speeds = [1.0] * num_shards if shard_speeds is None else [float(s) for s in shard_speeds]
        if len(speeds) != num_shards or any(s <= 0 for s in speeds):
            raise ValueError("shard_speeds needs one positive entry per shard")
        # table[k][b]: estimated unit work of a bucket-b request on shard k.
        # Bucket weight grows with the band index — more expensive requests
        # stay alive longer and cause more augmentation work downstream.
        self._table = [
            [float(b + 1) / speeds[k] for b in range(len(self.bucket_edges) + 1)]
            for k in range(num_shards)
        ]
        self._assigned = [0.0] * num_shards

    def _bucket(self, cost: float) -> int:
        for b, edge in enumerate(self.bucket_edges):
            if cost <= edge:
                return b
        return len(self.bucket_edges)

    def route(self, costs: Sequence[float], depths: Sequence[int]) -> int:
        buckets = [self._bucket(float(c)) for c in costs]
        estimates = [
            sum(self._table[k][b] for b in buckets) for k in range(self.num_shards)
        ]
        shard = int(
            min(range(self.num_shards), key=lambda k: (self._assigned[k] + estimates[k], k))
        )
        self._assigned[shard] += estimates[shard]
        return shard

    def export_state(self) -> Dict[str, Any]:
        return {"assigned": list(self._assigned)}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        assigned = state.get("assigned")
        if assigned is not None and len(assigned) == self.num_shards:
            self._assigned = [float(a) for a in assigned]


def make_strategy(key: str, num_shards: int, **kwargs: Any) -> RoutingStrategy:
    """Build a routing strategy by registry key (unknown keys raise with the list)."""
    cls = ROUTING_STRATEGIES.get(key)
    return cls(num_shards, **kwargs)


# ---------------------------------------------------------------------------
# Shared-memory compiled traces
# ---------------------------------------------------------------------------

#: The array fields of a CompiledInstance that ship as shared segments.
_SHARED_FIELDS = ("capacities", "indptr", "indices", "costs", "request_ids")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    On 3.8–3.12, *attaching* to a segment registers it with the resource
    tracker exactly like creating one (no ``track=False`` until 3.13), so an
    exiting worker would unlink the parent's segment out from under its
    peers — and under ``fork`` the tracker process is *shared*, so even an
    ``unregister`` after the fact would race the other workers and drop the
    parent's own registration.  Only the creating process may own cleanup:
    suppress registration for the duration of the attach instead.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class _LazyRequests:
    """Materialise :class:`Request` objects on demand from shared CSR arrays.

    Algorithms that need rich request objects (the randomized rounding's
    acceptance bookkeeping) call ``compiled.request(i)``; rebuilding the
    request from the arrays is bit-compatible because :class:`Request`
    canonicalises its edge order (repr-sorted) independently of the source
    iteration order.
    """

    def __init__(
        self,
        edge_order: Tuple[EdgeId, ...],
        indptr: np.ndarray,
        indices: np.ndarray,
        costs: np.ndarray,
        request_ids: np.ndarray,
        tags: Tuple[Optional[str], ...],
    ):
        self._edge_order = edge_order
        self._indptr = indptr
        self._indices = indices
        self._costs = costs
        self._request_ids = request_ids
        self._tags = tags

    def __len__(self) -> int:
        return int(self._request_ids.shape[0])

    def __getitem__(self, i: int) -> Request:
        lo, hi = int(self._indptr[i]), int(self._indptr[i + 1])
        edges = frozenset(self._edge_order[int(k)] for k in self._indices[lo:hi])
        return Request(
            int(self._request_ids[i]), edges, float(self._costs[i]), tag=self._tags[i]
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class SharedCompiledTrace:
    """Publish a compiled instance's arrays as shared-memory segments.

    The parent creates one segment per array field, copies the data in once,
    and hands workers a small picklable *handle* (segment names + dtypes +
    shapes + the non-array metadata).  :func:`attach_shared_trace` rebuilds a
    zero-copy :class:`CompiledInstance` view in each worker.

    The creating process owns the segments: :meth:`close` (idempotent, also
    run by ``__del__`` as a last resort) closes and unlinks every segment, so
    a crashed run never leaves ``/dev/shm`` entries behind.
    """

    def __init__(self, compiled: CompiledInstance):
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._meta: Dict[str, Tuple[str, str, Tuple[int, ...]]] = {}
        self._closed = False
        self.name = compiled.name
        self._edge_order = compiled.edge_order
        self._tags = compiled.tags
        try:
            for field_name in _SHARED_FIELDS:
                array = np.ascontiguousarray(getattr(compiled, field_name))
                shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
                view[...] = array
                self._segments[field_name] = shm
                self._meta[field_name] = (shm.name, array.dtype.str, array.shape)
        except BaseException:
            self.close()
            raise

    def handle(self) -> Dict[str, Any]:
        """Picklable attachment handle (segment names + metadata, no data)."""
        if self._closed:
            raise ValueError("shared trace is closed")
        return {
            "name": self.name,
            "edge_order": self._edge_order,
            "tags": self._tags,
            "segments": dict(self._meta),
        }

    @property
    def segment_names(self) -> List[str]:
        """The OS-level names of the published segments (for leak checks)."""
        return [meta[0] for meta in self._meta.values()]

    def close(self) -> None:
        """Close and unlink every segment (idempotent, exception-safe)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - buffer already released
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()

    def __del__(self):  # pragma: no cover - GC-order dependent safety net
        self.close()

    def __enter__(self) -> "SharedCompiledTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_shared_trace(
    handle: Mapping[str, Any],
) -> Tuple[CompiledInstance, List[shared_memory.SharedMemory]]:
    """Map a published trace into this process as a zero-copy CompiledInstance.

    Returns ``(compiled, segments)``; the caller must keep the segment
    objects alive as long as the compiled view is used and ``close()`` (not
    unlink) them afterwards — the publishing process owns the unlink.
    """
    segments: List[shared_memory.SharedMemory] = []
    arrays: Dict[str, np.ndarray] = {}
    try:
        for field_name, (seg_name, dtype_str, shape) in handle["segments"].items():
            shm = _attach_untracked(seg_name)
            segments.append(shm)
            arrays[field_name] = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    except BaseException:
        for shm in segments:
            shm.close()
        raise
    edge_order = tuple(handle["edge_order"])
    tags = tuple(handle["tags"])
    requests = _LazyRequests(
        edge_order,
        arrays["indptr"],
        arrays["indices"],
        arrays["costs"],
        arrays["request_ids"],
        tags,
    )
    compiled = CompiledInstance(
        edge_order=edge_order,
        edge_index={edge: k for k, edge in enumerate(edge_order)},
        capacities=arrays["capacities"],
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        costs=arrays["costs"],
        request_ids=arrays["request_ids"],
        tags=tags,
        requests=requests,
        name=handle.get("name", "shared-trace"),
    )
    return compiled, segments


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


@dataclass
class _WorkerConfig:
    """Everything one worker needs to build (or restore) its session."""

    shard: int
    capacities: Dict[EdgeId, int]
    algorithm: str
    backend: Optional[str]
    record: Optional[bool]
    seed: int
    algorithm_kwargs: Dict[str, Any]
    vectorized: bool
    retain_log: bool
    name: str
    checkpoint: Optional[Dict[str, Any]] = None


def _shard_worker(conn, config: _WorkerConfig) -> None:
    """Worker main loop: build the session, then serve FIFO commands.

    Every command gets exactly one reply — ``("ok", payload)`` or
    ``("error", message, traceback)`` — in arrival order, which is what lets
    the parent pipeline submissions and drain with a barrier.
    """
    from repro.engine.streaming import StreamingSession

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates shutdown
    except (ValueError, OSError):  # pragma: no cover - non-main-thread fallback
        pass

    attached: List[shared_memory.SharedMemory] = []
    trace: Optional[CompiledInstance] = None
    try:
        try:
            if config.checkpoint is not None:
                session = StreamingSession.restore(
                    config.checkpoint,
                    backend=config.backend,
                    retain_log=config.retain_log,
                )
                session.vectorized = config.vectorized
            else:
                session = StreamingSession(
                    config.capacities,
                    algorithm=config.algorithm,
                    backend=config.backend,
                    record=config.record,
                    seed=config.seed,
                    algorithm_kwargs=config.algorithm_kwargs,
                    retain_log=config.retain_log,
                    vectorized=config.vectorized,
                    name=config.name,
                )
            conn.send(
                ("ok", {"processed": session.num_processed, "decisions": session.num_decisions})
            )
        except Exception as err:
            conn.send((
                "error",
                f"shard {config.shard} failed to start: {type(err).__name__}: {err}",
                traceback.format_exc(),
            ))
            return

        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent vanished; exit quietly
            command = message[0]
            try:
                if command == "batch":
                    _, requests, collect = message
                    entries = session.submit_batch(requests)
                    conn.send(("ok", _progress(session, entries if collect else None)))
                elif command == "range":
                    _, lo, hi, collect = message
                    if trace is None:
                        raise RuntimeError("no shared trace attached (send 'attach' first)")
                    entries = session.submit_compiled_range(trace, lo, hi)
                    conn.send(("ok", _progress(session, entries if collect else None)))
                elif command == "attach":
                    trace, new_segments = attach_shared_trace(message[1])
                    attached.extend(new_segments)
                    conn.send(("ok", {"attached": trace.name}))
                elif command == "checkpoint":
                    conn.send(("ok", session.checkpoint()))
                elif command == "log":
                    conn.send(("ok", session.decision_log()))
                elif command == "summary":
                    payload = session.summary()
                    payload["augmentations"] = getattr(
                        session.algorithm, "num_augmentations", None
                    )
                    conn.send(("ok", payload))
                elif command == "stop":
                    try:
                        conn.send(("ok", {"stopped": True}))
                    except (BrokenPipeError, OSError):  # pragma: no cover
                        pass
                    return
                else:
                    raise ValueError(f"unknown shard command {command!r}")
            except Exception as err:
                conn.send((
                    "error",
                    f"shard {config.shard} {command!r} failed: {type(err).__name__}: {err}",
                    traceback.format_exc(),
                ))
    finally:
        for shm in attached:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


def _progress(session, entries) -> Dict[str, Any]:
    """The per-submission reply payload: absolute counters + optional entries."""
    return {
        "entries": entries,
        "processed": session.num_processed,
        "decisions": session.num_decisions,
    }


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side bookkeeping for one live worker process."""

    shard: int
    process: Any
    conn: Any
    pending: deque = field(default_factory=deque)
    processed: int = 0
    decisions: int = 0


class ProcessShardPool:
    """One :class:`StreamingSession` per worker process, routed micro-batches.

    Parameters mirror :class:`~repro.engine.streaming.ShardedStreamRouter`
    (capacities, algorithm key, backend/record/seed, ``namespace_of``,
    ``algorithm_kwargs``, ``retain_log``, ``vectorized``, ``name``) plus:

    strategy:
        A :data:`ROUTING_STRATEGIES` key (or ``strategy_kwargs`` for the
        strategy constructor).  ``namespace`` partitions edges exactly like
        the router — one shard per worker, per-shard seeds
        ``stable_seed(seed, "stream-shard", k)`` — so results are
        bit-compatible with the single-process router and independent of
        where each shard runs.  The replica strategies give every worker the
        full capacity map and route whole batches.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast worker startup), ``spawn`` otherwise.

    Submission is synchronous when ``collect=True`` (entries return in
    arrival order) and pipelined when ``collect=False`` (:meth:`drain` is
    the barrier).  :meth:`checkpoint` drains, snapshots every worker session
    plus the routing state, and :meth:`restore` rebuilds the whole pool in
    fresh processes.  :meth:`close` shuts workers down and unlinks every
    shared-memory segment, on success and failure alike.
    """

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        num_workers: int,
        algorithm: str = "fractional",
        *,
        strategy: str = "namespace",
        backend: BackendSpec = None,
        record: Optional[bool] = None,
        seed: int = 0,
        namespace_of: Optional[Callable[[EdgeId], str]] = None,
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
        retain_log: bool = True,
        vectorized: bool = True,
        name: str = "shard-pool",
        strategy_kwargs: Optional[Dict[str, Any]] = None,
        start_method: Optional[str] = None,
        _worker_checkpoints: Optional[List[Optional[Dict[str, Any]]]] = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.algorithm_key = algorithm
        self.backend = resolve_backend_name(backend)
        self.record = resolve_record_flag(backend, record)
        self.seed = int(seed)
        self.name = name
        self.vectorized = bool(vectorized)
        self.retain_log = bool(retain_log)
        self._kwargs = dict(algorithm_kwargs or {})
        self.strategy_key = strategy.strip().lower()
        self._strategy = make_strategy(self.strategy_key, self.num_workers, **(strategy_kwargs or {}))
        from repro.engine.streaming import default_namespace

        self._namespace_of = namespace_of or default_namespace
        self._workers: List[Optional[_Worker]] = [None] * self.num_workers
        self._trace: Optional[SharedCompiledTrace] = None
        self._compiled: Optional[CompiledInstance] = None
        self._closed = False

        import multiprocessing as mp

        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)

        try:
            shard_caps = self._partition(capacities)
            for k, caps in enumerate(shard_caps):
                if not caps and _worker_checkpoints is None:
                    continue  # empty namespace partition: no worker, no traffic
                checkpoint = None
                if _worker_checkpoints is not None:
                    checkpoint = _worker_checkpoints[k]
                    if checkpoint is None:
                        continue
                config = _WorkerConfig(
                    shard=k,
                    capacities=caps,
                    algorithm=algorithm,
                    backend=self.backend,
                    record=record,
                    seed=stable_seed(self.seed, "stream-shard", k),
                    algorithm_kwargs=self._kwargs,
                    vectorized=self.vectorized,
                    retain_log=self.retain_log,
                    name=f"{name}/shard{k}",
                    checkpoint=checkpoint,
                )
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                process = self._ctx.Process(
                    target=_shard_worker, args=(child_conn, config), daemon=True
                )
                process.start()
                child_conn.close()
                self._workers[k] = _Worker(shard=k, process=process, conn=parent_conn)
            # Ready barrier: surface worker build errors here, not on first use.
            for worker in self._live():
                worker.pending.append("ready")
                payload = self._consume_one(worker)
                worker.processed = int(payload["processed"])
                worker.decisions = int(payload["decisions"])
        except BaseException:
            self.close()
            raise

    # -- construction helpers -----------------------------------------------------
    def _partition(self, capacities: Mapping[EdgeId, int]) -> List[Dict[EdgeId, int]]:
        """Per-shard capacity maps: namespace partition or full replicas."""
        if self._strategy.partitioned:
            shard_caps: List[Dict[EdgeId, int]] = [{} for _ in range(self.num_workers)]
            for edge, cap in capacities.items():
                shard = self._strategy.shard_of_namespace(self._namespace_of(edge))
                shard_caps[shard][edge] = int(cap)
            return shard_caps
        full = {edge: int(cap) for edge, cap in capacities.items()}
        return [dict(full) for _ in range(self.num_workers)]

    def _live(self) -> List[_Worker]:
        return [w for w in self._workers if w is not None]

    def _worker(self, shard: int) -> _Worker:
        worker = self._workers[shard]
        if worker is None:
            raise ValueError(f"shard {shard} has no edges and therefore no worker")
        return worker

    # -- protocol plumbing --------------------------------------------------------
    def _send(self, worker: _Worker, message: Tuple) -> None:
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError) as err:
            raise ShardWorkerError(
                f"shard {worker.shard} worker is gone (pid {worker.process.pid}): {err}"
            ) from None
        worker.pending.append(message[0])

    def _consume_one(self, worker: _Worker) -> Any:
        """Receive exactly one reply (FIFO) and apply its counters."""
        command = worker.pending.popleft()
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            raise ShardWorkerError(
                f"shard {worker.shard} worker died while processing {command!r} "
                f"(pid {worker.process.pid}, exitcode {worker.process.exitcode})"
            ) from None
        if reply[0] == "error":
            message, trace_text = reply[1], reply[2]
            raise ShardWorkerError(f"{message}\n--- worker traceback ---\n{trace_text}")
        payload = reply[1]
        if command in ("batch", "range"):
            worker.processed = int(payload["processed"])
            worker.decisions = int(payload["decisions"])
        return payload

    def _sync_reply(self, worker: _Worker) -> Any:
        """Drain the worker's reply queue; return the payload of the last one."""
        payload = None
        while worker.pending:
            payload = self._consume_one(worker)
        return payload

    def _reap(self) -> None:
        """Consume already-available replies without blocking (depth refresh)."""
        for worker in self._live():
            while worker.pending and worker.conn.poll():
                self._consume_one(worker)

    def _depths(self) -> List[int]:
        return [0 if w is None else len(w.pending) for w in self._workers]

    # -- routing ------------------------------------------------------------------
    def shard_of(self, request: Request) -> int:
        """Shard of one request under a partitioned strategy (router semantics)."""
        if not self._strategy.partitioned:
            raise TypeError(
                f"strategy {self.strategy_key!r} routes whole batches; "
                "per-request shards exist only under partitioned strategies"
            )
        shards = {
            self._strategy.shard_of_namespace(self._namespace_of(e)) for e in request.ordered_edges
        }
        if len(shards) != 1:
            raise ValueError(
                f"request {request.request_id} spans shards {sorted(shards)}; "
                "sharded streaming requires single-namespace requests"
            )
        return shards.pop()

    # -- streaming ----------------------------------------------------------------
    def submit_batch(
        self, requests: Iterable[Request], *, collect: bool = True
    ) -> Optional[List[Dict[str, Any]]]:
        """Submit a micro-batch; returns decision entries when ``collect``.

        Partitioned strategies split the batch into maximal same-shard runs
        (the router's arrival-order contract); replica strategies route the
        whole batch through the strategy.  With ``collect=False`` the
        submission is pipelined — call :meth:`drain` (or :meth:`checkpoint`)
        to wait for completion.
        """
        self._ensure_open()
        batch = list(requests)
        if not batch:
            return [] if collect else None
        self._reap()
        if self._strategy.partitioned:
            out: List[Dict[str, Any]] = []
            run: List[Request] = []
            run_shard: Optional[int] = None
            for request in batch:
                shard = self.shard_of(request)
                if run and shard != run_shard:
                    out.extend(self._submit_run(run_shard, run, collect))
                    run = []
                run_shard = shard
                run.append(request)
            if run:
                out.extend(self._submit_run(run_shard, run, collect))
            return out if collect else None
        self._reap()
        shard = self._strategy.route([r.cost for r in batch], self._depths())
        worker = self._worker(shard)
        self._send(worker, ("batch", batch, collect))
        if not collect:
            return None
        payload = self._sync_reply(worker)
        return list(payload["entries"])

    def _submit_run(
        self, shard: int, run: List[Request], collect: bool
    ) -> List[Dict[str, Any]]:
        worker = self._worker(shard)
        self._send(worker, ("batch", list(run), collect))
        if not collect:
            return []
        payload = self._sync_reply(worker)
        return list(payload["entries"])

    def submit_stream(
        self, requests: Iterable[Request], *, batch_size: int = 64, collect: bool = False
    ) -> int:
        """Drain an arrival iterable through :meth:`submit_batch` chunks."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        count = 0
        chunk: List[Request] = []
        for request in requests:
            chunk.append(request)
            if len(chunk) >= batch_size:
                self.submit_batch(chunk, collect=collect)
                count += len(chunk)
                chunk = []
        if chunk:
            self.submit_batch(chunk, collect=collect)
            count += len(chunk)
        self.drain()
        return count

    # -- shared-trace streaming ---------------------------------------------------
    def publish_trace(self, compiled: CompiledInstance) -> None:
        """Publish a compiled trace to shared memory and attach every worker."""
        self._ensure_open()
        if self._strategy.partitioned:
            raise TypeError(
                "shared-trace ranges route whole batches; use a replica strategy "
                f"(round_robin, least_loaded, cost_aware), not {self.strategy_key!r}"
            )
        if self._trace is not None:
            raise ValueError("a trace is already published on this pool")
        self._trace = SharedCompiledTrace(compiled)
        self._compiled = compiled
        handle = self._trace.handle()
        for worker in self._live():
            self._send(worker, ("attach", handle))
        for worker in self._live():
            self._sync_reply(worker)

    def submit_range(self, lo: int, hi: int, *, collect: bool = False) -> None:
        """Route arrivals ``[lo, hi)`` of the published trace to one shard.

        Workers read the arrivals straight out of shared memory — the parent
        ships two integers per batch, so routing cost is independent of batch
        size.  Pipelined like ``collect=False`` batches; :meth:`drain` is the
        barrier.
        """
        self._ensure_open()
        if self._trace is None or self._compiled is None:
            raise ValueError("no published trace; call publish_trace() first")
        if not (0 <= lo <= hi <= self._compiled.num_requests):
            raise ValueError(f"range [{lo}, {hi}) out of bounds")
        if lo == hi:
            return
        self._reap()
        costs = self._compiled.costs[lo:hi]
        shard = self._strategy.route(costs, self._depths())
        self._send(self._worker(shard), ("range", int(lo), int(hi), collect))

    def drain(self) -> int:
        """Barrier: wait for every outstanding submission; return total processed."""
        self._ensure_open()
        for worker in self._live():
            self._sync_reply(worker)
        return self.num_processed

    # -- introspection ------------------------------------------------------------
    @property
    def num_processed(self) -> int:
        """Arrivals acknowledged across all workers (call :meth:`drain` first
        for an exact count while pipelined submissions are in flight)."""
        return sum(w.processed for w in self._live())

    @property
    def num_decisions(self) -> int:
        """Decision entries acknowledged across all workers (see :attr:`num_processed`)."""
        return sum(w.decisions for w in self._live())

    def shard_stats(self) -> Dict[int, Dict[str, Any]]:
        """Non-blocking per-worker progress and queue-depth counters.

        Reaps already-available replies first (never blocks on in-flight
        work), so ``processed``/``decisions`` are the latest *acknowledged*
        counters and ``pending`` is the number of commands still awaiting a
        reply — the parent-side lag signal the service health monitor watches.
        The same shape is exported by
        :meth:`~repro.engine.streaming.StreamingSession.shard_stats` and
        :meth:`~repro.engine.streaming.ShardedStreamRouter.shard_stats`, so
        callers need not care which backend they hold.
        """
        self._ensure_open()
        self._reap()
        return {
            worker.shard: {
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "pending": len(worker.pending),
                "processed": worker.processed,
                "decisions": worker.decisions,
            }
            for worker in self._live()
        }

    def trace_segment_names(self) -> List[str]:
        """OS-level names of the published trace segments (empty if none).

        For hygiene checks: after :meth:`close` none of these may still exist
        under ``/dev/shm``.
        """
        return [] if self._trace is None else list(self._trace.segment_names)

    def decision_logs(self) -> Dict[int, List[Dict[str, Any]]]:
        """Per-shard decision logs (requires ``retain_log=True`` workers)."""
        self.drain()
        out: Dict[int, List[Dict[str, Any]]] = {}
        for worker in self._live():
            self._send(worker, ("log",))
            out[worker.shard] = list(self._sync_reply(worker))
        return out

    def summary(self) -> Dict[str, Any]:
        """Pool-level telemetry plus one line per worker session."""
        self.drain()
        shards: Dict[int, Any] = {}
        for worker in self._live():
            self._send(worker, ("summary",))
            shards[worker.shard] = self._sync_reply(worker)
        return {
            "name": self.name,
            "num_workers": self.num_workers,
            "strategy": self.strategy_key,
            "processed": self.num_processed,
            "shards": shards,
        }

    # -- checkpointing ------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Drain and snapshot the whole pool (sessions + routing state)."""
        self.drain()
        shards: List[Optional[Dict[str, Any]]] = [None] * self.num_workers
        for worker in self._live():
            self._send(worker, ("checkpoint",))
        for worker in self._live():
            shards[worker.shard] = self._sync_reply(worker)
        return {
            "kind": POOL_CHECKPOINT_KIND,
            "schema": CHECKPOINT_SCHEMA,
            "name": self.name,
            "algorithm": self.algorithm_key,
            "backend": self.backend,
            "record": self.record,
            "seed": self.seed,
            "num_workers": self.num_workers,
            "strategy": self.strategy_key,
            "strategy_state": self._strategy.export_state(),
            "shards": shards,
        }

    def save(self, path) -> Any:
        """Write :meth:`checkpoint` to ``path`` (atomic write-then-rename)."""
        return dump_checkpoint(self.checkpoint(), path)

    @classmethod
    def restore(
        cls,
        checkpoint: Mapping[str, Any],
        *,
        backend: BackendSpec = None,
        namespace_of: Optional[Callable[[EdgeId], str]] = None,
        retain_log: bool = True,
        start_method: Optional[str] = None,
    ) -> "ProcessShardPool":
        """Rebuild a pool (fresh worker processes) from a checkpoint document.

        The shard vector is validated against ``num_workers`` — and, under
        the ``namespace`` strategy, against the namespace partition — before
        any worker starts, so a checkpoint from a differently-sized pool
        fails with :class:`CheckpointFormatError` instead of misrouting.
        """
        validate_checkpoint(checkpoint, expected_kind=POOL_CHECKPOINT_KIND)
        num_workers = int(checkpoint["num_workers"])
        shards = checkpoint["shards"]
        if len(shards) != num_workers:
            raise CheckpointFormatError(
                f"pool checkpoint names num_workers={num_workers} but carries "
                f"{len(shards)} shard checkpoints; the file is corrupt or hand-edited"
            )
        strategy_key = checkpoint.get("strategy", "namespace")
        if strategy_key == "namespace":
            from repro.engine.streaming import validate_shard_partition

            validate_shard_partition(shards, num_workers, namespace_of, what="pool checkpoint")
        pool = cls(
            _capacities_union(shards),
            num_workers,
            checkpoint["algorithm"],
            strategy=strategy_key,
            backend=backend if backend is not None else checkpoint["backend"],
            record=bool(checkpoint["record"]),
            seed=int(checkpoint["seed"]),
            namespace_of=namespace_of,
            retain_log=retain_log,
            name=checkpoint.get("name", "shard-pool"),
            start_method=start_method,
            _worker_checkpoints=list(shards),
        )
        pool._strategy.restore_state(checkpoint.get("strategy_state") or {})
        return pool

    @classmethod
    def load(cls, path, **kwargs: Any) -> "ProcessShardPool":
        """Restore a pool from a checkpoint file written by :meth:`save`."""
        return cls.restore(load_checkpoint(path, expected_kind=POOL_CHECKPOINT_KIND), **kwargs)

    # -- lifecycle ----------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ValueError("pool is closed")

    def close(self, *, unlink: bool = True) -> None:
        """Stop every worker and release shared memory (idempotent).

        Runs on success and failure alike — the constructor and the context
        manager both funnel here — so no ``/dev/shm`` segment outlives the
        pool regardless of how it died.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for worker in self._live():
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._live():
                try:
                    worker.conn.close()
                except Exception:  # pragma: no cover
                    pass
                worker.process.join(timeout=10)
                if worker.process.is_alive():  # pragma: no cover - hung worker
                    worker.process.terminate()
                    worker.process.join(timeout=5)
        finally:
            self._workers = [None] * self.num_workers
            if self._trace is not None and unlink:
                self._trace.close()
                self._trace = None

    def terminate(self) -> None:
        """Kill the workers without draining (crash simulation; still unlinks)."""
        if self._closed:
            return
        self._closed = True
        try:
            for worker in self._live():
                worker.process.terminate()
                worker.process.join(timeout=5)
                try:
                    worker.conn.close()
                except Exception:  # pragma: no cover
                    pass
        finally:
            self._workers = [None] * self.num_workers
            if self._trace is not None:
                self._trace.close()
                self._trace = None

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent safety net
        try:
            self.close()
        except Exception:
            pass


def _capacities_union(shards: Sequence[Optional[Mapping[str, Any]]]) -> Dict[EdgeId, int]:
    """Merged capacity map of a checkpoint's shard vector (decoder included)."""
    from repro.instances.serialize import decode_edge_id

    union: Dict[EdgeId, int] = {}
    for shard in shards:
        if shard is None:
            continue
        for item in shard["capacities"]:
            union[decode_edge_id(item["edge"])] = int(item["capacity"])
    return union
