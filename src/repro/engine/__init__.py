"""Pluggable execution engine: backends, registries, runtime, executor.

The engine is the seam between *what* the paper's algorithms compute and *how*
the library executes it:

* :mod:`repro.engine.registry` — string-keyed registries for weight backends,
  admission/set-cover algorithms and experiments (strict duplicate handling,
  self-describing lookup errors).
* :mod:`repro.engine.backends` — the multiplicative-weight mechanism behind
  the :class:`~repro.engine.backends.WeightBackend` protocol, as scalar
  reference code (:class:`~repro.engine.backends.PythonWeightBackend`) and as
  vectorized NumPy kernels (:class:`~repro.engine.backends.NumpyWeightBackend`).
* :mod:`repro.engine.runtime` — :class:`~repro.engine.runtime.SimulationEngine`,
  which builds algorithms from registry keys, streams instances (optionally
  batching same-timestep arrivals) and collects results with timings.
* :mod:`repro.engine.executor` — the parallel trial executor with
  deterministic per-trial seed derivation.
* :mod:`repro.engine.config` — :class:`~repro.engine.config.EngineConfig`,
  the ``--backend`` / ``--jobs`` knobs as one picklable object.
* :mod:`repro.engine.sweep` — :class:`~repro.engine.sweep.ScenarioSweep`,
  the scenarios x algorithms x backends matrix runner (exported lazily: it
  sits above the analysis layer, so importing it here eagerly would cycle).
"""

from repro.engine.backends import (
    ArrivalOutcome,
    AugmentationRecord,
    NumpyWeightBackend,
    PythonWeightBackend,
    WeightBackend,
    make_weight_backend,
    resolve_backend_name,
    resolve_record_flag,
)
from repro.engine.config import EngineConfig
from repro.engine.executor import derive_seed_pairs, execute
from repro.engine.registry import (
    ADMISSION_ALGORITHMS,
    EXPERIMENTS,
    SETCOVER_ALGORITHMS,
    WEIGHT_BACKENDS,
    DuplicateKeyError,
    Registry,
    RegistryError,
    UnknownKeyError,
)
from repro.engine.runtime import (
    EngineRun,
    SimulationEngine,
    make_admission_algorithm,
    make_setcover_algorithm,
)

# Registers the optional "numba" backend when numba is installed (a no-op
# otherwise); must come after the backends import it builds on.
from repro.engine import numba_backend as _numba_backend  # noqa: E402,F401

def __getattr__(name: str):
    # Lazy: repro.engine.sweep imports repro.analysis (which imports
    # repro.core, which imports repro.engine.registry); importing it at the
    # top of this package would create a cycle.  repro.engine.streaming sits
    # above repro.core for the same reason.
    if name in ("ScenarioSweep", "SweepResult"):
        from repro.engine import sweep

        return getattr(sweep, name)
    if name in ("StreamingSession", "ShardedStreamRouter", "STREAMING_ALGORITHMS"):
        from repro.engine import streaming

        return getattr(streaming, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ScenarioSweep",
    "SweepResult",
    "StreamingSession",
    "ShardedStreamRouter",
    "STREAMING_ALGORITHMS",
    "ArrivalOutcome",
    "AugmentationRecord",
    "NumpyWeightBackend",
    "PythonWeightBackend",
    "WeightBackend",
    "make_weight_backend",
    "resolve_backend_name",
    "resolve_record_flag",
    "EngineConfig",
    "derive_seed_pairs",
    "execute",
    "ADMISSION_ALGORITHMS",
    "EXPERIMENTS",
    "SETCOVER_ALGORITHMS",
    "WEIGHT_BACKENDS",
    "DuplicateKeyError",
    "Registry",
    "RegistryError",
    "UnknownKeyError",
    "EngineRun",
    "SimulationEngine",
    "make_admission_algorithm",
    "make_setcover_algorithm",
]
