"""The simulation runtime: registry-driven algorithm builds, streaming, timing.

:class:`SimulationEngine` is the one place that knows how to turn a string key
plus an instance into a running algorithm, how to stream an instance's
arrivals through it (batching same-timestep arrivals when asked to), and how
to collect the run's result together with its wall-clock cost.  The CLI, the
experiments and the benchmark suite all sit on top of it, so "add an
algorithm" now means "register a builder" rather than "edit three call sites".

Builders have the uniform signature::

    build(instance, *, random_state=None, backend=None, **kwargs) -> algorithm

and are registered in :data:`repro.engine.registry.ADMISSION_ALGORITHMS` /
:data:`repro.engine.registry.SETCOVER_ALGORITHMS` by the modules that define
the algorithms.  :func:`make_admission_algorithm` and
:func:`make_setcover_algorithm` lazily import the built-in algorithm and
baseline modules, so resolving a key never depends on what the caller happened
to import first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Union

from repro.engine.config import EngineConfig
from repro.engine.registry import ADMISSION_ALGORITHMS, SETCOVER_ALGORITHMS
from repro.instances.compiled import CompiledInstance, compile_instance

__all__ = [
    "SimulationEngine",
    "EngineRun",
    "make_admission_algorithm",
    "make_setcover_algorithm",
    "ensure_builtin_registrations",
]

_BUILTINS_LOADED = False


def ensure_builtin_registrations() -> None:
    """Import the modules that register the built-in algorithms and backends.

    Registration happens at import time in ``repro.core`` and
    ``repro.baselines``; this makes registry lookups independent of the
    caller's import order.  Idempotent and cheap after the first call.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.baselines  # noqa: F401  (imported for registration side effect)
    import repro.core  # noqa: F401  (imported for registration side effect)
    import repro.engine.backends  # noqa: F401  (imported for registration side effect)

    _BUILTINS_LOADED = True


def make_admission_algorithm(
    key: str,
    instance,
    *,
    random_state=None,
    backend: Union[str, EngineConfig, None] = None,
    **kwargs,
):
    """Build a registered admission-control algorithm for ``instance``."""
    ensure_builtin_registrations()
    build = ADMISSION_ALGORITHMS.get(key)
    return build(instance, random_state=random_state, backend=backend, **kwargs)


def make_setcover_algorithm(
    key: str,
    instance,
    *,
    random_state=None,
    backend: Union[str, EngineConfig, None] = None,
    **kwargs,
):
    """Build a registered set-cover algorithm for ``instance``."""
    ensure_builtin_registrations()
    build = SETCOVER_ALGORITHMS.get(key)
    return build(instance, random_state=random_state, backend=backend, **kwargs)


@dataclass
class EngineRun:
    """Result collection for one engine-driven run.

    Attributes
    ----------
    result:
        The algorithm's own result object
        (:class:`~repro.core.protocols.AdmissionResult` or
        :class:`~repro.core.protocols.SetCoverResult`).
    algorithm:
        Display name of the algorithm that ran.
    backend:
        The weight backend the engine was configured with.
    seconds:
        Wall-clock time spent streaming the instance (excludes build time).
    num_arrivals / num_batches:
        How many arrivals were streamed and in how many batches.
    batch_sizes:
        Size of each dispatched batch, in order.
    """

    result: Any
    algorithm: str
    backend: str
    seconds: float
    num_arrivals: int
    num_batches: int
    batch_sizes: List[int] = field(default_factory=list)


class SimulationEngine:
    """Registry-driven runtime for online admission-control / set-cover runs.

    Parameters
    ----------
    config:
        An :class:`~repro.engine.config.EngineConfig`, a backend name, or
        ``None`` for the defaults.  The engine forwards the backend to every
        algorithm it builds and uses ``config.batching`` to group arrivals.
    """

    def __init__(self, config: Union[EngineConfig, str, None] = None):
        self.config = EngineConfig.resolve(config)

    # -- algorithm construction ---------------------------------------------------
    def build_admission(self, algorithm, instance, *, random_state=None, **kwargs):
        """Resolve ``algorithm`` (a registry key or an already-built object).

        The full :class:`EngineConfig` travels as the backend spec so the
        algorithms can pick up the ``record`` mode along with the backend.
        """
        if isinstance(algorithm, str):
            return make_admission_algorithm(
                algorithm,
                instance,
                random_state=random_state,
                backend=self.config,
                **kwargs,
            )
        return algorithm

    def build_setcover(self, algorithm, instance, *, random_state=None, **kwargs):
        """Resolve ``algorithm`` (a registry key or an already-built object)."""
        if isinstance(algorithm, str):
            return make_setcover_algorithm(
                algorithm,
                instance,
                random_state=random_state,
                backend=self.config,
                **kwargs,
            )
        return algorithm

    # -- instance streaming ----------------------------------------------------------
    def _iter_tag_batches(self, items: Iterable[Any], tag_of) -> Iterator[List[Any]]:
        """One batching algorithm for both request and index streams.

        With ``batching="none"`` every item is its own batch.  With
        ``batching="tag"`` consecutive items whose ``tag_of(item)`` agree are
        dispatched together.  Online order is preserved inside a batch.
        """
        if self.config.batching == "none":
            for item in items:
                yield [item]
            return
        batch: List[Any] = []
        current_tag: Any = None
        for item in items:
            tag = tag_of(item)
            if batch and tag != current_tag:
                yield batch
                batch = []
            current_tag = tag
            batch.append(item)
        if batch:
            yield batch

    def iter_batches(self, arrivals: Iterable[Any]) -> Iterator[List[Any]]:
        """Group an arrival stream into dispatch batches.

        With ``batching="tag"`` consecutive arrivals sharing a ``tag``
        attribute are dispatched together — the set-cover reduction's phase-1
        block and any workload that stamps same-timestep arrivals with a
        common tag arrive as one batch.
        """
        return self._iter_tag_batches(arrivals, lambda arrival: getattr(arrival, "tag", None))

    def iter_index_batches(self, compiled: CompiledInstance) -> Iterator[List[int]]:
        """Like :meth:`iter_batches` but over compiled arrival indices."""
        return self._iter_tag_batches(range(compiled.num_requests), compiled.tags.__getitem__)

    # -- running --------------------------------------------------------------------
    def run_admission(self, algorithm, instance, *, random_state=None, **kwargs) -> EngineRun:
        """Build (if needed) and run an admission algorithm over ``instance``.

        With ``config.compile`` (the default) the instance is compiled once —
        edge ids interned, paths as CSR arrays — and the arrivals stream
        through the algorithm's ``process_indexed`` fast path when it has
        one; otherwise the per-request path runs.  Compilation is memoized on
        the instance, so repeated runs (other algorithms, other trials) reuse
        the arrays.
        """
        algo = self.build_admission(algorithm, instance, random_state=random_state, **kwargs)
        batch_sizes: List[int] = []
        start = time.perf_counter()
        # Compilation happens inside the timed region: it is part of what a
        # run pays per instance, so compile-on/off timings stay comparable
        # (memoized re-runs make it O(1) anyway).
        compiled: Optional[CompiledInstance] = None
        if self.config.compile and hasattr(algo, "process_indexed"):
            compiled = compile_instance(instance)
        if compiled is not None:
            ranged = hasattr(algo, "process_compiled_range")
            for index_batch in self.iter_index_batches(compiled):
                batch_sizes.append(len(index_batch))
                if ranged:
                    # Index batches are contiguous by construction, so the
                    # whole batch goes through the trace executor in one call
                    # (vectorized per config; the executor is the escape-hatch
                    # per-arrival loop when config.vectorized is off).
                    algo.process_compiled_range(
                        compiled,
                        index_batch[0],
                        index_batch[-1] + 1,
                        vectorized=self.config.vectorized,
                    )
                else:
                    for i in index_batch:
                        algo.process_indexed(compiled, i)
        else:
            for batch in self.iter_batches(instance.requests):
                batch_sizes.append(len(batch))
                for request in batch:
                    algo.process(request)
        seconds = time.perf_counter() - start
        result = algo.result()
        return EngineRun(
            result=result,
            algorithm=result.algorithm,
            backend=self.config.backend,
            seconds=seconds,
            num_arrivals=sum(batch_sizes),
            num_batches=len(batch_sizes),
            batch_sizes=batch_sizes,
        )

    def run_setcover(self, algorithm, instance, *, random_state=None, **kwargs) -> EngineRun:
        """Build (if needed) and run a set-cover algorithm over ``instance``."""
        algo = self.build_setcover(algorithm, instance, random_state=random_state, **kwargs)
        batch_sizes: List[int] = []
        start = time.perf_counter()
        for batch in self.iter_batches(instance.arrivals):
            batch_sizes.append(len(batch))
            for element in batch:
                algo.process_element(element)
        seconds = time.perf_counter() - start
        result = algo.result()
        return EngineRun(
            result=result,
            algorithm=result.algorithm,
            backend=self.config.backend,
            seconds=seconds,
            num_arrivals=sum(batch_sizes),
            num_batches=len(batch_sizes),
            batch_sizes=batch_sizes,
        )
