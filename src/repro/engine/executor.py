"""Parallel trial executor: fan work out over processes, degrade gracefully.

The executor runs a function over a list of work items with ``jobs`` workers.
It prefers :class:`concurrent.futures.ProcessPoolExecutor` (true multi-core
parallelism), but many call sites build work items from closures — experiment
sweeps capture grid parameters in lambdas — which cannot cross a process
boundary.  Those fall back to a thread pool (the offline HiGHS solves release
the GIL for most of their runtime) and, on any pool-level failure, to plain
serial execution.  Results always come back in submission order, and because
every trial's random seed is derived *before* dispatch (see
:func:`derive_seed_pairs`), the results are bit-identical no matter which lane
executed them or in what order they finished.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Sequence, Tuple, TypeVar, Union

import numpy as np

from repro.engine.config import resolve_jobs

__all__ = ["execute", "derive_seed_pairs", "is_picklable"]

T = TypeVar("T")
R = TypeVar("R")

#: Seed types handed to workers: picklable and convertible by ``as_generator``.
TrialSeed = Union[int, np.random.SeedSequence]


def is_picklable(*objects: Any) -> bool:
    """True if every object survives ``pickle.dumps`` (process-pool eligible)."""
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


def derive_seed_pairs(random_state: Any, num_trials: int) -> List[Tuple[TrialSeed, TrialSeed]]:
    """Derive ``(workload seed, algorithm seed)`` pairs for ``num_trials`` trials.

    The derivation matches :func:`repro.utils.rng.spawn_generators` exactly —
    trial ``t`` receives the children ``2t`` and ``2t + 1`` of the root seed —
    so a parallel run reproduces the serial run bit for bit, and a given trial
    index always sees the same streams regardless of how many trials run or on
    how many workers.
    """
    if num_trials < 0:
        raise ValueError("num_trials must be non-negative")
    count = 2 * num_trials
    if isinstance(random_state, np.random.Generator):
        seeds = random_state.integers(0, 2**63 - 1, size=count)
        children: Sequence[TrialSeed] = [int(s) for s in seeds]
    else:
        seq = (
            random_state
            if isinstance(random_state, np.random.SeedSequence)
            else np.random.SeedSequence(random_state)
        )
        children = seq.spawn(count)
    return [(children[2 * t], children[2 * t + 1]) for t in range(num_trials)]


def execute(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
    prefer_processes: bool = True,
) -> List[R]:
    """Run ``fn`` over ``items`` with up to ``jobs`` workers; results in order.

    ``jobs <= 1`` (after :func:`~repro.engine.config.resolve_jobs`
    normalisation of non-positive values) runs serially.  With multiple
    workers the executor picks the widest lane that can carry the work:
    processes when ``fn`` and the items pickle, otherwise threads.  Worker
    exceptions propagate to the caller unchanged in both pooled lanes.
    """
    work = list(items)
    jobs = resolve_jobs(jobs) if jobs is not None and jobs <= 0 else int(jobs or 1)
    workers = min(jobs, len(work))
    if workers <= 1:
        return [fn(item) for item in work]

    if prefer_processes and is_picklable(fn, work):
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, work))
        except (pickle.PicklingError, OSError):
            # Pool startup can fail in constrained sandboxes; fall through.
            pass
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, work))
