"""Engine configuration shared by the CLI, experiments and the runtime.

:class:`EngineConfig` is the one object that travels from the command line
(``--backend numpy --jobs 4``) down through :class:`repro.experiments.base.
ExperimentConfig` into algorithm constructors and the trial executor.  It is a
frozen, picklable dataclass so it can cross process boundaries unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Union

__all__ = ["EngineConfig", "DEFAULT_BACKEND", "resolve_jobs"]

#: The reference backend: scalar pure-Python, bit-for-bit the paper's pseudocode.
DEFAULT_BACKEND = "python"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0``/negative mean "all cores"."""
    if jobs is None or int(jobs) <= 0:
        return max(os.cpu_count() or 1, 1)
    return int(jobs)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine.

    Attributes
    ----------
    backend:
        Weight-mechanism backend key resolved through
        :data:`repro.engine.registry.WEIGHT_BACKENDS` (``"python"`` or
        ``"numpy"``).
    jobs:
        Worker count for the parallel trial executor; ``1`` runs serially,
        ``0`` (or any non-positive value) means one worker per CPU core.
    batching:
        How :class:`repro.engine.runtime.SimulationEngine` groups arrivals
        into batches: ``"none"`` streams one request per batch, ``"tag"``
        groups consecutive same-tag arrivals (e.g. the set-cover reduction's
        phase-1 block) so same-timestep arrivals are dispatched together.
    compile:
        Compile instances once (edge interning + CSR paths, see
        :mod:`repro.instances.compiled`) and stream them through the
        algorithms' int-indexed fast paths.  Falls back transparently for
        algorithms without an indexed path.  Never changes a reported number.
    record:
        Materialize per-arrival :class:`~repro.engine.backends.ArrivalOutcome`
        deltas and augmentation records.  ``False`` skips the diagnostics on
        the pure fractional paths (algorithms that *consume* deltas — the
        randomized rounding — keep recording regardless).  Never changes a
        reported number.
    vectorized:
        Route compiled contiguous arrival ranges through the whole-trace
        executor (:mod:`repro.engine.vectorized`), which batches provably
        inert stretches and fuses the rest.  ``False`` is the per-arrival
        escape hatch.  Only applies where ``compile`` applies; never changes
        a reported number.
    """

    backend: str = DEFAULT_BACKEND
    jobs: int = 1
    batching: str = "none"
    compile: bool = True
    record: bool = True
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.batching not in ("none", "tag"):
            raise ValueError(f"batching must be 'none' or 'tag', got {self.batching!r}")

    @property
    def effective_jobs(self) -> int:
        """The resolved worker count (non-positive ``jobs`` -> CPU count)."""
        return resolve_jobs(self.jobs)

    def with_jobs(self, jobs: int) -> "EngineConfig":
        """Copy of this config with a different worker count."""
        return replace(self, jobs=jobs)

    @classmethod
    def resolve(cls, value: Union["EngineConfig", str, None]) -> "EngineConfig":
        """Coerce ``None`` / a backend name / an existing config into a config."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(backend=value)
        raise TypeError(f"cannot build an EngineConfig from {value!r}")
