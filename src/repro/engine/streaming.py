"""The streaming service layer: long-lived incremental sessions with checkpoints.

Everything below :class:`~repro.engine.runtime.SimulationEngine` is batch
shaped — build the whole instance, then run it.  The paper's algorithms are
*online*, though: requests arrive one at a time and decisions are
irrevocable, which is exactly the shape of a serving system.  This module
gives the runtime that shape:

* :class:`StreamingSession` — a long-lived session around one online
  algorithm.  Arrivals are accepted incrementally (:meth:`~StreamingSession.
  submit` for single requests, :meth:`~StreamingSession.submit_batch` for
  micro-batches routed through the compiled fast path), and the session's
  full state — weights, fractions, admitted sets, RNG state, interning
  tables — can be snapshotted to a versioned, JSON-serialisable
  **checkpoint** (:meth:`~StreamingSession.checkpoint` / :meth:`~
  StreamingSession.save`) and restored later, in another process, on either
  weight backend (:meth:`~StreamingSession.restore` / :meth:`~
  StreamingSession.load`).  A restored session's future decision log is
  identical (to 1e-9, in practice bit-for-bit) to an uninterrupted run.
* :class:`ShardedStreamRouter` — N independent sessions over a namespaced
  edge set.  Edges are partitioned by namespace (``"b0:edge"`` → ``"b0"``,
  configurable), every namespace maps deterministically to one shard
  (:func:`repro.utils.rng.stable_seed`, so the mapping survives process
  restarts and ``PYTHONHASHSEED``), and each shard gets its own derived
  seed.  Router checkpoints are simply the vector of shard checkpoints.

The durable-state contract: a checkpoint carries the *logical* state the
future evolution depends on and nothing else.  Per-arrival diagnostics
(:class:`~repro.engine.backends.ArrivalOutcome` deltas, augmentation
history) are reproducible artefacts, not state — restored decisions carry
``outcome=None`` exactly like a ``record=False`` run.  Schema versioning
lives in :mod:`repro.instances.serialize` (``CHECKPOINT_SCHEMA``): loaders
reject versions they do not know instead of guessing.

``repro serve`` (the CLI front-end) replays a JSONL trace through a session
or router with periodic checkpoints and ``--resume`` support; see
``examples/streaming_service.py`` for the library-level tour.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.engine.backends import BackendSpec, resolve_backend_name, resolve_record_flag
from repro.engine.registry import Registry
from repro.instances.compiled import compile_sequence
from repro.instances.request import EdgeId, Request, RequestSequence
from repro.instances.serialize import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CheckpointFormatError,
    decode_edge_id,
    dump_checkpoint,
    encode_edge_id,
    load_checkpoint,
    validate_checkpoint,
)
from repro.utils.rng import as_generator, stable_seed

__all__ = [
    "StreamingSession",
    "ShardedStreamRouter",
    "STREAMING_ALGORITHMS",
    "ROUTER_CHECKPOINT_KIND",
    "default_namespace",
    "validate_shard_partition",
]

#: The ``kind`` field of a router checkpoint (a vector of session checkpoints).
ROUTER_CHECKPOINT_KIND = "streaming-router-checkpoint"

#: Builders for the streaming-capable algorithms.  Streaming sessions cannot
#: inspect a full instance up front (there is none), so unlike
#: :data:`~repro.engine.registry.ADMISSION_ALGORITHMS` these builders take the
#: capacity mapping directly and never infer weighted/unweighted from costs —
#: pass ``unweighted=True`` / ``weighted=False`` explicitly when that is meant.
STREAMING_ALGORITHMS: Registry = Registry("streaming algorithm")


@STREAMING_ALGORITHMS.register("fractional")
def _build_fractional(capacities, *, random_state, backend, record, **kwargs):
    from repro.core.fractional import FractionalAdmissionControl

    return FractionalAdmissionControl(capacities, backend=backend, record=record, **kwargs)


@STREAMING_ALGORITHMS.register("doubling-fractional")
def _build_doubling_fractional(capacities, *, random_state, backend, record, **kwargs):
    from repro.core.doubling import DoublingFractionalAdmissionControl

    return DoublingFractionalAdmissionControl(
        capacities, backend=backend, record=record, **kwargs
    )


@STREAMING_ALGORITHMS.register("randomized")
def _build_randomized(capacities, *, random_state, backend, record, **kwargs):
    # The rounding consumes shadow deltas, so `record` does not apply here.
    from repro.core.randomized import RandomizedAdmissionControl

    return RandomizedAdmissionControl(
        capacities, random_state=random_state, backend=backend, **kwargs
    )


@STREAMING_ALGORITHMS.register("doubling")
def _build_doubling(capacities, *, random_state, backend, record, **kwargs):
    from repro.core.doubling import DoublingAdmissionControl

    return DoublingAdmissionControl(
        capacities, random_state=random_state, backend=backend, **kwargs
    )


def _normalize_decision(decision: Any) -> Dict[str, Any]:
    """One JSON-able log entry per decision, for both algorithm families.

    Fractional algorithms log ``(id, cost class, fraction rejected)``;
    integral ones log ``(id, accept/reject/preempt, triggering arrival)``.
    """
    if hasattr(decision, "cost_class"):
        return {
            "id": int(decision.request_id),
            "event": decision.cost_class,
            "fraction": float(decision.fraction_rejected),
        }
    return {
        "id": int(decision.request_id),
        "event": decision.kind,
        "at": None if decision.at_request is None else int(decision.at_request),
    }


class StreamingSession:
    """A long-lived admission-control session over an unbounded arrival stream.

    Parameters
    ----------
    capacities:
        Edge-capacity mapping.  Its iteration order fixes the interning used
        by the weight backend *and* by every micro-batch compilation, and is
        recorded in checkpoints so a restored session interns identically.
    algorithm:
        A :data:`STREAMING_ALGORITHMS` key (``"fractional"``,
        ``"randomized"``, ``"doubling"``, ``"doubling-fractional"``) or an
        already-built algorithm object.  Sessions around externally-built
        objects stream fine but cannot be checkpointed (the checkpoint could
        not name how to rebuild them).
    backend / record:
        Weight-backend spec and diagnostics mode, as everywhere else.
    seed:
        Integer seed for the algorithm's RNG (randomized rounding).  Stored
        in checkpoints for provenance; the *exact* RNG state is checkpointed
        separately, so resumed coin flips are bit-identical regardless.
    algorithm_kwargs:
        Extra keyword arguments for the algorithm builder (must be
        JSON-serialisable for the session to be checkpointable).
    retain_log:
        Keep the normalized decision entries in memory (the default; what
        :meth:`decision_log` returns).  Pass ``False`` for unbounded serving
        loops that stream entries elsewhere (``repro serve`` appends them to
        a file): :meth:`submit`/:meth:`submit_batch` still return each
        batch's entries and :attr:`num_decisions` still counts them, but
        nothing accumulates in the session.
    vectorized:
        Route compiled micro-batches through the whole-trace executor
        (:mod:`repro.engine.vectorized`) when the algorithm supports it.
        A runtime preference like ``retain_log`` — it never changes a
        decision, so it is not checkpoint state and is chosen per session.
    """

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        algorithm: Union[str, Any] = "fractional",
        *,
        backend: BackendSpec = None,
        record: Optional[bool] = None,
        seed: Optional[int] = None,
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
        retain_log: bool = True,
        vectorized: bool = True,
        name: str = "streaming-session",
    ):
        self._capacities: Dict[EdgeId, int] = {e: int(c) for e, c in capacities.items()}
        if not self._capacities:
            raise ValueError("a streaming session needs at least one edge")
        self.backend = resolve_backend_name(backend)
        self.record = resolve_record_flag(backend, record)
        self.seed = None if seed is None else int(seed)
        self.vectorized = bool(vectorized)
        self.name = name
        self._kwargs: Dict[str, Any] = dict(algorithm_kwargs or {})
        self.num_processed = 0

        if isinstance(algorithm, str):
            self.algorithm_key: Optional[str] = algorithm.strip().lower()
            build = STREAMING_ALGORITHMS.get(self.algorithm_key)
            self._algorithm = build(
                self._capacities,
                random_state=as_generator(self.seed),
                backend=backend if backend is not None else self.backend,
                record=record,
                **self._kwargs,
            )
        else:
            self.algorithm_key = None
            self._algorithm = algorithm
        self.retain_log = bool(retain_log)
        self._logged = 0
        self._decision_log: List[Dict[str, Any]] = []

    # -- introspection ------------------------------------------------------------
    @property
    def algorithm(self) -> Any:
        """The live algorithm object (read-only use recommended)."""
        return self._algorithm

    def capacities(self) -> Dict[EdgeId, int]:
        """Copy of the session's capacity mapping (interning order preserved)."""
        return dict(self._capacities)

    def decision_log(self) -> List[Dict[str, Any]]:
        """The normalized, JSON-able decision log accumulated so far.

        Requires ``retain_log=True`` (the default); retention-free sessions
        stream entries through the :meth:`submit` return values instead.
        """
        if not self.retain_log:
            raise RuntimeError(
                "decision_log() is unavailable with retain_log=False; consume the "
                "entries submit()/submit_batch() return instead"
            )
        self._sync_log()
        return list(self._decision_log)

    @property
    def num_decisions(self) -> int:
        """Number of decision entries logged so far (arrivals + preemptions)."""
        self._sync_log()
        return self._logged

    def _sync_log(self) -> List[Dict[str, Any]]:
        """Pull decisions the algorithm appended since the last sync.

        Reads only the tail (``decisions_since``), so a poll after every
        micro-batch costs O(batch), not O(run length) — the difference
        between linear and quadratic over an unbounded stream.
        """
        fresh = [
            _normalize_decision(d)
            for d in self._algorithm.decisions_since(self._logged)
        ]
        self._logged += len(fresh)
        if self.retain_log:
            self._decision_log.extend(fresh)
        return fresh

    # -- streaming ----------------------------------------------------------------
    def submit(self, request: Request) -> Dict[str, Any]:
        """Process one arrival; returns the normalized decision entry.

        Preemptions triggered by the arrival appear in :meth:`decision_log`
        (they are decisions about *other* requests), not in the return value.
        """
        decision = self._algorithm.process(request)
        self.num_processed += 1
        self._sync_log()
        return _normalize_decision(decision)

    def submit_batch(self, requests: Iterable[Request]) -> List[Dict[str, Any]]:
        """Process a micro-batch through the compiled fast path.

        The batch is compiled against the session capacities (same interning
        as the weight backend, so no per-arrival translation) and streamed
        through the algorithm's ``process_compiled_range`` (the whole-trace
        executor when the session is ``vectorized``) or ``process_indexed``;
        algorithms without an indexed path fall back to per-request
        processing.  Decisions are identical to submitting one by one —
        batching is purely mechanical.
        Returns every decision entry the batch produced, preemptions
        included.
        """
        batch = list(requests)
        if not batch:
            return []
        if hasattr(self._algorithm, "process_compiled_range"):
            compiled = compile_sequence(
                RequestSequence(batch), self._capacities, name=f"{self.name}-batch"
            )
            self._algorithm.process_compiled_range(
                compiled, 0, compiled.num_requests, vectorized=self.vectorized
            )
        elif hasattr(self._algorithm, "process_indexed"):
            compiled = compile_sequence(
                RequestSequence(batch), self._capacities, name=f"{self.name}-batch"
            )
            for i in range(compiled.num_requests):
                self._algorithm.process_indexed(compiled, i)
        else:
            for request in batch:
                self._algorithm.process(request)
        self.num_processed += len(batch)
        return self._sync_log()

    def submit_compiled_range(self, compiled, lo: int, hi: int) -> List[Dict[str, Any]]:
        """Process arrivals ``lo..hi`` of an already-compiled trace.

        The zero-copy sibling of :meth:`submit_batch`: when the caller holds a
        :class:`~repro.instances.compiled.CompiledInstance` (recorded trace,
        shared-memory segment mapped by a shard worker), streaming a range
        through it skips the per-batch ``compile_sequence``.  The compiled
        interning may differ from the session's — the algorithm's range path
        translates (or fast-paths the identical-order case).  Decisions are
        identical to :meth:`submit_batch` over the same requests.
        """
        if not 0 <= lo <= hi <= compiled.num_requests:
            raise ValueError(
                f"range [{lo}, {hi}) out of bounds for {compiled.num_requests} requests"
            )
        if lo == hi:
            return []
        if hasattr(self._algorithm, "process_compiled_range"):
            self._algorithm.process_compiled_range(
                compiled, lo, hi, vectorized=self.vectorized
            )
        elif hasattr(self._algorithm, "process_indexed"):
            for i in range(lo, hi):
                self._algorithm.process_indexed(compiled, i)
        else:
            for i in range(lo, hi):
                self._algorithm.process(compiled.request(i))
        self.num_processed += hi - lo
        return self._sync_log()

    def submit_stream(
        self, requests: Iterable[Request], *, batch_size: int = 64
    ) -> int:
        """Drain an arrival iterable through :meth:`submit_batch` chunks.

        Returns the number of arrivals processed.  ``batch_size=1`` degrades
        to per-request submission.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        count = 0
        chunk: List[Request] = []
        for request in requests:
            chunk.append(request)
            if len(chunk) >= batch_size:
                self.submit_batch(chunk)
                count += len(chunk)
                chunk = []
        if chunk:
            self.submit_batch(chunk)
            count += len(chunk)
        return count

    def shard_stats(self) -> Dict[int, Dict[str, Any]]:
        """Single-shard progress counters in the pool's ``shard_stats`` shape.

        An in-process session is always "shard 0, alive, nothing pending";
        exporting the same shape as
        :meth:`~repro.engine.shards.ProcessShardPool.shard_stats` lets the
        service health monitor treat every backend uniformly.
        """
        return {
            0: {
                "pid": None,
                "alive": True,
                "pending": 0,
                "processed": self.num_processed,
                "decisions": self.num_decisions,
            }
        }

    # -- results ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """One JSON-able line of session telemetry."""
        out: Dict[str, Any] = {
            "name": self.name,
            "algorithm": self.algorithm_key or type(self._algorithm).__name__,
            "backend": self.backend,
            "processed": self.num_processed,
            "decisions": self.num_decisions,
        }
        if hasattr(self._algorithm, "rejection_cost"):
            out["rejection_cost"] = float(self._algorithm.rejection_cost())
        if hasattr(self._algorithm, "fractional_cost"):
            out["fractional_cost"] = float(self._algorithm.fractional_cost())
        return out

    # -- checkpointing ------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the session as a versioned, JSON-serialisable document."""
        if self.algorithm_key is None:
            raise TypeError(
                "sessions around externally-built algorithm objects cannot be "
                "checkpointed; construct the session from a STREAMING_ALGORITHMS key"
            )
        if not hasattr(self._algorithm, "export_state"):
            raise TypeError(
                f"algorithm {self.algorithm_key!r} does not support state export"
            )
        self._sync_log()
        return {
            "kind": CHECKPOINT_KIND,
            "schema": CHECKPOINT_SCHEMA,
            "name": self.name,
            "algorithm": self.algorithm_key,
            "algorithm_kwargs": self._kwargs,
            "backend": self.backend,
            "record": self.record,
            "seed": self.seed,
            "num_processed": self.num_processed,
            "capacities": [
                {"edge": encode_edge_id(e), "capacity": c}
                for e, c in self._capacities.items()
            ],
            "algorithm_state": self._algorithm.export_state(),
        }

    @classmethod
    def restore(
        cls,
        checkpoint: Mapping[str, Any],
        *,
        backend: BackendSpec = None,
        retain_log: bool = True,
    ) -> "StreamingSession":
        """Rebuild a session from a :meth:`checkpoint` document.

        ``backend`` overrides the checkpointed backend (checkpoints are
        backend-portable: weights are bit-identical across backends).
        ``retain_log`` is a runtime preference, not state, so it is chosen
        per restore.
        """
        validate_checkpoint(checkpoint)
        capacities = {
            decode_edge_id(item["edge"]): int(item["capacity"])
            for item in checkpoint["capacities"]
        }
        session = cls(
            capacities,
            algorithm=checkpoint["algorithm"],
            backend=backend if backend is not None else checkpoint["backend"],
            record=bool(checkpoint["record"]),
            seed=checkpoint["seed"],
            algorithm_kwargs=dict(checkpoint.get("algorithm_kwargs") or {}),
            retain_log=retain_log,
            name=checkpoint.get("name", "streaming-session"),
        )
        session._algorithm.restore_state(checkpoint["algorithm_state"])
        session.num_processed = int(checkpoint["num_processed"])
        session._sync_log()
        return session

    def save(self, path) -> Any:
        """Write :meth:`checkpoint` to ``path`` (atomic write-then-rename)."""
        return dump_checkpoint(self.checkpoint(), path)

    @classmethod
    def load(
        cls, path, *, backend: BackendSpec = None, retain_log: bool = True
    ) -> "StreamingSession":
        """Restore a session from a checkpoint file written by :meth:`save`."""
        return cls.restore(load_checkpoint(path), backend=backend, retain_log=retain_log)


def default_namespace(edge: EdgeId) -> str:
    """Namespace of an edge id: the prefix before the first ``":"``.

    String ids like ``"b0:e3"`` (the adversarial-mix convention) map to
    ``"b0"``.  Ids with no ``":"`` (plain strings, the network layer's
    ``(u, v)`` tuples) all share the single ``"default"`` namespace: a
    multi-edge request must land inside one shard, and without declared
    namespaces there is no partition that can guarantee it — one edge per
    namespace would reject the first multi-edge request it sees.  Such
    workloads shard trivially (one live shard) under the default; pass a
    topology-aware ``namespace_of`` to actually spread them.
    """
    text = edge if isinstance(edge, str) else repr(edge)
    return text.split(":", 1)[0] if ":" in text else "default"


def validate_shard_partition(
    shards: List[Optional[Mapping[str, Any]]],
    num_shards: int,
    namespace_of: Optional[Callable[[EdgeId], str]] = None,
    *,
    what: str = "checkpoint",
) -> None:
    """Check a vector of shard checkpoints against a shard count.

    A namespace-partitioned checkpoint is only meaningful at the shard count
    it was written with: ``stable_seed(namespace) % num_shards`` changes with
    ``num_shards``, so resuming a 4-shard checkpoint as a 2-shard router would
    silently misroute every future arrival (new traffic hashed to shard 1 of
    2, historical weights sitting in shard 3 of 4).  This validates both the
    vector length and — for every edge in every non-empty shard — that the
    edge's namespace still hashes to the shard index it was checkpointed in.
    Raises :class:`~repro.instances.serialize.CheckpointFormatError` on any
    mismatch, naming the offending shard/namespace.
    """
    resolve = namespace_of or default_namespace
    if len(shards) != int(num_shards):
        raise CheckpointFormatError(
            f"{what} carries {len(shards)} shard slots but num_shards={num_shards}; "
            "a namespace partition is only valid at the shard count it was written "
            "with — resume with the original count (or re-shard via a fresh run)"
        )
    for index, shard in enumerate(shards):
        if shard is None:
            continue
        for item in shard.get("capacities", []):
            edge = decode_edge_id(item["edge"])
            namespace = resolve(edge)
            expected = stable_seed(namespace, "stream-shard") % int(num_shards)
            if expected != index:
                raise CheckpointFormatError(
                    f"{what} shard {index} holds edge {edge!r} whose namespace "
                    f"{namespace!r} hashes to shard {expected} of {num_shards}; the "
                    "checkpoint was written under a different partition (changed "
                    "shard count or namespace_of) and cannot be resumed safely"
                )


class ShardedStreamRouter:
    """Partition a namespaced edge set across N independent streaming sessions.

    Each edge belongs to a *namespace* (:func:`default_namespace` by default;
    pass ``namespace_of`` to override), each namespace maps to one shard via
    ``stable_seed(namespace, "stream-shard") % num_shards`` — deterministic
    across processes and hash seeds — and each shard is a fully independent
    :class:`StreamingSession` with its own derived seed
    (``stable_seed(seed, "stream-shard", shard_index)``).  Requests must stay
    within one namespace's shard: a request whose edges span shards is
    rejected with :class:`ValueError` (shards share no state to coordinate
    it).

    Shards with no edges stay ``None`` and never receive traffic, so any
    ``num_shards`` works regardless of how many namespaces exist.
    """

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        num_shards: int,
        algorithm: str = "fractional",
        *,
        backend: BackendSpec = None,
        record: Optional[bool] = None,
        seed: int = 0,
        namespace_of: Optional[Callable[[EdgeId], str]] = None,
        algorithm_kwargs: Optional[Dict[str, Any]] = None,
        retain_log: bool = True,
        vectorized: bool = True,
        name: str = "stream-router",
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self.algorithm_key = algorithm
        self.backend = resolve_backend_name(backend)
        self.record = resolve_record_flag(backend, record)
        self.seed = int(seed)
        self.name = name
        self._namespace_of = namespace_of or default_namespace

        shard_caps: List[Dict[EdgeId, int]] = [{} for _ in range(self.num_shards)]
        for edge, cap in capacities.items():
            shard_caps[self._shard_of_namespace(self._namespace_of(edge))][edge] = int(cap)
        self._sessions: List[Optional[StreamingSession]] = [
            StreamingSession(
                caps,
                algorithm=algorithm,
                backend=backend,
                record=record,
                seed=stable_seed(self.seed, "stream-shard", k),
                algorithm_kwargs=algorithm_kwargs,
                retain_log=retain_log,
                vectorized=vectorized,
                name=f"{name}/shard{k}",
            )
            if caps
            else None
            for k, caps in enumerate(shard_caps)
        ]

    def _shard_of_namespace(self, namespace: str) -> int:
        return stable_seed(namespace, "stream-shard") % self.num_shards

    # -- routing -------------------------------------------------------------------
    def shard_of(self, request: Request) -> int:
        """The shard index a request routes to (ValueError if it spans shards)."""
        shards = {self._shard_of_namespace(self._namespace_of(e)) for e in request.ordered_edges}
        if len(shards) != 1:
            raise ValueError(
                f"request {request.request_id} spans shards {sorted(shards)}; "
                "sharded streaming requires single-namespace requests"
            )
        return shards.pop()

    def session(self, shard: int) -> StreamingSession:
        """The live session of one shard (ValueError for empty shards)."""
        sess = self._sessions[shard]
        if sess is None:
            raise ValueError(f"shard {shard} has no edges and therefore no session")
        return sess

    def sessions(self) -> List[Tuple[int, StreamingSession]]:
        """``(shard index, session)`` pairs for every non-empty shard."""
        return [(k, s) for k, s in enumerate(self._sessions) if s is not None]

    @property
    def num_processed(self) -> int:
        """Total arrivals processed across all shards."""
        return sum(s.num_processed for _, s in self.sessions())

    @property
    def num_decisions(self) -> int:
        """Total decision entries logged across all shards."""
        return sum(s.num_decisions for _, s in self.sessions())

    def submit(self, request: Request) -> Dict[str, Any]:
        """Route one arrival to its shard's session."""
        return self.session(self.shard_of(request)).submit(request)

    def submit_batch(self, requests: Iterable[Request]) -> List[Dict[str, Any]]:
        """Route a micro-batch, emitting decisions in *arrival* order.

        The batch is split into maximal runs of consecutive same-shard
        arrivals and each run streams through its shard's compiled
        micro-batch path.  Emitting run by run keeps the returned entries in
        arrival order, which makes the combined decision stream a function of
        the arrival sequence alone — independent of how callers chop it into
        batches, and therefore identical across a checkpoint/resume whose
        batch boundaries shifted.  (Grouping the whole batch per shard would
        be marginally faster but would order entries by shard within each
        batch, breaking exactly that guarantee.)
        """
        out: List[Dict[str, Any]] = []
        run: List[Request] = []
        run_shard: Optional[int] = None
        for request in requests:
            shard = self.shard_of(request)
            if run and shard != run_shard:
                out.extend(self.session(run_shard).submit_batch(run))
                run = []
            run_shard = shard
            run.append(request)
        if run:
            out.extend(self.session(run_shard).submit_batch(run))
        return out

    def decision_logs(self) -> Dict[int, List[Dict[str, Any]]]:
        """Per-shard normalized decision logs."""
        return {k: s.decision_log() for k, s in self.sessions()}

    def shard_stats(self) -> Dict[int, Dict[str, Any]]:
        """Per-shard progress counters in the pool's ``shard_stats`` shape.

        In-process shards are always alive with nothing pending; the uniform
        shape (see :meth:`~repro.engine.shards.ProcessShardPool.shard_stats`)
        is what lets the service health monitor watch any backend.
        """
        return {
            k: {
                "pid": None,
                "alive": True,
                "pending": 0,
                "processed": s.num_processed,
                "decisions": s.num_decisions,
            }
            for k, s in self.sessions()
        }

    def summary(self) -> Dict[str, Any]:
        """Router-level telemetry plus one line per shard."""
        return {
            "name": self.name,
            "num_shards": self.num_shards,
            "processed": self.num_processed,
            "shards": {k: s.summary() for k, s in self.sessions()},
        }

    # -- checkpointing ---------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the router: envelope plus one checkpoint per shard."""
        return {
            "kind": ROUTER_CHECKPOINT_KIND,
            "schema": CHECKPOINT_SCHEMA,
            "name": self.name,
            "algorithm": self.algorithm_key,
            "backend": self.backend,
            "record": self.record,
            "seed": self.seed,
            "num_shards": self.num_shards,
            "shards": [None if s is None else s.checkpoint() for s in self._sessions],
        }

    @classmethod
    def restore(
        cls,
        checkpoint: Mapping[str, Any],
        *,
        backend: BackendSpec = None,
        namespace_of: Optional[Callable[[EdgeId], str]] = None,
        retain_log: bool = True,
    ) -> "ShardedStreamRouter":
        """Rebuild a router (and every shard session) from a checkpoint.

        ``namespace_of`` is a callable and therefore not serialisable; pass
        the same one used originally if it was customised.

        The shard partition is validated before any session is rebuilt: a
        checkpoint written at a different shard count (or under a different
        ``namespace_of``) raises
        :class:`~repro.instances.serialize.CheckpointFormatError` instead of
        silently misrouting namespaces whose hash slot moved.
        """
        validate_checkpoint(checkpoint, expected_kind=ROUTER_CHECKPOINT_KIND)
        validate_shard_partition(
            list(checkpoint["shards"]),
            int(checkpoint["num_shards"]),
            namespace_of,
            what="router checkpoint",
        )
        router = cls.__new__(cls)
        router.num_shards = int(checkpoint["num_shards"])
        router.algorithm_key = checkpoint["algorithm"]
        router.backend = (
            resolve_backend_name(backend) if backend is not None else checkpoint["backend"]
        )
        router.record = bool(checkpoint["record"])
        router.seed = int(checkpoint["seed"])
        router.name = checkpoint.get("name", "stream-router")
        router._namespace_of = namespace_of or default_namespace
        router._sessions = [
            None
            if shard is None
            else StreamingSession.restore(shard, backend=backend, retain_log=retain_log)
            for shard in checkpoint["shards"]
        ]
        return router

    def save(self, path) -> Any:
        """Write :meth:`checkpoint` to ``path`` (atomic write-then-rename)."""
        return dump_checkpoint(self.checkpoint(), path)

    @classmethod
    def load(
        cls,
        path,
        *,
        backend: BackendSpec = None,
        namespace_of: Optional[Callable[[EdgeId], str]] = None,
        retain_log: bool = True,
    ) -> "ShardedStreamRouter":
        """Restore a router from a checkpoint file written by :meth:`save`."""
        return cls.restore(
            load_checkpoint(path, expected_kind=ROUTER_CHECKPOINT_KIND),
            backend=backend,
            namespace_of=namespace_of,
            retain_log=retain_log,
        )

    @classmethod
    def for_instance(cls, instance, num_shards: int, **kwargs) -> "ShardedStreamRouter":
        """Build a router over an instance's capacities (requests stream separately)."""
        return cls(instance.capacities, num_shards, **kwargs)
