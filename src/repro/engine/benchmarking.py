"""The engine's micro-benchmarks and the perf-regression gate.

Four canonical benchmarks cover the library's hot paths:

* the *weight-update* micro-benchmark exercises the multiplicative weight
  mechanism — the hottest loop — on an instance with >= 1000 edges whose two
  hot edges accumulate alive sets in the thousands, streamed through the
  indexed, record-free fast path the compiled pipeline uses in production
  (``indexed=False`` / ``record=True`` reproduce the legacy per-arrival
  path for comparison);
* the *scaling* benchmark runs the full Section-2 fractional algorithm
  end-to-end — compile, intern, classify, augment — on a >= 10k-request
  instance, which is the regime the compiled-instance layer exists for;
* the *sweep* benchmark runs a small scenario x algorithm matrix through
  :class:`~repro.engine.sweep.ScenarioSweep` — workload generation, trial
  fan-out, LP comparator, aggregation — so regressions anywhere in the
  scenario pipeline (not just the weight mechanism) trip the gate;
* the *stream-resume* benchmark drives the streaming service loop — 4k
  arrivals in micro-batches through a
  :class:`~repro.engine.streaming.StreamingSession`, periodic JSON
  checkpoints, and one mid-stream teardown + restore — so serving-layer and
  checkpoint regressions trip the gate too.

The same workloads drive:

* ``python -m repro bench`` (the ``make bench-smoke`` target), which runs
  both benchmarks once per registered backend, prints a comparison table, and
  fails when a benchmark regresses more than :data:`REGRESSION_FACTOR` x
  against the committed baseline JSON (``benchmarks/baseline_bench.json``);
* ``benchmarks/test_bench_micro_core.py``, so pytest-benchmark tracks the
  same numbers over time (and writes them into ``BENCH_engine.json``).

Keeping the workloads in one module guarantees the CLI gate and the pytest
suite measure the same thing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.backends import make_weight_backend
from repro.instances.admission import AdmissionInstance
from repro.instances.compiled import compile_instance
from repro.instances.request import EdgeId, Request, RequestSequence

__all__ = [
    "WeightUpdateWorkload",
    "ScalingWorkload",
    "SweepWorkload",
    "StreamResumeWorkload",
    "ServiceLoadtestWorkload",
    "BenchResult",
    "weight_update_workload",
    "scaling_workload",
    "sweep_workload",
    "stream_resume_workload",
    "service_loadtest_workload",
    "run_weight_update_bench",
    "run_scaling_bench",
    "run_sweep_bench",
    "run_stream_resume_bench",
    "run_service_loadtest_bench",
    "run_shard_scaling_bench",
    "run_shard_scaling_suite",
    "scaling_100k_workload",
    "compare_to_baseline",
    "check_throughput_floor",
    "check_shard_scaling",
    "available_cpus",
    "REGRESSION_FACTOR",
    "SCALING_THROUGHPUT_FLOOR",
    "SHARD_SCALING_MIN_SPEEDUP",
    "SHARD_SCALING_WORKER_COUNTS",
    "default_baseline_path",
]

#: A benchmark fails the gate when it is more than this factor slower than its
#: committed baseline entry.
REGRESSION_FACTOR = 2.0

#: Minimum admitted throughput (requests/second) for ``scaling_10k`` per
#: backend; the bench gate fails when a backend lands below its floor.  The
#: saturated scaling workload is augmentation-bound (47k augmentations for 10k
#: arrivals), so the numpy floor is set conservatively below the vectorized
#: executor's measured 19-25k req/s — noise headroom on loaded CI machines —
#: while still sitting comfortably above historical regressions.  The numba
#: floor is 2x the pre-vectorization seed throughput (~13.5k req/s): the fused
#: restore kernel eliminates the per-augmentation ufunc overhead entirely, so
#: 27k is an easy clear wherever numba is installed.  Backends without an
#: entry (e.g. the scalar reference ``python`` backend) are exempt.
SCALING_THROUGHPUT_FLOOR: Dict[str, float] = {
    "numpy": 15_000.0,
    "numba": 27_000.0,
}

#: Required aggregate-throughput speedup of the 4-worker shard pool over one
#: worker on the 100k scaling trace — enforced only when the host actually has
#: >= 4 CPUs (see :func:`check_shard_scaling`); a single-core container cannot
#: demonstrate multi-process scaling no matter how good the code is.
SHARD_SCALING_MIN_SPEEDUP = 2.5

#: The worker counts the shard-scaling benchmark sweeps.
SHARD_SCALING_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class WeightUpdateWorkload:
    """A deterministic weight-mechanism stress workload.

    ``num_hot`` low-capacity edges receive every request round-robin (their
    alive sets grow into the thousands), while each request additionally
    crosses one of the remaining high-capacity cold edges, so the instance has
    ``num_edges >= 1000`` edges but the augmentation work concentrates where
    vectorization matters.  Costs are drawn from ``[8, 24]`` so weights grow
    slowly and requests stay alive long.
    """

    num_edges: int = 1024
    num_hot: int = 2
    num_requests: int = 3000
    capacity: int = 192
    seed: int = 7
    g: float = 64.0

    def capacities(self) -> Dict[EdgeId, int]:
        """Edge-capacity map: hot edges tight, cold edges effectively infinite."""
        return {
            j: self.capacity if j < self.num_hot else self.num_requests + 1
            for j in range(self.num_edges)
        }

    def arrivals(self) -> List[Tuple[int, Tuple[int, int], float]]:
        """Deterministic ``(request_id, edges, cost)`` arrival stream."""
        rng = np.random.default_rng(self.seed)
        cold = rng.integers(self.num_hot, self.num_edges, size=self.num_requests)
        costs = rng.uniform(8.0, 24.0, size=self.num_requests)
        return [
            (rid, (rid % self.num_hot, int(cold[rid])), float(costs[rid]))
            for rid in range(self.num_requests)
        ]


def weight_update_workload(quick: bool = True) -> WeightUpdateWorkload:
    """The canonical workload: 3k requests at capacity 192 when quick, 3.5k/256 otherwise."""
    if quick:
        return WeightUpdateWorkload()
    return WeightUpdateWorkload(num_requests=3500, capacity=256)


@dataclass
class BenchResult:
    """Outcome of one micro-benchmark run.

    ``requests`` is the number of arrivals the benchmark streamed (0 for
    benchmarks without a meaningful arrival count, e.g. the sweep matrix);
    :attr:`requests_per_sec` derives the throughput the scaling gate checks.
    """

    name: str
    backend: str
    seconds: float
    augmentations: int
    fractional_cost: float
    requests: int = 0
    #: Per-call admission latency percentiles (ms); 0.0 for benchmarks that
    #: measure throughput only (everything but ``service_loadtest``).
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def requests_per_sec(self) -> float:
        """Arrival throughput (0.0 when the bench has no arrival count)."""
        if self.requests <= 0 or self.seconds <= 0:
            return 0.0
        return self.requests / self.seconds


def run_weight_update_bench(
    backend: str,
    workload: Optional[WeightUpdateWorkload] = None,
    *,
    indexed: bool = True,
    record: bool = False,
) -> BenchResult:
    """Run the weight-update micro-benchmark on one backend and time it.

    By default the arrivals stream through the indexed, record-free fast path
    (what the compiled pipeline executes); ``indexed=False`` / ``record=True``
    reproduce the pre-compiled per-arrival path.  The augmentation count and
    fractional cost are identical in every mode — only the wall clock moves.
    """
    workload = workload or weight_update_workload(quick=True)
    capacities = workload.capacities()
    arrivals = workload.arrivals()
    start = time.perf_counter()
    state = make_weight_backend(backend, capacities, g=workload.g)
    if indexed:
        # The workload's edge ids are already the dense interning 0..m-1.
        for rid, edges, cost in arrivals:
            state.process_arrival_indexed(rid, edges, cost, record=record)
    else:
        for rid, edges, cost in arrivals:
            state.process_arrival(rid, edges, cost)
    seconds = time.perf_counter() - start
    return BenchResult(
        name="weight_update",
        backend=backend,
        seconds=seconds,
        augmentations=state.total_augmentations,
        fractional_cost=state.fractional_cost(),
        requests=workload.num_requests,
    )


@dataclass(frozen=True)
class ScalingWorkload:
    """A large-N end-to-end workload for the compiled fractional pipeline.

    ``num_requests`` (>= 10k by default) requests each cross one of
    ``num_hot`` tight-capacity edges plus ``path_length - 1`` cold edges, with
    mildly spread costs, so the run exercises interning, CSR streaming, cost
    classification and the weight mechanism at production-ish scale.
    """

    num_edges: int = 512
    num_hot: int = 16
    num_requests: int = 10_000
    path_length: int = 4
    capacity: int = 48
    seed: int = 11
    g: float = 64.0

    def instance(self) -> AdmissionInstance:
        """Materialise the deterministic admission instance."""
        rng = np.random.default_rng(self.seed)
        capacities: Dict[EdgeId, int] = {
            j: self.capacity if j < self.num_hot else self.num_requests + 1
            for j in range(self.num_edges)
        }
        cold = rng.integers(self.num_hot, self.num_edges, size=(self.num_requests, self.path_length - 1))
        costs = rng.uniform(1.0, 8.0, size=self.num_requests)
        requests = []
        for rid in range(self.num_requests):
            edges = {rid % self.num_hot, *cold[rid].tolist()}
            requests.append(Request(rid, frozenset(edges), float(costs[rid])))
        return AdmissionInstance(
            capacities,
            RequestSequence(requests),
            name=f"scaling-{self.num_requests // 1000}k",
        )


def scaling_workload() -> ScalingWorkload:
    """The canonical >= 10k-request scaling workload."""
    return ScalingWorkload()


def scaling_100k_workload() -> ScalingWorkload:
    """The 100k-request scaling workload (same shape, 10x the arrivals).

    A different seed keeps its hot/cold mix independent of the 10k workload,
    so the two benches never share compiled-instance caches by accident.
    """
    return ScalingWorkload(num_requests=100_000, seed=17)


def run_scaling_bench(
    backend: str,
    workload: Optional[ScalingWorkload] = None,
    *,
    vectorized: bool = True,
    name: Optional[str] = None,
) -> BenchResult:
    """Time the full compiled fractional pipeline on the scaling workload.

    Measures everything a production run pays per instance: compiling
    (interning + CSR), building the algorithm, and streaming every arrival
    through the record-free whole-trace executor (``vectorized=False`` times
    the per-arrival escape hatch instead — the two produce bit-identical
    decisions, so the delta is pure dispatch overhead).
    """
    from repro.core.fractional import FractionalAdmissionControl

    workload = workload or scaling_workload()
    if name is None:
        name = "scaling_10k" if vectorized else "scaling_10k_scalar"
    instance = workload.instance()
    start = time.perf_counter()
    compiled = compile_instance(instance)
    algorithm = FractionalAdmissionControl.for_instance(
        instance, g=workload.g, backend=backend, record=False
    )
    algorithm.process_compiled_sequence(compiled, vectorized=vectorized)
    seconds = time.perf_counter() - start
    return BenchResult(
        name=name,
        backend=backend,
        seconds=seconds,
        augmentations=algorithm.num_augmentations,
        fractional_cost=algorithm.fractional_cost(),
        requests=workload.num_requests,
    )


@dataclass(frozen=True)
class SweepWorkload:
    """A small scenario x algorithm matrix for the end-to-end sweep benchmark.

    Small enough that the gate stays fast, but sized (request count x trials)
    so one run lands in the hundreds of milliseconds — the >2x absolute gate
    needs headroom above scheduler noise.  It covers workload generation,
    compilation, the trial executor, the LP comparator and the aggregation
    layer in one number.
    """

    scenarios: Tuple[str, ...] = ("bursty", "flash_crowd")
    algorithms: Tuple[str, ...] = ("fractional",)
    num_trials: int = 3
    num_requests: int = 2000
    seed: int = 7


def sweep_workload() -> SweepWorkload:
    """The canonical sweep-benchmark matrix."""
    return SweepWorkload()


def run_sweep_bench(backend: str, workload: Optional[SweepWorkload] = None) -> BenchResult:
    """Time a small end-to-end scenario sweep on one backend.

    ``augmentations`` carries the number of (scenario, algorithm) cells and
    ``fractional_cost`` the mean competitive ratio across them — useful as a
    sanity check that the matrix actually ran, not as perf signals.
    """
    from repro.engine.config import EngineConfig
    from repro.engine.sweep import run_sweep_specs
    from repro.scenarios.registry import get_scenario

    workload = workload or sweep_workload()
    scenarios = [get_scenario(key) for key in workload.scenarios]
    overrides = {
        key: (("num_requests", workload.num_requests),) for key in workload.scenarios
    }
    start = time.perf_counter()
    result = run_sweep_specs(
        scenarios,
        list(workload.algorithms),
        config=EngineConfig(backend=backend),
        num_trials=workload.num_trials,
        seed=workload.seed,
        offline="lp",
        ilp_time_limit=None,
        overrides=overrides,
    )
    seconds = time.perf_counter() - start
    rows = result.rows()
    mean_ratio = sum(r["ratio_mean"] for r in rows) / max(len(rows), 1)
    return BenchResult(
        name="sweep_small",
        backend=backend,
        seconds=seconds,
        augmentations=len(rows),
        fractional_cost=mean_ratio,
    )


@dataclass(frozen=True)
class StreamResumeWorkload:
    """An end-to-end streaming-service workload with a mid-stream restart.

    ``num_requests`` arrivals (the scaling workload's shape, smaller) stream
    through a :class:`~repro.engine.streaming.StreamingSession` in
    ``batch_size`` micro-batches; every ``checkpoint_every`` arrivals the
    session is snapshotted through a full JSON round-trip, and at the
    midpoint the session is torn down and restored from its latest
    checkpoint — so the measured number covers micro-batch compilation,
    state export, serialisation, and restore, the whole serving loop.
    """

    num_edges: int = 256
    num_hot: int = 8
    num_requests: int = 4000
    path_length: int = 3
    capacity: int = 32
    seed: int = 13
    g: float = 64.0
    batch_size: int = 64
    checkpoint_every: int = 500

    def instance(self) -> AdmissionInstance:
        """Materialise the deterministic admission instance."""
        rng = np.random.default_rng(self.seed)
        capacities: Dict[EdgeId, int] = {
            j: self.capacity if j < self.num_hot else self.num_requests + 1
            for j in range(self.num_edges)
        }
        cold = rng.integers(
            self.num_hot, self.num_edges, size=(self.num_requests, self.path_length - 1)
        )
        costs = rng.uniform(1.0, 8.0, size=self.num_requests)
        requests = []
        for rid in range(self.num_requests):
            edges = {rid % self.num_hot, *cold[rid].tolist()}
            requests.append(Request(rid, frozenset(edges), float(costs[rid])))
        return AdmissionInstance(capacities, RequestSequence(requests), name="stream-resume")


def stream_resume_workload() -> StreamResumeWorkload:
    """The canonical streaming + checkpoint/restore workload."""
    return StreamResumeWorkload()


def run_stream_resume_bench(
    backend: str, workload: Optional[StreamResumeWorkload] = None
) -> BenchResult:
    """Time the streaming session end to end, including a mid-stream restore.

    ``fractional_cost`` reports the session's final fractional cost (a
    correctness canary: a restore that corrupted state would move it), and
    ``augmentations`` the weight mechanism's counter across the restart.
    """
    from repro.engine.streaming import StreamingSession

    workload = workload or stream_resume_workload()
    instance = workload.instance()
    requests = list(instance.requests)
    midpoint = len(requests) // 2
    start = time.perf_counter()
    session = StreamingSession(
        instance.capacities,
        algorithm="fractional",
        backend=backend,
        record=False,
        name="stream-resume-bench",
    )
    checkpoint: Optional[str] = None
    restored = False
    processed = 0
    for lo in range(0, len(requests), workload.batch_size):
        if not restored and checkpoint is not None and processed >= midpoint:
            # Tear down and resume from the latest checkpoint: replay the
            # arrivals past the checkpoint cut before continuing.
            session = StreamingSession.restore(json.loads(checkpoint))
            session.submit_stream(
                iter(requests[session.num_processed : lo]), batch_size=workload.batch_size
            )
            restored = True
        session.submit_batch(requests[lo : lo + workload.batch_size])
        processed = session.num_processed
        if processed % workload.checkpoint_every < workload.batch_size:
            checkpoint = json.dumps(session.checkpoint())
    seconds = time.perf_counter() - start
    return BenchResult(
        name="stream_resume",
        backend=backend,
        seconds=seconds,
        augmentations=session.algorithm.num_augmentations,
        fractional_cost=session.algorithm.fractional_cost(),
        requests=workload.num_requests,
    )


@dataclass(frozen=True)
class ServiceLoadtestWorkload:
    """The network admission service's end-to-end load-test workload.

    ``num_requests`` arrivals (the stream-resume shape) are driven over TCP
    into a live :class:`~repro.service.server.AdmissionService` by
    ``concurrency`` client connections submitting ``client_batch``-sized
    micro-batches, so the measured number covers the whole serving stack:
    wire codec, asyncio front door, dispatcher coalescing, the compiled
    engine, and the decision replies — the steady-state cost of a network
    admission, which no in-process benchmark sees.
    """

    num_edges: int = 256
    num_hot: int = 8
    num_requests: int = 2000
    path_length: int = 3
    capacity: int = 32
    seed: int = 19
    g: float = 64.0
    concurrency: int = 2
    client_batch: int = 8
    server_batch: int = 64

    def instance(self) -> AdmissionInstance:
        """Materialise the deterministic admission instance."""
        rng = np.random.default_rng(self.seed)
        capacities: Dict[EdgeId, int] = {
            j: self.capacity if j < self.num_hot else self.num_requests + 1
            for j in range(self.num_edges)
        }
        cold = rng.integers(
            self.num_hot, self.num_edges, size=(self.num_requests, self.path_length - 1)
        )
        costs = rng.uniform(1.0, 8.0, size=self.num_requests)
        requests = []
        for rid in range(self.num_requests):
            edges = {rid % self.num_hot, *cold[rid].tolist()}
            requests.append(Request(rid, frozenset(edges), float(costs[rid])))
        return AdmissionInstance(capacities, RequestSequence(requests), name="service-loadtest")


def service_loadtest_workload() -> ServiceLoadtestWorkload:
    """The canonical network-service load-test workload."""
    return ServiceLoadtestWorkload()


def run_service_loadtest_bench(
    backend: str, workload: Optional[ServiceLoadtestWorkload] = None
) -> BenchResult:
    """Drive a live admission service over TCP and measure req/s + latency.

    The service runs on a background thread (loopback socket, ephemeral
    port) over the workload's recorded trace; ``repro loadtest``'s driver
    submits every arrival and times each round trip.  ``p50_ms``/``p99_ms``
    carry the per-call admission latency percentiles, and
    ``fractional_cost`` the service's final cost (a correctness canary: a
    wire or dispatch bug that changed a decision would move it).
    """
    import tempfile

    from repro.instances.serialize import dump_admission_trace
    from repro.service.client import AdmissionClient
    from repro.service.config import ServiceConfig
    from repro.service.loadtest import run_loadtest
    from repro.service.server import ServiceThread

    workload = workload or service_loadtest_workload()
    instance = workload.instance()
    requests = list(instance.requests)
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        trace = os.path.join(tmp, "loadtest.jsonl")
        dump_admission_trace(instance, trace)
        config = ServiceConfig(
            trace=trace,
            listen="127.0.0.1:0",
            algorithm="fractional",
            backend=backend,
            seed=workload.seed,
            batch=workload.server_batch,
            batch_wait_ms=1.0,
            name="service-loadtest-bench",
        )
        with ServiceThread(config) as thread:
            host, port = thread.address
            result = run_loadtest(
                host,
                port,
                requests,
                concurrency=workload.concurrency,
                batch=workload.client_batch,
            )
            with AdmissionClient(host, port) as client:
                summary = client.stats()["summary"]
    if result.errors:
        raise RuntimeError(f"service loadtest hit {result.errors} errors")
    return BenchResult(
        name="service_loadtest",
        backend=backend,
        seconds=result.seconds,
        augmentations=0,
        fractional_cost=float(summary.get("fractional_cost") or 0.0),
        requests=workload.num_requests,
        p50_ms=result.p50_ms,
        p99_ms=result.p99_ms,
    )


def run_shard_scaling_bench(
    backend: str,
    workload: Optional[ScalingWorkload] = None,
    num_workers: int = 1,
    *,
    strategy: str = "round_robin",
    chunk: int = 4096,
    compiled=None,
) -> BenchResult:
    """Time the multi-process shard pool over the (shared-memory) scaling trace.

    The compiled trace's CSR arrays are published once via shared memory and
    mapped zero-copy by every worker; arrivals then stream as ``[lo, hi)``
    ranges (two integers per batch over the pipe) routed by ``strategy``.
    The measured window covers publish + routing + processing + drain — the
    steady-state serving cost — but not pool construction (process startup is
    a one-time service cost, not throughput).  Pass ``compiled`` to share one
    compilation across worker counts, which is exactly what the pool design
    pays for.

    The scaling workload's integer edge ids all share the ``default``
    namespace, so the sweep uses a replica strategy (``round_robin`` by
    default): every worker holds the full capacity map and whole ranges
    spread across them.
    """
    from repro.engine.shards import ProcessShardPool

    workload = workload or scaling_100k_workload()
    instance = workload.instance()
    if compiled is None:
        compiled = compile_instance(instance)
    with ProcessShardPool(
        instance.capacities,
        num_workers,
        "fractional",
        strategy=strategy,
        backend=backend,
        record=False,
        seed=workload.seed,
        algorithm_kwargs={"g": workload.g},
        retain_log=False,
        name=f"shard-scaling-{num_workers}w",
    ) as pool:
        start = time.perf_counter()
        pool.publish_trace(compiled)
        for lo in range(0, compiled.num_requests, chunk):
            pool.submit_range(lo, min(lo + chunk, compiled.num_requests))
        pool.drain()
        seconds = time.perf_counter() - start
        summary = pool.summary()
    lines = list(summary["shards"].values())
    return BenchResult(
        name=f"shard_scaling_{num_workers}w",
        backend=backend,
        seconds=seconds,
        augmentations=int(sum(line.get("augmentations") or 0 for line in lines)),
        fractional_cost=float(sum(line.get("fractional_cost") or 0.0 for line in lines)),
        requests=workload.num_requests,
    )


def run_shard_scaling_suite(
    backend: str,
    workload: Optional[ScalingWorkload] = None,
    *,
    worker_counts: Sequence[int] = SHARD_SCALING_WORKER_COUNTS,
    strategy: str = "round_robin",
) -> List[BenchResult]:
    """Sweep the shard pool over ``worker_counts``, compiling the trace once."""
    workload = workload or scaling_100k_workload()
    compiled = compile_instance(workload.instance())
    return [
        run_shard_scaling_bench(
            backend, workload, n, strategy=strategy, compiled=compiled
        )
        for n in worker_counts
    ]


def check_shard_scaling(results: List[BenchResult]) -> Tuple[List[str], List[str]]:
    """Gate the shard pool's 4-worker speedup over 1 worker.

    The acceptance target is >= :data:`SHARD_SCALING_MIN_SPEEDUP` x aggregate
    req/s at 4 workers vs 1 on the 100k scaling trace.  Multi-process scaling
    is physically bounded by the host's cores, so the check *enforces* only
    when :func:`available_cpus` reports >= 4 (and the workload is full-size);
    otherwise it reports the honest numbers and records the gate as skipped —
    a single-core CI runner measures IPC overhead, not scaling.
    """
    lines: List[str] = []
    failures: List[str] = []
    by_count: Dict[int, BenchResult] = {}
    for result in results:
        if result.name.startswith("shard_scaling_") and result.name.endswith("w"):
            try:
                by_count[int(result.name[len("shard_scaling_") : -1])] = result
            except ValueError:  # pragma: no cover - foreign result name
                continue
    if not by_count:
        return lines, failures
    base = by_count.get(1)
    for count in sorted(by_count):
        result = by_count[count]
        if base is not None and base.requests_per_sec > 0:
            factor = result.requests_per_sec / base.requests_per_sec
            suffix = f" ({factor:.2f}x vs 1 worker)"
        else:
            suffix = ""
        lines.append(
            f"shard_scaling_{count}w[{result.backend}]: "
            f"{result.requests_per_sec:,.0f} req/s{suffix}"
        )
    four = by_count.get(4)
    if base is None or four is None or base.requests_per_sec <= 0:
        return lines, failures
    cpus = available_cpus()
    if cpus < 4:
        lines.append(
            f"shard_scaling gate skipped: {cpus} CPU(s) available, >= 4 needed to "
            f"demonstrate the {SHARD_SCALING_MIN_SPEEDUP:.1f}x target"
        )
        return lines, failures
    if base.requests < 50_000:
        lines.append(
            "shard_scaling gate skipped: shrunken testing-hook workload "
            "(fixed costs dominate below 50k arrivals)"
        )
        return lines, failures
    speedup = four.requests_per_sec / base.requests_per_sec
    line = (
        f"shard_scaling 4w vs 1w: {speedup:.2f}x "
        f"(target >= {SHARD_SCALING_MIN_SPEEDUP:.1f}x)"
    )
    lines.append(line)
    if speedup < SHARD_SCALING_MIN_SPEEDUP:
        failures.append(f"{line} — below the shard-scaling floor")
    return lines, failures


def default_baseline_path() -> Path:
    """The committed baseline JSON (repo checkout layout)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baseline_bench.json"


def compare_to_baseline(
    results: List[BenchResult], baseline_path: Path
) -> Tuple[List[str], List[str]]:
    """Compare bench results to the committed baseline.

    Returns ``(lines, failures)``: human-readable comparison lines and the
    subset describing benchmarks slower than ``REGRESSION_FACTOR`` x their
    baseline.  A missing baseline file or missing entry is reported but never
    fails the gate (fresh machines have no committed numbers for themselves).
    """
    lines: List[str] = []
    failures: List[str] = []
    baseline: Dict[str, float] = {}
    if baseline_path.exists():
        data = json.loads(baseline_path.read_text())
        baseline = {k: float(v) for k, v in data.get("benchmarks", {}).items()}
    else:
        lines.append(f"no baseline at {baseline_path}; regression gate skipped")
    for result in results:
        key = f"{result.name}[{result.backend}]"
        base = baseline.get(key)
        if base is None:
            lines.append(f"{key}: {result.seconds:.3f}s (no baseline entry)")
            continue
        factor = result.seconds / base if base > 0 else float("inf")
        line = f"{key}: {result.seconds:.3f}s vs baseline {base:.3f}s ({factor:.2f}x)"
        lines.append(line)
        if factor > REGRESSION_FACTOR:
            failures.append(f"{line} — exceeds the {REGRESSION_FACTOR:.1f}x regression gate")
    return lines, failures


def check_throughput_floor(results: List[BenchResult]) -> Tuple[List[str], List[str]]:
    """Check ``scaling_10k`` results against the per-backend throughput floor.

    Unlike the relative baseline gate, this is an *absolute* requirement:
    the vectorized executor must keep the saturated 10k-request workload
    above :data:`SCALING_THROUGHPUT_FLOOR` requests/second for every backend
    listed there.  The scalar escape hatch (``scaling_10k_scalar``) and the
    longer ``scaling_100k`` run are reported for context but never gated —
    the escape hatch exists for debugging, and 100k's absolute throughput
    tracks the same kernel the 10k floor already covers.
    """
    lines: List[str] = []
    failures: List[str] = []
    for result in results:
        if not result.name.startswith("scaling") or result.requests <= 0:
            continue
        key = f"{result.name}[{result.backend}]"
        rps = result.requests_per_sec
        floor = SCALING_THROUGHPUT_FLOOR.get(result.backend)
        if result.name != "scaling_10k" or floor is None or result.requests < 10_000:
            # Shrunken testing-hook workloads pay the fixed compile cost over
            # too few arrivals for absolute throughput to mean anything.
            lines.append(f"{key}: {rps:,.0f} req/s")
            continue
        line = f"{key}: {rps:,.0f} req/s (floor {floor:,.0f})"
        lines.append(line)
        if rps < floor:
            failures.append(f"{line} — below the absolute throughput floor")
    return lines, failures
