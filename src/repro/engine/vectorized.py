"""Whole-trace vectorized executor for the compiled fractional fast path.

Per-arrival processing of a :class:`~repro.instances.compiled.
CompiledInstance` is already array-native inside each restore, but every
arrival still crosses several Python frames (``process_indexed`` →
``process_arrival_indexed`` → ``_restore_edge_indexed``).  On traces where
most arrivals never trigger an augmentation that dispatch dominates the run
time.  This module removes it with a two-tier schedule:

**Safe-horizon bulk registration.**  An arrival that leaves every edge of its
path at or under capacity cannot trigger any weight activity: it registers at
weight 0 and every restore exits at the O(1) excess check, so the *only*
observable effect is the registration itself (and a fraction of exactly 0).
Whether a stretch of arrivals is safe is a pure integer question — current
alive counts, capacities, and the number of upcoming path entries per edge —
so the executor computes, from a CSR transpose of the upcoming NORMAL
arrivals, the first arrival index at which any edge would exceed its
capacity (the *safe horizon*) and registers everything before it through
:meth:`WeightBackend.register_batch_indexed` in one call.  No float is ever
consulted, so the shortcut is exact, not merely within tolerance.

**Dense block processing.**  Past the horizon (capacity-saturated stretches,
where augmentations are the norm) arrivals are handed to
:meth:`WeightBackend.process_arrival_block_indexed`, a fused record-free
kernel that performs the identical per-arrival mutations without the wrapper
frames.  With ``record=True`` the executor falls back to plain
``process_indexed`` calls — outcome diagnostics are inherently per-arrival.

**Synchronization points.**  Arrivals the schedule cannot batch — BIG/FORCED
(they *decrease capacities*, changing the horizon arithmetic), unit-cost
violations in ``unweighted`` mode, and duplicate ids (both must raise at the
exact arrival position) — are classified up front and delegated one by one to
``process_indexed``, which reproduces the scalar behaviour including
exceptions.  Capacities and alive counts are re-read after every such point,
so capacity exhaustion and capacity reductions become *chunk boundaries*
rather than per-request branches.

The executor performs the same floating-point operations in the same order as
the per-arrival loop (bulk stretches perform none, by construction), so
results agree bit-for-bit, not just within the 1e-9 equivalence tolerance.
Doubling-phase resets (:mod:`repro.core.doubling`) change ``alpha`` between
arrivals and therefore stay on the per-arrival path; see ARCHITECTURE.md.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING

import numpy as np

from repro.core.weights import ArrivalOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.fractional import FractionalAdmissionControl
    from repro.instances.compiled import CompiledInstance

__all__ = ["run_compiled_trace", "MIN_BULK", "DENSE_STEP"]

#: Minimum safe-stretch length worth a bulk registration call; shorter safe
#: stretches just ride along with the dense kernel.
MIN_BULK = 32

#: Arrivals handed to the dense kernel per scheduling cycle.  Bounds how stale
#: the alive counts used by the horizon scan can get (they are re-read every
#: cycle) while amortising the scan itself.
DENSE_STEP = 512

_NORMAL = 0
_SMALL = 1
_SYNC = 2


def _classify(
    algorithm: "FractionalAdmissionControl",
    compiled: "CompiledInstance",
    lo: int,
    hi: int,
) -> np.ndarray:
    """Per-arrival schedule classes for ``[lo, hi)``: NORMAL / SMALL / SYNC.

    SYNC arrivals (BIG, FORCED, unit-cost violations, duplicate ids) are
    delegated to ``process_indexed`` at their exact position, so errors and
    capacity changes happen precisely where the per-arrival loop would have
    them.
    """
    count = hi - lo
    costs = compiled.costs[lo:hi]
    cls = np.zeros(count, dtype=np.uint8)
    if algorithm.alpha is not None:
        # small_threshold < big_threshold always, so the two masks are disjoint.
        cls[costs < algorithm.small_threshold] = _SMALL
        cls[costs > algorithm.big_threshold] = _SYNC
    if algorithm.force_accept_tags:
        tags = compiled.tags
        forced_tags = algorithm.force_accept_tags
        for k in range(count):
            tag = tags[lo + k]
            if tag is not None and tag in forced_tags:
                cls[k] = _SYNC
    if algorithm.unweighted:
        # Non-unit costs raise in process_indexed (forced arrivals are exempt
        # but already SYNC, so over-marking them changes nothing).
        cls[np.abs(costs - 1.0) > 1e-9] = _SYNC
    # Duplicate ids must raise at their exact arrival position; route them
    # through the per-arrival path, which performs the authoritative check.
    seen = set()
    class_of = algorithm._class_of
    for k, rid in enumerate(compiled.request_ids[lo:hi].tolist()):
        if rid in class_of or rid in seen:
            cls[k] = _SYNC
        else:
            seen.add(rid)
    return cls


def _normalized_costs(
    algorithm: "FractionalAdmissionControl", costs: np.ndarray
) -> np.ndarray:
    """Vectorized ``_normalized_cost`` — identical float ops, elementwise."""
    if algorithm.unweighted:
        return np.ones(costs.shape[0], dtype=np.float64)
    if algorithm.alpha is None:
        return np.maximum(costs, 1e-12)
    scaled = costs * algorithm.m * algorithm.c / algorithm.alpha
    return np.minimum(np.maximum(scaled, 1.0), algorithm.g)


def run_compiled_trace(
    algorithm: "FractionalAdmissionControl",
    compiled: "CompiledInstance",
    lo: int = 0,
    hi: "int | None" = None,
) -> None:
    """Process arrivals ``[lo, hi)`` of a compiled instance, batched.

    Equivalent to ``for i in range(lo, hi): algorithm.process_indexed(...)``
    — same decisions, fractions, weights, augmentation counts and exceptions
    — but with per-arrival Python dispatch only where the schedule actually
    needs it.
    """
    from repro.core.fractional import CostClass, FractionalDecision

    n = compiled.num_requests
    if hi is None:
        hi = n
    lo = max(int(lo), 0)
    hi = min(int(hi), n)
    count = hi - lo
    if count <= 0:
        return
    backend = algorithm._weights
    record = algorithm.record

    cls = _classify(algorithm, compiled, lo, hi)
    ids_sl = compiled.request_ids[lo:hi]
    rid_list = ids_sl.tolist()
    costs_sl = compiled.costs[lo:hi]
    raw_list = costs_sl.tolist()
    norm = _normalized_costs(algorithm, costs_sl)

    # Backend-aligned CSR window: translate once, slice per run.
    translate = algorithm._translation_for(compiled)
    indptr = compiled.indptr
    win_lo = int(indptr[lo])
    flat = compiled.indices[win_lo : int(indptr[hi])]
    if translate is not None:
        flat = translate[flat]
    loc_indptr = (indptr[lo : hi + 1] - win_lo).astype(np.intp, copy=False)

    # Transpose of the NORMAL arrivals' entries, grouped by edge with arrival
    # positions ascending: tpos[tptr[e]:tptr[e+1]] are the window positions of
    # the upcoming arrivals whose paths use edge e.  SMALL arrivals never
    # register and SYNC arrivals are barriers, so only NORMAL entries matter
    # for the horizon arithmetic.
    m = backend.num_edges
    lengths = np.diff(loc_indptr)
    arr_of_entry = np.repeat(np.arange(count, dtype=np.intp), lengths)
    normal_entry = cls[arr_of_entry] == _NORMAL
    nflat = flat[normal_entry]
    narr = arr_of_entry[normal_entry]
    tptr = np.zeros(m + 1, dtype=np.int64)
    if nflat.shape[0]:
        order = np.argsort(nflat, kind="stable")
        tpos = narr[order]
        np.cumsum(np.bincount(nflat, minlength=m), out=tptr[1:])
    else:
        tpos = narr

    def horizon(i: int, alive: np.ndarray, caps: np.ndarray) -> int:
        """First arrival position >= i at which some edge would exceed capacity.

        Pure integer arithmetic: edge e has ``max(cap_e - alive_e, 0)`` safe
        future registrations; its first unsafe entry is that many positions
        past the entries already consumed by arrivals before ``i``.
        """
        if tpos.shape[0] == 0:
            return count
        ptr = int(np.searchsorted(narr, i, side="left"))
        consumed = np.bincount(nflat[:ptr], minlength=m)
        room = caps - alive
        np.maximum(room, 0, out=room)
        idx = tptr[:-1] + consumed + room
        valid = idx < tptr[1:]
        if not valid.any():
            return count
        return int(tpos[idx[valid]].min())

    class_of = algorithm._class_of
    original_cost = algorithm._original_cost
    decisions = algorithm._decisions
    NORMAL = CostClass.NORMAL
    SMALL = CostClass.SMALL

    def emit_small(pos: int) -> None:
        rid = rid_list[pos]
        cost = raw_list[pos]
        original_cost[rid] = cost
        class_of[rid] = SMALL
        algorithm._small_cost += cost
        decisions.append(FractionalDecision(rid, SMALL, None, 1.0))

    def run_bulk(s: int, e: int) -> None:
        # Every NORMAL arrival in [s, e) is provably inert: it registers at
        # weight 0 and every restore on its path exits at the O(1) excess
        # check.  Register maximal NORMAL runs in one backend call; fractions
        # are exactly 0 and outcomes (when recorded) are exactly empty.
        pos = s
        while pos < e:
            if cls[pos] == _SMALL:
                emit_small(pos)
                pos += 1
                continue
            run_end = pos + 1
            while run_end < e and cls[run_end] == _NORMAL:
                run_end += 1
            rids = rid_list[pos:run_end]
            base = loc_indptr[pos]
            backend.register_batch_indexed(
                rids,
                norm[pos:run_end],
                flat[base : loc_indptr[run_end]],
                loc_indptr[pos : run_end + 1] - base,
            )
            class_of.update(zip(rids, repeat(NORMAL)))
            original_cost.update(zip(rids, raw_list[pos:run_end]))
            if record:
                decisions.extend(
                    FractionalDecision(rid, NORMAL, ArrivalOutcome(request_id=rid), 0.0)
                    for rid in rids
                )
            else:
                decisions.extend(
                    FractionalDecision(rid, NORMAL, None, 0.0) for rid in rids
                )
            pos = run_end

    def run_dense(s: int, e: int) -> None:
        if record:
            # Outcome diagnostics are per-arrival by nature; the scalar fast
            # path is authoritative here.
            for pos in range(s, e):
                algorithm.process_indexed(compiled, lo + pos)
            return
        pos = s
        while pos < e:
            if cls[pos] == _SMALL:
                emit_small(pos)
                pos += 1
                continue
            run_end = pos + 1
            while run_end < e and cls[run_end] == _NORMAL:
                run_end += 1
            rids = rid_list[pos:run_end]
            base = loc_indptr[pos]
            fractions = backend.process_arrival_block_indexed(
                rids,
                norm[pos:run_end],
                flat[base : loc_indptr[run_end]],
                loc_indptr[pos : run_end + 1] - base,
            )
            class_of.update(zip(rids, repeat(NORMAL)))
            original_cost.update(zip(rids, raw_list[pos:run_end]))
            fr = fractions.tolist()
            decisions.extend(
                FractionalDecision(rid, NORMAL, None, fr[r])
                for r, rid in enumerate(rids)
            )
            pos = run_end

    sync_pos = np.nonzero(cls == _SYNC)[0].tolist()
    sync_pos.append(count)  # sentinel

    i = 0
    sp = 0
    while i < count:
        next_sync = sync_pos[sp]
        if next_sync == i:
            algorithm.process_indexed(compiled, lo + i)
            i += 1
            sp += 1
            continue
        alive = backend._alive_counts_array()
        caps = np.asarray(backend._cap, dtype=np.int64)
        safe_end = min(next_sync, horizon(i, alive, caps))
        if safe_end - i >= MIN_BULK:
            run_bulk(i, safe_end)
            i = safe_end
        else:
            dense_end = min(next_sync, i + DENSE_STEP)
            run_dense(i, dense_end)
            i = dense_end
