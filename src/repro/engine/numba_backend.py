"""Optional numba-fused restore kernel, registered as the ``"numba"`` backend.

On capacity-saturated traces the numpy backend's restore loop is bound by
per-call ufunc overhead: every augmentation pays a multiply, a sum reduction
and a max reduction on a small (tens of elements) array, ~1µs of fixed cost
each.  :func:`mwu_edge_restore` fuses the whole restore — seeding, the
multiplicative updates, kill detection and the covering-sum termination check
— into one compiled loop, which is what the ≥100k req/s `scaling_10k` target
needs.

The module is import-safe without numba: the kernel below is plain Python
(and is exercised as such by the test suite), and it is ``njit``-compiled and
the ``"numba"`` backend registered **only** when ``import numba`` succeeds.
Environments without numba simply don't list the backend — mirroring how
``make typecheck`` auto-skips when mypy is absent — and the CI leg that
installs numba runs the full 1e-9 cross-backend equivalence suite against it
like any other backend.

Like the scalar python backend, the kernel accumulates sums sequentially
(numpy reduces pairwise); :data:`~repro.engine.backends.SUM_TOLERANCE`
absorbs the reduction-order difference, which is exactly what the
cross-backend equivalence gate checks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.backends import SUM_TOLERANCE, NumpyWeightBackend
from repro.engine.registry import WEIGHT_BACKENDS

__all__ = ["mwu_edge_restore", "NumbaWeightBackend", "NUMBA_AVAILABLE"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the containerised default
    numba = None
    NUMBA_AVAILABLE = False


def mwu_edge_restore(
    w: np.ndarray,
    cost: np.ndarray,
    alive: np.ndarray,
    cap: int,
    seed: float,
    tol: float,
) -> int:
    """Fused record-free restore of one edge's covering constraint.

    ``w`` / ``cost`` are the gathered weights and (normalised) costs of the
    edge's alive requests; ``alive`` is an all-True bool scratch of the same
    length.  Mutates ``w`` in place and clears ``alive[i]`` for every request
    whose weight reached 1 (the caller owns the kill bookkeeping).  Returns
    the number of augmentations performed.

    The loop mirrors the scalar reference backend step for step: seed zero
    weights once, multiply every alive weight by ``1 + 1/(n_e * cost_i)``,
    kill weights >= 1, stop when the edge is no longer in excess or the alive
    weights cover it.
    """
    n = w.shape[0]
    n_alive = n
    n_e = n_alive - cap
    s = 0.0
    for i in range(n):
        s += w[i]
    if s >= n_e * (1.0 - tol):
        return 0
    for i in range(n):
        if w[i] == 0.0:
            w[i] = seed
    augmentations = 0
    while True:
        for i in range(n):
            if alive[i]:
                nw = w[i] * (1.0 + 1.0 / (n_e * cost[i]))
                w[i] = nw
                if nw >= 1.0:
                    alive[i] = False
                    n_alive -= 1
        augmentations += 1
        n_e = n_alive - cap
        if n_e <= 0:
            break
        s = 0.0
        for i in range(n):
            if alive[i]:
                s += w[i]
        if s >= n_e * (1.0 - tol):
            break
    return augmentations


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _restore_kernel = numba.njit(cache=True, fastmath=False)(mwu_edge_restore)
else:
    _restore_kernel = mwu_edge_restore


class NumbaWeightBackend(NumpyWeightBackend):
    """Numpy-backend storage with the fused compiled restore kernel.

    Only the record-free restore differs: diagnostics-recording restores
    (``record=True`` runs) fall back to the numpy implementation, whose
    before/after delta bookkeeping is inherently array-at-a-time.
    """

    name = "numba"

    def _restore_edge_norecord(self, eidx: int, cap: int) -> None:
        idx = self._alive_slots(eidx)
        w = self._w[idx]
        cost = self._cost[idx]
        alive = np.ones(idx.shape[0], dtype=np.bool_)
        self.total_augmentations += _restore_kernel(
            w, cost, alive, cap, self.seed_weight, SUM_TOLERANCE
        )
        self._w[idx] = w
        if not alive.all():
            for slot in idx[~alive].tolist():
                self._kill_slot(slot)

    def _restore_edge_indexed(self, eidx, triggered_by, outcome) -> None:
        if outcome is None:
            cap = self._cap[eidx]
            if self._edge_alive[eidx] - cap > 0:
                self._restore_edge_norecord(eidx, cap)
            return
        super()._restore_edge_indexed(eidx, triggered_by, outcome)


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    WEIGHT_BACKENDS.register("numba")(NumbaWeightBackend)
