"""String-keyed registries wiring algorithms, backends and experiments together.

The execution engine decouples *naming* a component from *importing* it: every
pluggable piece of the library (weight backends, admission-control algorithms,
set-cover algorithms, experiments) registers itself under a string key in one
of the module-level registries below, and the runtime / CLI / experiments
resolve those keys at run time.  This is what lets ``python -m repro run E3
--backend numpy`` swap the whole numeric substrate without touching a single
experiment.

Design rules:

* registering the same key twice raises :class:`DuplicateKeyError` (silent
  overwrites hid wiring bugs in the pre-registry code);
* looking up an unknown key raises :class:`UnknownKeyError` whose message
  lists every known key, so a typo on the command line is a one-glance fix;
* keys are normalised (case-insensitively by default) so ``"E1"`` and
  ``"e1"`` are the same experiment and ``"NumPy"`` the same backend.

The registry instances live here, but *registration* happens in the modules
that define the components (e.g. ``core/fractional.py`` registers
``"fractional"``).  This module therefore imports nothing from the rest of
the library and can be imported from anywhere without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Iterator, List, Tuple, TypeVar, overload

__all__ = [
    "Registry",
    "RegistryError",
    "DuplicateKeyError",
    "UnknownKeyError",
    "WEIGHT_BACKENDS",
    "ADMISSION_ALGORITHMS",
    "SETCOVER_ALGORITHMS",
    "EXPERIMENTS",
]

T = TypeVar("T")

_MISSING = object()


class RegistryError(KeyError):
    """Base class for registry errors (a :class:`KeyError` for compatibility)."""

    def __str__(self) -> str:  # KeyError.__str__ repr()s its argument; keep plain text.
        return self.args[0] if self.args else ""


class DuplicateKeyError(RegistryError):
    """Raised when a key is registered twice without ``overwrite=True``."""


class UnknownKeyError(RegistryError):
    """Raised when a key is looked up that was never registered."""


class Registry(Generic[T]):
    """A string-keyed registry with strict registration and helpful lookups.

    Parameters
    ----------
    kind:
        Human-readable name of what is stored ("weight backend", "experiment",
        ...); used in error messages.
    normalize:
        Key normalisation applied on both registration and lookup.  Defaults
        to lower-casing; the experiment registry upper-cases instead so the
        canonical ids stay ``"E1"`` ... ``"E10"``.
    """

    def __init__(self, kind: str, *, normalize: Callable[[str], str] = str.lower) -> None:
        self.kind = kind
        self._normalize = normalize
        self._entries: Dict[str, T] = {}

    def _key(self, key: str) -> str:
        if not isinstance(key, str) or not key.strip():
            raise RegistryError(f"{self.kind} keys must be non-empty strings, got {key!r}")
        return self._normalize(key.strip())

    @overload
    def register(self, key: str) -> Callable[[T], T]: ...

    @overload
    def register(self, key: str, value: T, *, overwrite: bool = False) -> T: ...

    def register(self, key: str, value: Any = _MISSING, *, overwrite: bool = False) -> Any:
        """Register ``value`` under ``key``; usable directly or as a decorator.

        ``@REGISTRY.register("name")`` registers the decorated object and
        returns it unchanged.  Registering an existing key raises
        :class:`DuplicateKeyError` unless ``overwrite=True``.
        """
        normalized = self._key(key)

        def _store(obj: T) -> T:
            if normalized in self._entries and not overwrite:
                raise DuplicateKeyError(
                    f"{self.kind} {key!r} is already registered "
                    f"(known: {', '.join(sorted(self._entries))}); "
                    f"pass overwrite=True to replace it"
                )
            self._entries[normalized] = obj
            return obj

        if value is _MISSING:
            return _store
        return _store(value)

    def unregister(self, key: str) -> None:
        """Remove a key (mainly for tests); unknown keys raise :class:`UnknownKeyError`."""
        normalized = self._key(key)
        if normalized not in self._entries:
            raise UnknownKeyError(f"cannot unregister unknown {self.kind} {key!r}")
        del self._entries[normalized]

    def get(self, key: str) -> T:
        """Look up a registered value; unknown keys raise :class:`UnknownKeyError`."""
        normalized = self._key(key)
        try:
            return self._entries[normalized]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none registered>"
            raise UnknownKeyError(f"unknown {self.kind} {key!r}; known: {known}") from None

    def __contains__(self, key: str) -> bool:
        try:
            return self._key(key) in self._entries
        except RegistryError:
            return False

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def keys(self) -> List[str]:
        """Sorted registered keys."""
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        """Sorted ``(key, value)`` pairs."""
        return sorted(self._entries.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, keys={self.keys()})"


#: Weight-mechanism backends (``"python"``, ``"numpy"``); populated by
#: :mod:`repro.engine.backends`.
WEIGHT_BACKENDS: Registry = Registry("weight backend")

#: Online admission-control algorithm builders with the uniform signature
#: ``build(instance, *, random_state=None, backend=None, **kwargs)``; populated
#: by :mod:`repro.core` and :mod:`repro.baselines`.
ADMISSION_ALGORITHMS: Registry = Registry("admission algorithm")

#: Online set-cover algorithm builders, same uniform signature; populated by
#: :mod:`repro.core` and :mod:`repro.baselines`.
SETCOVER_ALGORITHMS: Registry = Registry("set-cover algorithm")

#: Experiment runners (``"E1"`` ... ``"E10"``); populated by
#: :mod:`repro.experiments`.
EXPERIMENTS: Registry = Registry("experiment", normalize=str.upper)
