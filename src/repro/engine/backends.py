"""Weight-mechanism backends: the paper's multiplicative-weight update, twice.

The fractional algorithm of Section 2 maintains a weight ``f_i`` for every
request ``r_i`` (the fraction of the request that has been rejected).  When a
request arrives, the algorithm looks at every edge on its path and, while the
covering constraint

    sum_{i in ALIVE_e} f_i  >=  n_e      with   n_e = |ALIVE_e| - c_e

is violated, performs a *weight augmentation*:

1. every alive request on the edge with weight 0 receives the seed weight
   ``1 / (g c)``;
2. every alive request on the edge has its weight multiplied by
   ``1 + 1 / (n_e * p_i)``;
3. requests whose weight reached 1 are declared fully rejected ("dead"), which
   removes them from the alive sets of *all* their edges and thereby lowers the
   excess ``n_e``.

This module implements the mechanism behind the :class:`WeightBackend`
protocol, twice:

* :class:`PythonWeightBackend` — the scalar reference implementation (the code
  that used to live in ``repro/core/weights.py`` as ``FractionalWeightState``).
  Dict-of-floats storage, one Python statement per paper step; this is the
  ground truth every other backend is tested against.
* :class:`NumpyWeightBackend` — keeps per-request weights and costs in
  contiguous ``float64`` arrays and per-edge alive sets as index vectors, so
  the seed / multiply / kill steps of an augmentation are three vectorized
  operations.  The elementwise arithmetic is the same IEEE-754 double
  arithmetic the scalar backend performs, so the two backends agree to
  floating-point rounding (the cross-backend equivalence suite pins them to
  within 1e-9, and in practice they are bit-identical on the weights).

Both backends register themselves in
:data:`repro.engine.registry.WEIGHT_BACKENDS`; algorithms resolve a backend by
name through :func:`make_weight_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.registry import WEIGHT_BACKENDS
from repro.instances.request import EdgeId
from repro.utils.validation import check_positive

__all__ = [
    "AugmentationRecord",
    "ArrivalOutcome",
    "WeightBackend",
    "PythonWeightBackend",
    "NumpyWeightBackend",
    "BackendSpec",
    "make_weight_backend",
    "resolve_backend_name",
]

#: Anything an algorithm accepts where a backend choice is expected.
BackendSpec = Union[None, str, EngineConfig]


@dataclass
class AugmentationRecord:
    """One weight-augmentation step (paper, Section 2, step 2).

    Attributes
    ----------
    edge:
        The edge whose covering constraint triggered the augmentation.
    excess:
        The excess ``n_e`` at the moment of the augmentation.
    alive_before:
        Number of alive requests on the edge before the step.
    seeded:
        Ids of requests whose weight moved from 0 to the seed value.
    killed:
        Ids of requests whose weight reached 1 during this step.
    triggered_by:
        Id of the arriving request whose processing caused the step.
    """

    edge: EdgeId
    excess: int
    alive_before: int
    seeded: Tuple[int, ...]
    killed: Tuple[int, ...]
    triggered_by: int


@dataclass
class ArrivalOutcome:
    """Everything the weight mechanism did while processing one arrival.

    ``deltas`` maps request id to the total weight increase caused by this
    arrival — exactly the ``delta`` the randomized algorithm's step 3 rounds.
    """

    request_id: int
    deltas: Dict[int, float] = field(default_factory=dict)
    augmentations: List[AugmentationRecord] = field(default_factory=list)
    newly_dead: Set[int] = field(default_factory=set)

    @property
    def num_augmentations(self) -> int:
        """Number of weight-augmentation steps performed for this arrival."""
        return len(self.augmentations)


class WeightBackend:
    """Shared skeleton and protocol of the weight-mechanism backends.

    Subclasses own the storage and implement the primitive operations
    (:meth:`register`, :meth:`restore_edge`, the state queries); this base
    class provides the parameter validation, the arrival-level orchestration
    shared by all backends, and a storage-agnostic invariant checker.

    Parameters
    ----------
    capacities:
        Effective capacities per edge.  These may be lower than the instance's
        original capacities when requests have been permanently accepted
        (the ``R_big`` preprocessing or the set-cover reduction's element
        requests) — see :meth:`decrease_capacity`.
    g:
        Upper bound on the (normalised) cost ratio; the seed weight for a
        request that first becomes positive is ``1 / (g * c)`` where ``c`` is
        the maximum capacity (paper, step 2a).
    max_capacity:
        ``c`` in the seed-weight formula; defaults to the maximum of
        ``capacities`` and is kept fixed even if capacities later decrease so
        the seed weight is stable over the run.
    """

    #: Registry key of the backend; subclasses override.
    name = "abstract"

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        g: float,
        max_capacity: Optional[int] = None,
    ):
        self._capacity: Dict[EdgeId, int] = {e: int(c) for e, c in capacities.items()}
        for edge, cap in self._capacity.items():
            if cap < 0:
                raise ValueError(f"capacity of edge {edge!r} must be >= 0, got {cap}")
        self.g = check_positive(g, "g")
        if max_capacity is None:
            max_capacity = max(self._capacity.values(), default=1)
        self.max_capacity = max(int(max_capacity), 1)
        self.seed_weight = 1.0 / (self.g * self.max_capacity)

        # Counters for Lemma 1 style diagnostics.
        self.total_augmentations = 0
        self._history: List[AugmentationRecord] = []

    # -- primitives every backend implements ---------------------------------------
    def register(self, request_id: int, edges: Iterable[EdgeId], cost: float) -> None:
        """Register a new request with weight 0 (paper: ``f_i = 0`` initially)."""
        raise NotImplementedError

    def restore_edge(self, edge: EdgeId, triggered_by: int, outcome: ArrivalOutcome) -> None:
        """Run weight augmentations on ``edge`` until its constraint holds."""
        raise NotImplementedError

    def weight(self, request_id: int) -> float:
        """Current weight ``f_i``."""
        raise NotImplementedError

    def cost_of(self, request_id: int) -> float:
        """The (normalised) cost the request was registered with."""
        raise NotImplementedError

    def weights(self) -> Dict[int, float]:
        """Copy of all weights, in registration order."""
        raise NotImplementedError

    def is_dead(self, request_id: int) -> bool:
        """True if the request has been fully rejected fractionally (``f_i >= 1``)."""
        raise NotImplementedError

    def edges_of(self, request_id: int) -> Tuple[EdgeId, ...]:
        """The edges the request was registered with."""
        raise NotImplementedError

    def alive_requests(self, edge: EdgeId) -> Set[int]:
        """``ALIVE_e`` — alive request ids whose paths contain ``edge``."""
        raise NotImplementedError

    def requests_on(self, edge: EdgeId) -> Set[int]:
        """``REQ_e`` — all registered request ids whose paths contain ``edge``."""
        raise NotImplementedError

    def alive_count(self, edge: EdgeId) -> int:
        """``|ALIVE_e|``."""
        raise NotImplementedError

    def alive_weight_sum(self, edge: EdgeId) -> float:
        """``sum_{i in ALIVE_e} f_i``."""
        raise NotImplementedError

    def edges_seen(self) -> Iterable[EdgeId]:
        """Edges on which at least one request was registered."""
        raise NotImplementedError

    # -- shared bookkeeping ----------------------------------------------------------
    def capacity(self, edge: EdgeId) -> int:
        """Current effective capacity of ``edge``."""
        return self._capacity[edge]

    def decrease_capacity(self, edge: EdgeId, amount: int = 1) -> None:
        """Permanently reserve capacity on ``edge`` (used by ``R_big`` handling).

        The effective capacity never drops below zero; requesting a decrease
        past zero is recorded as an inconsistency (the caller's guess of
        ``alpha`` was too small) but does not raise, so the doubling wrapper
        can observe the overflow through the cost blow-up instead of crashing.
        """
        if edge not in self._capacity:
            raise ValueError(f"unknown edge {edge!r}")
        self._capacity[edge] = max(0, self._capacity[edge] - amount)

    def excess(self, edge: EdgeId) -> int:
        """``n_e = |ALIVE_e| - c_e`` (may be negative)."""
        return self.alive_count(edge) - self._capacity[edge]

    def constraint_satisfied(self, edge: EdgeId) -> bool:
        """True if the covering constraint of ``edge`` currently holds."""
        n_e = self.excess(edge)
        if n_e <= 0:
            return True
        return self.alive_weight_sum(edge) >= n_e

    def fractional_cost(self) -> float:
        """``sum_i min(f_i, 1) * p_i`` over every registered request."""
        return sum(min(w, 1.0) * self.cost_of(i) for i, w in self.weights().items())

    def fractional_rejections(self) -> Dict[int, float]:
        """Mapping request id -> rejected fraction ``min(f_i, 1)``."""
        return {i: min(w, 1.0) for i, w in self.weights().items()}

    def history(self) -> List[AugmentationRecord]:
        """All augmentation records in chronological order."""
        return list(self._history)

    # -- the arrival-level mechanism (shared) ----------------------------------------
    def process_arrival(self, request_id: int, edges: Iterable[EdgeId], cost: float) -> ArrivalOutcome:
        """Register an arriving request and restore all its edges' constraints.

        Returns an :class:`ArrivalOutcome` with the per-request weight deltas
        and the augmentation records — everything the fractional and randomized
        algorithms need.
        """
        self.register(request_id, edges, cost)
        outcome = ArrivalOutcome(request_id=request_id)
        # "The following is performed for all the edges e of the path of r_i,
        #  in an arbitrary order."  We use the registration order of the edges.
        for e in self.edges_of(request_id):
            self.restore_edge(e, request_id, outcome)
        return outcome

    def process_capacity_reduction(self, edge: EdgeId, triggered_by: int, amount: int = 1) -> ArrivalOutcome:
        """Reduce an edge's capacity and restore its covering constraint.

        This models a permanently accepted request occupying the edge (the
        ``R_big`` preprocessing and the phase-2 element requests of the
        set-cover reduction): the edge can now host one fewer alive request, so
        weight augmentations may be needed immediately.
        """
        self.decrease_capacity(edge, amount)
        outcome = ArrivalOutcome(request_id=triggered_by)
        self.restore_edge(edge, triggered_by, outcome)
        return outcome

    # -- invariants (used by tests and analysis) ---------------------------------------
    def check_invariants(self) -> List[str]:
        """Return a list of violated invariants (empty when everything holds).

        Checked invariants:

        * weights are non-negative and only ever in ``{0} ∪ [seed, 2]``,
        * dead requests have weight >= 1,
        * every edge's covering constraint holds,
        * alive sets only contain registered, non-dead requests.
        """
        problems: List[str] = []
        all_weights = self.weights()
        # A weight is multiplied at most once after reaching 1, by a factor of
        # at most 1 + 1/p_i, so it never exceeds 1 + 1/min_cost (which is 2
        # for the normalised costs the paper uses).
        min_cost = min((self.cost_of(rid) for rid in all_weights), default=1.0)
        weight_cap = 1.0 + 1.0 / min_cost
        for rid, w in all_weights.items():
            if w < 0:
                problems.append(f"request {rid} has negative weight {w}")
            if 0.0 < w < self.seed_weight * (1.0 - 1e-12):
                problems.append(f"request {rid} has weight {w} below the seed weight")
            if w > weight_cap + 1e-9:
                problems.append(f"request {rid} has weight {w} above {weight_cap}")
            if self.is_dead(rid) and w < 1.0:
                problems.append(f"dead request {rid} has weight {w} < 1")
        for edge in self.edges_seen():
            if not self.constraint_satisfied(edge):
                problems.append(
                    f"edge {edge!r} violates covering constraint: "
                    f"sum={self.alive_weight_sum(edge):.4f} < excess={self.excess(edge)}"
                )
            for rid in self.alive_requests(edge):
                if self.is_dead(rid):
                    problems.append(f"dead request {rid} still alive on edge {edge!r}")
        return problems


@WEIGHT_BACKENDS.register("python")
class PythonWeightBackend(WeightBackend):
    """Scalar reference backend (the paper's pseudocode, one statement per step)."""

    name = "python"

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        g: float,
        max_capacity: Optional[int] = None,
    ):
        super().__init__(capacities, g, max_capacity)
        # Request state.
        self._weights: Dict[int, float] = {}
        self._costs: Dict[int, float] = {}
        self._edges_of: Dict[int, Tuple[EdgeId, ...]] = {}
        self._dead: Set[int] = set()

        # Per-edge alive request ids (only edges that have seen requests).
        self._alive_on_edge: Dict[EdgeId, Set[int]] = {}
        self._requests_on_edge: Dict[EdgeId, Set[int]] = {}

    # -- registration -----------------------------------------------------------
    def register(self, request_id: int, edges: Iterable[EdgeId], cost: float) -> None:
        if request_id in self._weights:
            raise ValueError(f"request {request_id} already registered")
        cost = check_positive(cost, "cost")
        edges = tuple(edges)
        for e in edges:
            if e not in self._capacity:
                raise ValueError(f"request {request_id} uses unknown edge {e!r}")
        self._weights[request_id] = 0.0
        self._costs[request_id] = cost
        self._edges_of[request_id] = edges
        for e in edges:
            self._requests_on_edge.setdefault(e, set()).add(request_id)
            self._alive_on_edge.setdefault(e, set()).add(request_id)

    # -- queries -----------------------------------------------------------------
    def weight(self, request_id: int) -> float:
        return self._weights[request_id]

    def cost_of(self, request_id: int) -> float:
        return self._costs[request_id]

    def weights(self) -> Dict[int, float]:
        return dict(self._weights)

    def is_dead(self, request_id: int) -> bool:
        return request_id in self._dead

    def edges_of(self, request_id: int) -> Tuple[EdgeId, ...]:
        return self._edges_of[request_id]

    def alive_requests(self, edge: EdgeId) -> Set[int]:
        return set(self._alive_on_edge.get(edge, set()))

    def requests_on(self, edge: EdgeId) -> Set[int]:
        return set(self._requests_on_edge.get(edge, set()))

    def alive_count(self, edge: EdgeId) -> int:
        return len(self._alive_on_edge.get(edge, set()))

    def alive_weight_sum(self, edge: EdgeId) -> float:
        alive = self._alive_on_edge.get(edge, set())
        return sum(self._weights[i] for i in alive)

    def edges_seen(self) -> Iterable[EdgeId]:
        return self._requests_on_edge.keys()

    def fractional_cost(self) -> float:
        return sum(min(w, 1.0) * self._costs[i] for i, w in self._weights.items())

    # -- the mechanism -------------------------------------------------------------
    def _kill(self, request_id: int) -> None:
        """Mark a request as fully rejected and remove it from all alive sets."""
        self._dead.add(request_id)
        for e in self._edges_of[request_id]:
            self._alive_on_edge[e].discard(request_id)

    def _augment_once(self, edge: EdgeId, triggered_by: int) -> AugmentationRecord:
        """Perform one weight augmentation for ``edge`` (paper steps 2a–2c)."""
        alive = self._alive_on_edge.get(edge, set())
        # `alive` is a live reference that step 2c's kills shrink; capture the
        # pre-step count now so the record reports what its field name says.
        alive_before = len(alive)
        n_e = alive_before - self._capacity[edge]
        seeded: List[int] = []
        killed: List[int] = []
        # Step 2a: seed zero weights.
        for rid in alive:
            if self._weights[rid] == 0.0:
                self._weights[rid] = self.seed_weight
                seeded.append(rid)
        # Step 2b: multiplicative update.  n_e is the excess *before* the update
        # (alive membership has not changed in step 2a).
        for rid in alive:
            factor = 1.0 + 1.0 / (n_e * self._costs[rid])
            self._weights[rid] *= factor
        # Step 2c: update ALIVE_e (and the other edges of newly dead requests).
        for rid in list(alive):
            if self._weights[rid] >= 1.0:
                self._kill(rid)
                killed.append(rid)
        record = AugmentationRecord(
            edge=edge,
            excess=n_e,
            alive_before=alive_before,
            seeded=tuple(seeded),
            killed=tuple(killed),
            triggered_by=triggered_by,
        )
        self.total_augmentations += 1
        self._history.append(record)
        return record

    def restore_edge(self, edge: EdgeId, triggered_by: int, outcome: ArrivalOutcome) -> None:
        while True:
            n_e = self.excess(edge)
            if n_e <= 0 or self.alive_weight_sum(edge) >= n_e:
                break
            before = {rid: self._weights[rid] for rid in self._alive_on_edge[edge]}
            record = self._augment_once(edge, triggered_by)
            outcome.augmentations.append(record)
            outcome.newly_dead.update(record.killed)
            for rid, old in before.items():
                delta = self._weights[rid] - old
                if delta > 0:
                    outcome.deltas[rid] = outcome.deltas.get(rid, 0.0) + delta


@WEIGHT_BACKENDS.register("numpy")
class NumpyWeightBackend(WeightBackend):
    """Vectorized backend: contiguous arrays, one NumPy kernel per paper step.

    Storage layout: every registered request gets a dense *slot*; weights,
    costs and the alive flag live in flat ``float64`` / ``bool`` arrays indexed
    by slot, and every edge keeps a growable ``intp`` vector of the slots
    registered on it.  One augmentation is then

    * a gather of the alive slots on the edge,
    * ``w[w == 0] = seed`` (step 2a),
    * ``w *= 1 + 1 / (n_e * cost)`` (step 2b),
    * a scatter back plus a mask for ``w >= 1`` kills (step 2c),

    all elementwise double-precision operations in the same order as the
    scalar backend, so results match to floating-point rounding.  Edge vectors
    are compacted lazily once dead slots dominate, keeping the gather
    proportional to ``|ALIVE_e|`` rather than ``|REQ_e|``.
    """

    name = "numpy"

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        g: float,
        max_capacity: Optional[int] = None,
    ):
        super().__init__(capacities, g, max_capacity)
        self._ids: List[int] = []  # slot -> request id
        self._slot: Dict[int, int] = {}  # request id -> slot
        self._n = 0
        size = 64
        self._w = np.zeros(size, dtype=np.float64)
        self._cost = np.ones(size, dtype=np.float64)
        self._alive = np.zeros(size, dtype=bool)
        self._edges_by_id: Dict[int, Tuple[EdgeId, ...]] = {}
        self._dead: Set[int] = set()

        # Per-edge slot vectors (amortised append, lazily compacted) plus O(1)
        # alive counters so `excess` never touches an array.
        self._edge_slots: Dict[EdgeId, np.ndarray] = {}
        self._edge_used: Dict[EdgeId, int] = {}
        self._edge_alive: Dict[EdgeId, int] = {}
        self._edge_requests: Dict[EdgeId, List[int]] = {}

    # -- storage helpers -----------------------------------------------------------
    def _ensure_slot_capacity(self) -> None:
        if self._n < self._w.shape[0]:
            return
        size = 2 * self._w.shape[0]
        for attr, fill in (("_w", 0.0), ("_cost", 1.0)):
            old = getattr(self, attr)
            grown = np.full(size, fill, dtype=np.float64)
            grown[: old.shape[0]] = old
            setattr(self, attr, grown)
        alive = np.zeros(size, dtype=bool)
        alive[: self._alive.shape[0]] = self._alive
        self._alive = alive

    def _edge_append(self, edge: EdgeId, slot: int) -> None:
        arr = self._edge_slots.get(edge)
        if arr is None:
            arr = np.empty(8, dtype=np.intp)
            self._edge_slots[edge] = arr
            self._edge_used[edge] = 0
        used = self._edge_used[edge]
        if used == arr.shape[0]:
            # max() guards the used == 0 case: compaction can shrink a fully
            # dead edge's vector to length zero, and 2 * 0 would never grow.
            grown = np.empty(max(8, 2 * used), dtype=np.intp)
            grown[:used] = arr[:used]
            self._edge_slots[edge] = arr = grown
        arr[used] = slot
        self._edge_used[edge] = used + 1

    def _alive_slots(self, edge: EdgeId) -> np.ndarray:
        """Alive slots on ``edge``, compacting the vector when dead slots dominate."""
        arr = self._edge_slots.get(edge)
        if arr is None:
            return np.empty(0, dtype=np.intp)
        view = arr[: self._edge_used[edge]]
        idx = view[self._alive[view]]
        if idx.shape[0] * 2 < view.shape[0]:
            # Dead slots never revive, so dropping them is safe and keeps the
            # next gather proportional to the alive count.
            compacted = idx.copy()
            self._edge_slots[edge] = compacted
            self._edge_used[edge] = compacted.shape[0]
            return compacted
        return idx

    # -- registration -----------------------------------------------------------
    def register(self, request_id: int, edges: Iterable[EdgeId], cost: float) -> None:
        if request_id in self._slot:
            raise ValueError(f"request {request_id} already registered")
        cost = check_positive(cost, "cost")
        edges = tuple(edges)
        for e in edges:
            if e not in self._capacity:
                raise ValueError(f"request {request_id} uses unknown edge {e!r}")
        self._ensure_slot_capacity()
        slot = self._n
        self._n += 1
        self._ids.append(request_id)
        self._slot[request_id] = slot
        self._w[slot] = 0.0
        self._cost[slot] = cost
        self._alive[slot] = True
        self._edges_by_id[request_id] = edges
        for e in edges:
            self._edge_append(e, slot)
            self._edge_alive[e] = self._edge_alive.get(e, 0) + 1
            self._edge_requests.setdefault(e, []).append(request_id)

    # -- queries -----------------------------------------------------------------
    def weight(self, request_id: int) -> float:
        return float(self._w[self._slot[request_id]])

    def cost_of(self, request_id: int) -> float:
        return float(self._cost[self._slot[request_id]])

    def weights(self) -> Dict[int, float]:
        w = self._w
        return {rid: float(w[slot]) for slot, rid in enumerate(self._ids)}

    def is_dead(self, request_id: int) -> bool:
        return request_id in self._dead

    def edges_of(self, request_id: int) -> Tuple[EdgeId, ...]:
        return self._edges_by_id[request_id]

    def alive_requests(self, edge: EdgeId) -> Set[int]:
        ids = self._ids
        return {ids[slot] for slot in self._alive_slots(edge).tolist()}

    def requests_on(self, edge: EdgeId) -> Set[int]:
        return set(self._edge_requests.get(edge, ()))

    def alive_count(self, edge: EdgeId) -> int:
        return self._edge_alive.get(edge, 0)

    def alive_weight_sum(self, edge: EdgeId) -> float:
        return float(self._w[self._alive_slots(edge)].sum())

    def edges_seen(self) -> Iterable[EdgeId]:
        return self._edge_requests.keys()

    def fractional_cost(self) -> float:
        n = self._n
        if n == 0:
            return 0.0
        w = self._w[:n]
        return float((np.minimum(w, 1.0) * self._cost[:n]).sum())

    def fractional_rejections(self) -> Dict[int, float]:
        clipped = np.minimum(self._w[: self._n], 1.0)
        return {rid: float(clipped[slot]) for slot, rid in enumerate(self._ids)}

    # -- the mechanism -------------------------------------------------------------
    def _kill_slot(self, slot: int) -> None:
        request_id = self._ids[slot]
        self._dead.add(request_id)
        self._alive[slot] = False
        for e in self._edges_by_id[request_id]:
            self._edge_alive[e] -= 1

    def _augment_once(
        self,
        edge: EdgeId,
        triggered_by: int,
        idx: Optional[np.ndarray] = None,
        w: Optional[np.ndarray] = None,
    ) -> AugmentationRecord:
        """One vectorized weight augmentation (paper steps 2a–2c).

        ``idx`` / ``w`` accept the alive slots and their already-gathered
        weights so the restore loop does not pay the gather twice.
        """
        if idx is None:
            idx = self._alive_slots(edge)
        n_e = int(idx.shape[0]) - self._capacity[edge]
        if w is None:
            w = self._w[idx]  # gather (a copy)
        zero_mask = w == 0.0
        seeded_slots = idx[zero_mask]
        if seeded_slots.shape[0]:
            w[zero_mask] = self.seed_weight
        w *= 1.0 + 1.0 / (n_e * self._cost[idx])
        self._w[idx] = w  # scatter back
        killed_slots = idx[w >= 1.0]
        ids = self._ids
        killed = tuple(ids[slot] for slot in killed_slots.tolist())
        for slot in killed_slots.tolist():
            self._kill_slot(slot)
        record = AugmentationRecord(
            edge=edge,
            excess=n_e,
            alive_before=int(idx.shape[0]),
            seeded=tuple(ids[slot] for slot in seeded_slots.tolist()),
            killed=killed,
            triggered_by=triggered_by,
        )
        self.total_augmentations += 1
        self._history.append(record)
        return record

    def restore_edge(self, edge: EdgeId, triggered_by: int, outcome: ArrivalOutcome) -> None:
        # The alive set only shrinks during a restore, so the slots alive at
        # the first augmentation cover every slot touched later; one vectorized
        # before/after difference therefore yields the per-request deltas for
        # the whole restore (weights never decrease during augmentations).
        first_idx: Optional[np.ndarray] = None
        before: Optional[np.ndarray] = None
        capacity = self._capacity[edge]
        while True:
            # O(1) excess check via the per-edge alive counter before paying
            # for the gather (most edges are under capacity most of the time).
            if self._edge_alive.get(edge, 0) - capacity <= 0:
                break
            idx = self._alive_slots(edge)
            n_e = int(idx.shape[0]) - capacity
            w = self._w[idx]  # gather (a copy), reused by _augment_once
            if float(w.sum()) >= n_e:
                break
            if first_idx is None:
                first_idx = idx.copy()
                before = w.copy()
            record = self._augment_once(edge, triggered_by, idx=idx, w=w)
            outcome.augmentations.append(record)
            outcome.newly_dead.update(record.killed)
        if first_idx is not None:
            diff = self._w[first_idx] - before
            changed = np.nonzero(diff > 0.0)[0]
            ids = self._ids
            deltas = outcome.deltas
            for k in changed.tolist():
                rid = ids[int(first_idx[k])]
                deltas[rid] = deltas.get(rid, 0.0) + float(diff[k])


def resolve_backend_name(spec: BackendSpec) -> str:
    """Normalise a backend spec (``None`` / name / :class:`EngineConfig`) to a name."""
    if spec is None:
        return EngineConfig().backend
    if isinstance(spec, EngineConfig):
        return spec.backend
    if isinstance(spec, str):
        return spec.strip().lower()
    raise TypeError(f"backend must be None, a name or an EngineConfig, got {spec!r}")


def make_weight_backend(
    spec: BackendSpec,
    capacities: Mapping[EdgeId, int],
    *,
    g: float,
    max_capacity: Optional[int] = None,
) -> WeightBackend:
    """Instantiate the weight backend selected by ``spec``.

    ``spec`` may be ``None`` (the default ``"python"`` reference backend), a
    registered backend name, or an :class:`EngineConfig` whose ``backend``
    field names one.
    """
    factory = WEIGHT_BACKENDS.get(resolve_backend_name(spec))
    return factory(capacities, g=g, max_capacity=max_capacity)
