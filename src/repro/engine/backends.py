"""Weight-mechanism backends: the paper's multiplicative-weight update, twice.

The fractional algorithm of Section 2 maintains a weight ``f_i`` for every
request ``r_i`` (the fraction of the request that has been rejected).  When a
request arrives, the algorithm looks at every edge on its path and, while the
covering constraint

    sum_{i in ALIVE_e} f_i  >=  n_e      with   n_e = |ALIVE_e| - c_e

is violated, performs a *weight augmentation*:

1. every alive request on the edge with weight 0 receives the seed weight
   ``1 / (g c)``;
2. every alive request on the edge has its weight multiplied by
   ``1 + 1 / (n_e * p_i)``;
3. requests whose weight reached 1 are declared fully rejected ("dead"), which
   removes them from the alive sets of *all* their edges and thereby lowers the
   excess ``n_e``.

This module implements the mechanism behind the :class:`WeightBackend`
protocol, twice:

* :class:`PythonWeightBackend` — the scalar reference implementation (the code
  that used to live in ``repro/core/weights.py`` as ``FractionalWeightState``).
  One Python statement per paper step; this is the ground truth every other
  backend is tested against.
* :class:`NumpyWeightBackend` — keeps per-request weights and costs in
  contiguous ``float64`` arrays and per-edge alive sets as index vectors, so
  the seed / multiply / kill steps of an augmentation are vectorized
  operations.  The elementwise arithmetic is the same IEEE-754 double
  arithmetic the scalar backend performs, so the two backends agree to
  floating-point rounding (the cross-backend equivalence suite pins them to
  within 1e-9, and in practice they are bit-identical on the weights).

Since the compiled-instance refactor, every backend **interns** its edge ids
to dense integers at construction time (in the capacity mapping's iteration
order — the same order :func:`repro.instances.compiled.compile_sequence`
uses), and the mechanism itself runs purely on those integers:

* the classic :class:`~repro.instances.request.EdgeId`-keyed API
  (:meth:`process_arrival`, :meth:`process_capacity_reduction`, the state
  queries) still works and simply translates at the boundary;
* the **indexed fast path** — :meth:`process_arrival_indexed` and the
  multi-edge :meth:`process_capacity_reduction_batch` — accepts dense edge
  indices directly (e.g. a CSR slice of a
  :class:`~repro.instances.compiled.CompiledInstance`), skipping all
  per-arrival hashing;
* both entry points take ``record=False`` to skip materializing
  :class:`ArrivalOutcome` deltas and per-augmentation
  :class:`AugmentationRecord` objects entirely.  The weights, kills and the
  ``total_augmentations`` counter evolve identically either way; only the
  diagnostics (``history()``, outcome deltas) are absent.  Callers that round
  deltas (the randomized algorithm) must keep ``record=True``.

Both backends register themselves in
:data:`repro.engine.registry.WEIGHT_BACKENDS`; algorithms resolve a backend by
name through :func:`make_weight_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.engine.config import EngineConfig
from repro.engine.registry import WEIGHT_BACKENDS
from repro.instances.request import EdgeId
from repro.utils.validation import check_positive

__all__ = [
    "AugmentationRecord",
    "ArrivalOutcome",
    "WeightBackend",
    "PythonWeightBackend",
    "NumpyWeightBackend",
    "BackendSpec",
    "make_weight_backend",
    "resolve_backend_name",
    "resolve_record_flag",
]

#: Anything an algorithm accepts where a backend choice is expected.
BackendSpec = Union[None, str, EngineConfig]

#: Anything the indexed fast path accepts as a run of dense edge indices.
EdgeIndices = Union[Sequence[int], np.ndarray]

#: Relative slack applied when comparing an alive-weight sum against the
#: integer excess ``n_e``.  The per-request weights are bit-identical across
#: backends, but the *sum* is order-dependent (a Python set iteration vs
#: NumPy's pairwise reduction), so on unit-cost instances — where the sum
#: frequently lands exactly on the integer threshold — a one-ULP difference
#: would flip the augmentation decision and the backends would genuinely
#: diverge.  Treating "within 1e-9 relative of satisfied" as satisfied makes
#: the decision identical whenever the sums agree to the repository's 1e-9
#: equivalence tolerance.
SUM_TOLERANCE = 1e-9


@dataclass
class AugmentationRecord:
    """One weight-augmentation step (paper, Section 2, step 2).

    Attributes
    ----------
    edge:
        The edge whose covering constraint triggered the augmentation.
    excess:
        The excess ``n_e`` at the moment of the augmentation.
    alive_before:
        Number of alive requests on the edge before the step.
    seeded:
        Ids of requests whose weight moved from 0 to the seed value.
    killed:
        Ids of requests whose weight reached 1 during this step.
    triggered_by:
        Id of the arriving request whose processing caused the step.
    """

    edge: EdgeId
    excess: int
    alive_before: int
    seeded: Tuple[int, ...]
    killed: Tuple[int, ...]
    triggered_by: int


@dataclass
class ArrivalOutcome:
    """Everything the weight mechanism did while processing one arrival.

    ``deltas`` maps request id to the total weight increase caused by this
    arrival — exactly the ``delta`` the randomized algorithm's step 3 rounds.
    Only materialized when the arrival was processed with ``record=True``
    (the default); the record-free fast path returns ``None`` instead.
    """

    request_id: int
    deltas: Dict[int, float] = field(default_factory=dict)
    augmentations: List[AugmentationRecord] = field(default_factory=list)
    newly_dead: Set[int] = field(default_factory=set)

    @property
    def num_augmentations(self) -> int:
        """Number of weight-augmentation steps performed for this arrival."""
        return len(self.augmentations)


class WeightBackend:
    """Shared skeleton and protocol of the weight-mechanism backends.

    The base class owns the edge interning (edge id <-> dense index), the
    parameter validation, the arrival-level orchestration shared by all
    backends, and a storage-agnostic invariant checker.  Subclasses own the
    storage and implement the indexed primitives (:meth:`_register_indexed`,
    :meth:`_restore_edge_indexed`, the ``*_indexed`` state queries).

    Parameters
    ----------
    capacities:
        Effective capacities per edge.  The mapping's iteration order fixes
        the dense edge numbering (index ``k`` is the ``k``-th key), matching
        :func:`repro.instances.compiled.compile_sequence` built from the same
        mapping.  Capacities may be lower than the instance's original
        capacities when requests have been permanently accepted (the
        ``R_big`` preprocessing or the set-cover reduction's element
        requests) — see :meth:`decrease_capacity`.
    g:
        Upper bound on the (normalised) cost ratio; the seed weight for a
        request that first becomes positive is ``1 / (g * c)`` where ``c`` is
        the maximum capacity (paper, step 2a).
    max_capacity:
        ``c`` in the seed-weight formula; defaults to the maximum of
        ``capacities`` and is kept fixed even if capacities later decrease so
        the seed weight is stable over the run.
    """

    #: Registry key of the backend; subclasses override.
    name = "abstract"

    #: RPR004 allowlist.  ``_edge_index`` is the interning table, rebuilt by
    #: the constructor from the same capacity map restore_state() requires;
    #: ``_history`` is per-arrival diagnostics, documented as *not* part of
    #: the durable state (see export_state's docstring).
    _LINT_STATE_EXEMPT = frozenset({"_edge_index", "_history"})

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        g: float,
        max_capacity: Optional[int] = None,
    ):
        # Edge interning: dense index <-> edge id, capacities as a flat list.
        self._edge_order: Tuple[EdgeId, ...] = tuple(capacities)
        self._edge_index: Dict[EdgeId, int] = {e: k for k, e in enumerate(self._edge_order)}
        self._cap: List[int] = []
        for edge in self._edge_order:
            cap = int(capacities[edge])
            if cap < 0:
                raise ValueError(f"capacity of edge {edge!r} must be >= 0, got {cap}")
            self._cap.append(cap)
        self.g = check_positive(g, "g")
        if max_capacity is None:
            max_capacity = max(self._cap, default=1)
        self.max_capacity = max(int(max_capacity), 1)
        self.seed_weight = 1.0 / (self.g * self.max_capacity)

        # Counters for Lemma 1 style diagnostics.
        self.total_augmentations = 0
        self._history: List[AugmentationRecord] = []

    # -- edge interning ---------------------------------------------------------------
    @property
    def edge_order(self) -> Tuple[EdgeId, ...]:
        """Dense edge index -> edge id (the interning table)."""
        return self._edge_order

    @property
    def num_edges(self) -> int:
        """Number of interned edges."""
        return len(self._edge_order)

    def edge_index_of(self, edge: EdgeId) -> int:
        """Dense index of ``edge`` (KeyError for unknown edges)."""
        return self._edge_index[edge]

    def edge_indices_of(self, edges: Iterable[EdgeId]) -> Tuple[int, ...]:
        """Dense indices of several edges (ValueError for unknown edges)."""
        index = self._edge_index
        out: List[int] = []
        for edge in edges:
            k = index.get(edge)
            if k is None:
                raise ValueError(f"unknown edge {edge!r}")
            out.append(k)
        return tuple(out)

    @staticmethod
    def _normalize_indices(edge_idxs: EdgeIndices) -> Tuple[int, ...]:
        """Coerce an index run (list/tuple/ndarray) into a tuple of Python ints."""
        if isinstance(edge_idxs, np.ndarray):
            return tuple(edge_idxs.tolist())
        return tuple(int(k) for k in edge_idxs)

    # -- primitives every backend implements (dense-index domain) ----------------------
    def _register_indexed(self, request_id: int, edge_idxs: Tuple[int, ...], cost: float) -> None:
        """Register a new request with weight 0 (paper: ``f_i = 0`` initially)."""
        raise NotImplementedError

    def _restore_edge_indexed(
        self, eidx: int, triggered_by: int, outcome: Optional[ArrivalOutcome]
    ) -> None:
        """Run weight augmentations on edge ``eidx`` until its constraint holds.

        ``outcome`` is ``None`` in record-free mode: the weights evolve
        identically, but no deltas, records or history are materialized.
        """
        raise NotImplementedError

    def _edge_idxs_of_request(self, request_id: int) -> Tuple[int, ...]:
        """Dense edge indices the request was registered with."""
        raise NotImplementedError

    def _alive_requests_indexed(self, eidx: int) -> Set[int]:
        raise NotImplementedError

    def _requests_on_indexed(self, eidx: int) -> Set[int]:
        raise NotImplementedError

    def _alive_count_indexed(self, eidx: int) -> int:
        raise NotImplementedError

    def _alive_weight_sum_indexed(self, eidx: int) -> float:
        raise NotImplementedError

    def _edges_seen_indexed(self) -> Iterable[int]:
        raise NotImplementedError

    # -- request-level queries (subclasses implement; id domain is unchanged) ----------
    def weight(self, request_id: int) -> float:
        """Current weight ``f_i``."""
        raise NotImplementedError

    def cost_of(self, request_id: int) -> float:
        """The (normalised) cost the request was registered with."""
        raise NotImplementedError

    def weights(self) -> Dict[int, float]:
        """Copy of all weights, in registration order."""
        raise NotImplementedError

    def is_dead(self, request_id: int) -> bool:
        """True if the request has been fully rejected fractionally (``f_i >= 1``)."""
        raise NotImplementedError

    # -- EdgeId-keyed views (translate at the boundary) ---------------------------------
    def edges_of(self, request_id: int) -> Tuple[EdgeId, ...]:
        """The edges the request was registered with (original edge ids)."""
        order = self._edge_order
        return tuple(order[k] for k in self._edge_idxs_of_request(request_id))

    def alive_requests(self, edge: EdgeId) -> Set[int]:
        """``ALIVE_e`` — alive request ids whose paths contain ``edge``."""
        return self._alive_requests_indexed(self._edge_index[edge])

    def requests_on(self, edge: EdgeId) -> Set[int]:
        """``REQ_e`` — all registered request ids whose paths contain ``edge``."""
        return self._requests_on_indexed(self._edge_index[edge])

    def alive_count(self, edge: EdgeId) -> int:
        """``|ALIVE_e|``."""
        return self._alive_count_indexed(self._edge_index[edge])

    def alive_weight_sum(self, edge: EdgeId) -> float:
        """``sum_{i in ALIVE_e} f_i``."""
        return self._alive_weight_sum_indexed(self._edge_index[edge])

    def edges_seen(self) -> Iterable[EdgeId]:
        """Edges on which at least one request was registered."""
        order = self._edge_order
        return [order[k] for k in self._edges_seen_indexed()]

    def restore_edge(self, edge: EdgeId, triggered_by: int, outcome: ArrivalOutcome) -> None:
        """Run weight augmentations on ``edge`` until its constraint holds."""
        self._restore_edge_indexed(self._edge_index[edge], triggered_by, outcome)

    # -- shared bookkeeping ----------------------------------------------------------
    def capacity(self, edge: EdgeId) -> int:
        """Current effective capacity of ``edge``."""
        return self._cap[self._edge_index[edge]]

    def decrease_capacity(self, edge: EdgeId, amount: int = 1) -> None:
        """Permanently reserve capacity on ``edge`` (used by ``R_big`` handling).

        The effective capacity never drops below zero; requesting a decrease
        past zero is recorded as an inconsistency (the caller's guess of
        ``alpha`` was too small) but does not raise, so the doubling wrapper
        can observe the overflow through the cost blow-up instead of crashing.
        """
        k = self._edge_index.get(edge)
        if k is None:
            raise ValueError(f"unknown edge {edge!r}")
        self._decrease_capacity_indexed(k, amount)

    def _decrease_capacity_indexed(self, eidx: int, amount: int = 1) -> None:
        self._decrease_capacities_indexed((eidx,), amount)

    def _decrease_capacities_indexed(self, edge_idxs: Sequence[int], amount: int = 1) -> None:
        """Decrease several edges' capacities in one call (floor at zero).

        The batch primitive behind :meth:`process_capacity_reduction_batch`;
        the scalar :meth:`_decrease_capacity_indexed` delegates here so the
        clamping rule lives in exactly one place.
        """
        cap = self._cap
        for eidx in edge_idxs:
            new = cap[eidx] - amount
            cap[eidx] = new if new > 0 else 0

    def excess(self, edge: EdgeId) -> int:
        """``n_e = |ALIVE_e| - c_e`` (may be negative)."""
        k = self._edge_index[edge]
        return self._alive_count_indexed(k) - self._cap[k]

    def constraint_satisfied(self, edge: EdgeId) -> bool:
        """True if the covering constraint of ``edge`` currently holds.

        Satisfied within :data:`SUM_TOLERANCE` (relative), matching the
        termination check of the augmentation loop.
        """
        n_e = self.excess(edge)
        if n_e <= 0:
            return True
        return self.alive_weight_sum(edge) >= n_e * (1.0 - SUM_TOLERANCE)

    def fractional_cost(self) -> float:
        """``sum_i min(f_i, 1) * p_i`` over every registered request."""
        return sum(min(w, 1.0) * self.cost_of(i) for i, w in self.weights().items())

    def fractional_rejections(self) -> Dict[int, float]:
        """Mapping request id -> rejected fraction ``min(f_i, 1)``."""
        return {i: min(w, 1.0) for i, w in self.weights().items()}

    def history(self) -> List[AugmentationRecord]:
        """All augmentation records in chronological order.

        Empty for augmentations performed with ``record=False`` (the counters
        in ``total_augmentations`` still include them).
        """
        return list(self._history)

    # -- the arrival-level mechanism (shared) ----------------------------------------
    def register(self, request_id: int, edges: Iterable[EdgeId], cost: float) -> None:
        """Register a new request with weight 0, validating edges and cost."""
        edges = tuple(edges)
        index = self._edge_index
        idxs: List[int] = []
        for e in edges:
            k = index.get(e)
            if k is None:
                raise ValueError(f"request {request_id} uses unknown edge {e!r}")
            idxs.append(k)
        cost = check_positive(cost, "cost")
        self._register_indexed(request_id, tuple(idxs), cost)

    def process_arrival(self, request_id: int, edges: Iterable[EdgeId], cost: float) -> ArrivalOutcome:
        """Register an arriving request and restore all its edges' constraints.

        Returns an :class:`ArrivalOutcome` with the per-request weight deltas
        and the augmentation records — everything the fractional and randomized
        algorithms need.
        """
        self.register(request_id, edges, cost)
        outcome = ArrivalOutcome(request_id=request_id)
        # "The following is performed for all the edges e of the path of r_i,
        #  in an arbitrary order."  We use the registration order of the edges.
        for eidx in self._edge_idxs_of_request(request_id):
            self._restore_edge_indexed(eidx, request_id, outcome)
        return outcome

    def process_arrival_indexed(
        self,
        request_id: int,
        edge_idxs: EdgeIndices,
        cost: float,
        record: bool = True,
    ) -> Optional[ArrivalOutcome]:
        """Indexed fast path of :meth:`process_arrival`.

        ``edge_idxs`` are dense edge indices (e.g. a CSR slice of a compiled
        instance) and are trusted to be in range — compilation already
        validated them against the capacity mapping.  With ``record=False``
        no :class:`ArrivalOutcome` is materialized and ``None`` is returned;
        weights, kills and the augmentation counter evolve identically.
        """
        if not cost > 0:
            raise ValueError(f"cost must be > 0, got {cost!r}")
        idxs = self._normalize_indices(edge_idxs)
        self._register_indexed(request_id, idxs, float(cost))
        outcome = ArrivalOutcome(request_id=request_id) if record else None
        for eidx in idxs:
            self._restore_edge_indexed(eidx, request_id, outcome)
        return outcome

    def process_capacity_reduction(self, edge: EdgeId, triggered_by: int, amount: int = 1) -> ArrivalOutcome:
        """Reduce an edge's capacity and restore its covering constraint.

        This models a permanently accepted request occupying the edge (the
        ``R_big`` preprocessing and the phase-2 element requests of the
        set-cover reduction): the edge can now host one fewer alive request, so
        weight augmentations may be needed immediately.
        """
        k = self._edge_index.get(edge)
        if k is None:
            raise ValueError(f"unknown edge {edge!r}")
        return self.process_capacity_reduction_batch((k,), triggered_by, amount=amount, record=True)

    def process_capacity_reduction_batch(
        self,
        edge_idxs: EdgeIndices,
        triggered_by: int,
        amount: int = 1,
        record: bool = True,
    ) -> Optional[ArrivalOutcome]:
        """Reduce several edges' capacities and restore their constraints.

        Equivalent to calling :meth:`process_capacity_reduction` per edge in
        order (restoring edge ``e`` only inspects ``e``'s own capacity, so
        decreasing all capacities up front then restoring in order performs
        the exact same float operations), but pays the Python dispatch once.
        With ``record=False`` no outcome is materialized.
        """
        idxs = self._normalize_indices(edge_idxs)
        self._decrease_capacities_indexed(idxs, amount)
        outcome = ArrivalOutcome(request_id=triggered_by) if record else None
        for eidx in idxs:
            self._restore_edge_indexed(eidx, triggered_by, outcome)
        return outcome

    # -- whole-trace executor protocol (see repro.engine.vectorized) -------------------
    def _alive_counts_array(self) -> np.ndarray:
        """``int64[m]`` of per-edge alive counts (the executor's horizon scan).

        The base implementation loops the scalar query; array-backed backends
        override it with a bulk view.  Called once per executor scheduling
        cycle, never per arrival.
        """
        return np.fromiter(
            (self._alive_count_indexed(k) for k in range(self.num_edges)),
            dtype=np.int64,
            count=self.num_edges,
        )

    def register_batch_indexed(
        self,
        request_ids: Sequence[int],
        costs: np.ndarray,
        flat_edge_idxs: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        """Register a run of requests (weight 0) in arrival order, in one call.

        Request ``r`` carries cost ``costs[r]`` and the dense edge indices
        ``flat_edge_idxs[offsets[r]:offsets[r + 1]]``.  Equivalent to calling
        :meth:`_register_indexed` per request in order — the whole-trace
        executor uses it for stretches it has proven cannot trigger any
        augmentation, where registration order is the only thing that matters.
        """
        fl = flat_edge_idxs.tolist()
        offs = offsets.tolist()
        for r, rid in enumerate(request_ids):
            self._register_indexed(rid, tuple(fl[offs[r] : offs[r + 1]]), float(costs[r]))

    def process_arrival_block_indexed(
        self,
        request_ids: Sequence[int],
        costs: np.ndarray,
        flat_edge_idxs: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Record-free :meth:`process_arrival_indexed` over a run of arrivals.

        Returns ``float64[k]`` of each request's own rejected fraction
        ``min(f_i, 1)`` captured right after its arrival (later arrivals in
        the same block may grow it further).  The base implementation loops
        the scalar fast path; array-backed backends override it with a fused
        per-block kernel.  Weights, kills and the augmentation counter evolve
        exactly as with per-arrival processing.
        """
        fractions = np.empty(len(request_ids), dtype=np.float64)
        fl = flat_edge_idxs.tolist()
        offs = offsets.tolist()
        for r, rid in enumerate(request_ids):
            self.process_arrival_indexed(
                rid, tuple(fl[offs[r] : offs[r + 1]]), float(costs[r]), record=False
            )
            fractions[r] = min(self.weight(rid), 1.0)
        return fractions

    # -- checkpoint state (used by the streaming layer) --------------------------------
    def _request_ids_in_order(self) -> List[int]:
        """Registered request ids in registration order (subclasses implement)."""
        raise NotImplementedError

    def _set_weight(self, request_id: int, weight: float) -> None:
        """Overwrite a registered request's weight (restore-time primitive)."""
        raise NotImplementedError

    def _mark_dead(self, request_id: int) -> None:
        """Mark a registered request dead, removing it from all alive sets."""
        raise NotImplementedError

    def export_state(self) -> Dict[str, object]:
        """JSON-serialisable snapshot of the mechanism's *logical* state.

        Captures everything the future evolution of the weights depends on:
        per-request (edge indices, cost, weight, dead flag) in registration
        order, the current effective capacities, the seed-weight parameters
        and the augmentation counter.  Diagnostics (``history()``, past
        :class:`ArrivalOutcome` objects) are *not* part of the durable state.

        The snapshot is backend-agnostic: a state exported from the python
        backend restores into the numpy backend and vice versa (per-request
        weights are bit-identical across backends; only alive-sum reduction
        order differs, which :data:`SUM_TOLERANCE` absorbs).
        """
        return {
            "backend": self.name,
            "g": float(self.g),
            "max_capacity": int(self.max_capacity),
            "num_edges": self.num_edges,
            "capacities": [int(c) for c in self._cap],
            "total_augmentations": int(self.total_augmentations),
            "requests": [
                {
                    "id": int(rid),
                    "edges": [int(k) for k in self._edge_idxs_of_request(rid)],
                    "cost": float(self.cost_of(rid)),
                    "weight": float(self.weight(rid)),
                    "dead": bool(self.is_dead(rid)),
                }
                for rid in self._request_ids_in_order()
            ],
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore an :meth:`export_state` snapshot into this (fresh) backend.

        Must be called on a newly constructed backend over the *same* edge set
        (same interning order) and seed parameters; the restored mechanism
        then evolves exactly like the one that was snapshotted.
        """
        if self._request_ids_in_order():
            raise ValueError("restore_state requires a freshly constructed backend")
        if int(state["num_edges"]) != self.num_edges:
            raise ValueError(
                f"checkpoint has {state['num_edges']} edges, backend has {self.num_edges}"
            )
        if abs(float(state["g"]) - self.g) > 1e-12 * max(self.g, 1.0) or int(
            state["max_capacity"]
        ) != self.max_capacity:
            raise ValueError(
                "checkpoint seed-weight parameters (g, max_capacity) do not match "
                "this backend; was it built from the same capacities?"
            )
        self._cap = [int(c) for c in state["capacities"]]
        self.total_augmentations = int(state["total_augmentations"])
        for item in state["requests"]:
            rid = int(item["id"])
            self._register_indexed(
                rid, tuple(int(k) for k in item["edges"]), float(item["cost"])
            )
            self._set_weight(rid, float(item["weight"]))
            if item["dead"]:
                self._mark_dead(rid)

    # -- invariants (used by tests and analysis) ---------------------------------------
    def check_invariants(self) -> List[str]:
        """Return a list of violated invariants (empty when everything holds).

        Checked invariants:

        * weights are non-negative and only ever in ``{0} ∪ [seed, 2]``,
        * dead requests have weight >= 1,
        * every edge's covering constraint holds,
        * alive sets only contain registered, non-dead requests.
        """
        problems: List[str] = []
        all_weights = self.weights()
        # A weight is multiplied at most once after reaching 1, by a factor of
        # at most 1 + 1/p_i, so it never exceeds 1 + 1/min_cost (which is 2
        # for the normalised costs the paper uses).
        min_cost = min((self.cost_of(rid) for rid in all_weights), default=1.0)
        weight_cap = 1.0 + 1.0 / min_cost
        for rid, w in all_weights.items():
            if w < 0:
                problems.append(f"request {rid} has negative weight {w}")
            if 0.0 < w < self.seed_weight * (1.0 - 1e-12):
                problems.append(f"request {rid} has weight {w} below the seed weight")
            if w > weight_cap + 1e-9:
                problems.append(f"request {rid} has weight {w} above {weight_cap}")
            if self.is_dead(rid) and w < 1.0:
                problems.append(f"dead request {rid} has weight {w} < 1")
        for edge in self.edges_seen():
            if not self.constraint_satisfied(edge):
                problems.append(
                    f"edge {edge!r} violates covering constraint: "
                    f"sum={self.alive_weight_sum(edge):.4f} < excess={self.excess(edge)}"
                )
            for rid in self.alive_requests(edge):
                if self.is_dead(rid):
                    problems.append(f"dead request {rid} still alive on edge {edge!r}")
        return problems


@WEIGHT_BACKENDS.register("python")
class PythonWeightBackend(WeightBackend):
    """Scalar reference backend (the paper's pseudocode, one statement per step)."""

    name = "python"

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        g: float,
        max_capacity: Optional[int] = None,
    ):
        super().__init__(capacities, g, max_capacity)
        # Request state.
        self._weights: Dict[int, float] = {}
        self._costs: Dict[int, float] = {}
        self._edge_idxs_by_id: Dict[int, Tuple[int, ...]] = {}
        self._dead: Set[int] = set()

        # Per-edge alive / registered request ids, indexed by dense edge index
        # (``None`` until the edge sees its first request).
        m = len(self._edge_order)
        self._alive_on_edge: List[Optional[Set[int]]] = [None] * m
        self._requests_on_edge: List[Optional[Set[int]]] = [None] * m

    # -- registration -----------------------------------------------------------
    def _register_indexed(self, request_id: int, edge_idxs: Tuple[int, ...], cost: float) -> None:
        if request_id in self._weights:
            raise ValueError(f"request {request_id} already registered")
        self._weights[request_id] = 0.0
        self._costs[request_id] = cost
        self._edge_idxs_by_id[request_id] = edge_idxs
        for k in edge_idxs:
            requests = self._requests_on_edge[k]
            if requests is None:
                self._requests_on_edge[k] = {request_id}
                self._alive_on_edge[k] = {request_id}
            else:
                requests.add(request_id)
                self._alive_on_edge[k].add(request_id)

    # -- queries -----------------------------------------------------------------
    def weight(self, request_id: int) -> float:
        return self._weights[request_id]

    def cost_of(self, request_id: int) -> float:
        return self._costs[request_id]

    def weights(self) -> Dict[int, float]:
        return dict(self._weights)

    def is_dead(self, request_id: int) -> bool:
        return request_id in self._dead

    def _edge_idxs_of_request(self, request_id: int) -> Tuple[int, ...]:
        return self._edge_idxs_by_id[request_id]

    def _alive_requests_indexed(self, eidx: int) -> Set[int]:
        alive = self._alive_on_edge[eidx]
        return set(alive) if alive else set()

    def _requests_on_indexed(self, eidx: int) -> Set[int]:
        requests = self._requests_on_edge[eidx]
        return set(requests) if requests else set()

    def _alive_count_indexed(self, eidx: int) -> int:
        alive = self._alive_on_edge[eidx]
        return len(alive) if alive else 0

    def _alive_weight_sum_indexed(self, eidx: int) -> float:
        alive = self._alive_on_edge[eidx]
        if not alive:
            return 0.0
        weights = self._weights
        return sum(weights[i] for i in alive)

    def _edges_seen_indexed(self) -> Iterable[int]:
        return [k for k, requests in enumerate(self._requests_on_edge) if requests is not None]

    def fractional_cost(self) -> float:
        return sum(min(w, 1.0) * self._costs[i] for i, w in self._weights.items())

    # -- checkpoint primitives ------------------------------------------------------
    def _request_ids_in_order(self) -> List[int]:
        return list(self._weights)

    def _set_weight(self, request_id: int, weight: float) -> None:
        self._weights[request_id] = weight

    def _mark_dead(self, request_id: int) -> None:
        self._kill(request_id)

    # -- the mechanism -------------------------------------------------------------
    def _kill(self, request_id: int) -> None:
        """Mark a request as fully rejected and remove it from all alive sets."""
        self._dead.add(request_id)
        for k in self._edge_idxs_by_id[request_id]:
            self._alive_on_edge[k].discard(request_id)

    def _augment_once(
        self, eidx: int, triggered_by: int, record: bool
    ) -> Optional[AugmentationRecord]:
        """Perform one weight augmentation for edge ``eidx`` (paper steps 2a–2c)."""
        alive = self._alive_on_edge[eidx] or set()
        # `alive` is a live reference that step 2c's kills shrink; capture the
        # pre-step count now so the record reports what its field name says.
        alive_before = len(alive)
        n_e = alive_before - self._cap[eidx]
        weights = self._weights
        seeded: List[int] = []
        killed: List[int] = []
        # Step 2a: seed zero weights.
        seed = self.seed_weight
        for rid in alive:
            if weights[rid] == 0.0:
                weights[rid] = seed
                if record:
                    seeded.append(rid)
        # Step 2b: multiplicative update.  n_e is the excess *before* the update
        # (alive membership has not changed in step 2a).
        costs = self._costs
        for rid in alive:
            factor = 1.0 + 1.0 / (n_e * costs[rid])
            weights[rid] *= factor
        # Step 2c: update ALIVE_e (and the other edges of newly dead requests).
        for rid in list(alive):
            if weights[rid] >= 1.0:
                self._kill(rid)
                killed.append(rid)
        self.total_augmentations += 1
        if not record:
            return None
        augmentation = AugmentationRecord(
            edge=self._edge_order[eidx],
            excess=n_e,
            alive_before=alive_before,
            seeded=tuple(seeded),
            killed=tuple(killed),
            triggered_by=triggered_by,
        )
        self._history.append(augmentation)
        return augmentation

    def _restore_edge_indexed(
        self, eidx: int, triggered_by: int, outcome: Optional[ArrivalOutcome]
    ) -> None:
        cap = self._cap[eidx]
        weights = self._weights
        while True:
            alive = self._alive_on_edge[eidx]
            n_e = (len(alive) if alive else 0) - cap
            # ``>= n_e`` within SUM_TOLERANCE: the sum is order-dependent in
            # its last ULP, and unit-cost instances land exactly on the
            # threshold — see the SUM_TOLERANCE comment.
            if n_e <= 0 or sum(weights[i] for i in alive) >= n_e * (1.0 - SUM_TOLERANCE):
                break
            if outcome is None:
                self._augment_once(eidx, triggered_by, record=False)
                continue
            before = {rid: weights[rid] for rid in alive}
            augmentation = self._augment_once(eidx, triggered_by, record=True)
            outcome.augmentations.append(augmentation)
            outcome.newly_dead.update(augmentation.killed)
            deltas = outcome.deltas
            for rid, old in before.items():
                delta = weights[rid] - old
                if delta > 0:
                    deltas[rid] = deltas.get(rid, 0.0) + delta


@WEIGHT_BACKENDS.register("numpy")
class NumpyWeightBackend(WeightBackend):
    """Vectorized backend: contiguous arrays, one NumPy kernel per paper step.

    Storage layout: every registered request gets a dense *slot*; weights,
    costs and the alive flag live in flat ``float64`` / ``bool`` arrays indexed
    by slot, and every (interned) edge keeps a growable ``intp`` vector of the
    slots registered on it.  One restore is a *fused* loop over augmentations:

    * a single gather of the alive slots and their weights on entry,
    * ``w[w == 0] = seed`` (step 2a — only possible on the first iteration),
    * ``w *= 1 + 1 / (n_e * cost)`` with the factor vector cached while the
      alive set is unchanged (step 2b),
    * a ``w >= 1`` kill mask; only when something dies are the killed weights
      scattered back and the in-register vectors filtered (step 2c),
    * one scatter of the surviving weights on exit.

    Every multiplication operates on exactly the values the scalar backend
    produces (scatter/regather round-trips are value-preserving), so results
    match to floating-point rounding.  Edge vectors are compacted lazily once
    dead slots dominate, keeping gathers proportional to ``|ALIVE_e|`` rather
    than ``|REQ_e|``.
    """

    name = "numpy"

    def __init__(
        self,
        capacities: Mapping[EdgeId, int],
        g: float,
        max_capacity: Optional[int] = None,
    ):
        super().__init__(capacities, g, max_capacity)
        self._ids: List[int] = []  # slot -> request id
        self._slot: Dict[int, int] = {}  # request id -> slot
        self._n = 0
        size = 64
        self._w = np.zeros(size, dtype=np.float64)
        self._cost = np.ones(size, dtype=np.float64)
        self._alive = np.zeros(size, dtype=bool)
        self._edge_idxs_by_id: Dict[int, Tuple[int, ...]] = {}
        self._dead: Set[int] = set()

        # Per-edge slot vectors (amortised append, lazily compacted) plus O(1)
        # alive counters so excess checks never touch an array.  All indexed
        # by dense edge index.
        m = len(self._edge_order)
        self._edge_slots: List[Optional[np.ndarray]] = [None] * m
        self._edge_used: List[int] = [0] * m
        self._edge_alive: List[int] = [0] * m
        self._edge_requests: List[Optional[List[int]]] = [None] * m

    # -- storage helpers -----------------------------------------------------------
    def _ensure_slot_capacity(self) -> None:
        if self._n < self._w.shape[0]:
            return
        size = 2 * self._w.shape[0]
        for attr, fill in (("_w", 0.0), ("_cost", 1.0)):
            old = getattr(self, attr)
            grown = np.full(size, fill, dtype=np.float64)
            grown[: old.shape[0]] = old
            setattr(self, attr, grown)
        alive = np.zeros(size, dtype=bool)
        alive[: self._alive.shape[0]] = self._alive
        self._alive = alive

    def _edge_append(self, eidx: int, slot: int) -> None:
        arr = self._edge_slots[eidx]
        if arr is None:
            arr = np.empty(8, dtype=np.intp)
            self._edge_slots[eidx] = arr
            self._edge_used[eidx] = 0
        used = self._edge_used[eidx]
        if used == arr.shape[0]:
            # max() guards the used == 0 case: compaction can shrink a fully
            # dead edge's vector to length zero, and 2 * 0 would never grow.
            grown = np.empty(max(8, 2 * used), dtype=np.intp)
            grown[:used] = arr[:used]
            self._edge_slots[eidx] = arr = grown
        arr[used] = slot
        self._edge_used[eidx] = used + 1

    def _alive_slots(self, eidx: int) -> np.ndarray:
        """Alive slots on edge ``eidx``, compacting when dead slots dominate."""
        arr = self._edge_slots[eidx]
        if arr is None:
            return np.empty(0, dtype=np.intp)
        view = arr[: self._edge_used[eidx]]
        idx = view[self._alive[view]]
        if idx.shape[0] * 2 < view.shape[0]:
            # Dead slots never revive, so dropping them is safe and keeps the
            # next gather proportional to the alive count.
            compacted = idx.copy()
            self._edge_slots[eidx] = compacted
            self._edge_used[eidx] = compacted.shape[0]
            return compacted
        return idx

    # -- registration -----------------------------------------------------------
    def _register_indexed(self, request_id: int, edge_idxs: Tuple[int, ...], cost: float) -> None:
        if request_id in self._slot:
            raise ValueError(f"request {request_id} already registered")
        self._ensure_slot_capacity()
        slot = self._n
        self._n += 1
        self._ids.append(request_id)
        self._slot[request_id] = slot
        self._w[slot] = 0.0
        self._cost[slot] = cost
        self._alive[slot] = True
        self._edge_idxs_by_id[request_id] = edge_idxs
        edge_alive = self._edge_alive
        edge_requests = self._edge_requests
        for k in edge_idxs:
            self._edge_append(k, slot)
            edge_alive[k] += 1
            requests = edge_requests[k]
            if requests is None:
                edge_requests[k] = [request_id]
            else:
                requests.append(request_id)

    def _edge_extend(self, eidx: int, slots: np.ndarray) -> None:
        """Append a run of slots to an edge's vector (amortised growth)."""
        k = slots.shape[0]
        arr = self._edge_slots[eidx]
        used = self._edge_used[eidx] if arr is not None else 0
        need = used + k
        if arr is None or need > arr.shape[0]:
            grown = np.empty(max(8, 2 * need), dtype=np.intp)
            if used:
                grown[:used] = arr[:used]
            self._edge_slots[eidx] = arr = grown
        arr[used:need] = slots
        self._edge_used[eidx] = need

    def register_batch_indexed(
        self,
        request_ids: Sequence[int],
        costs: np.ndarray,
        flat_edge_idxs: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        k = len(request_ids)
        if k == 0:
            return
        slot_of = self._slot
        seen: Set[int] = set()
        for rid in request_ids:
            if rid in slot_of or rid in seen:
                raise ValueError(f"request {rid} already registered")
            seen.add(rid)
        while self._w.shape[0] < self._n + k:
            size = 2 * self._w.shape[0]
            for attr, fill in (("_w", 0.0), ("_cost", 1.0)):
                old = getattr(self, attr)
                grown = np.full(size, fill, dtype=np.float64)
                grown[: old.shape[0]] = old
                setattr(self, attr, grown)
            alive = np.zeros(size, dtype=bool)
            alive[: self._alive.shape[0]] = self._alive
            self._alive = alive
        base = self._n
        self._n = base + k
        self._w[base : base + k] = 0.0
        self._cost[base : base + k] = costs
        self._alive[base : base + k] = True
        fl = flat_edge_idxs.tolist()
        offs = offsets.tolist()
        ids = self._ids
        by_id = self._edge_idxs_by_id
        for r, rid in enumerate(request_ids):
            ids.append(rid)
            slot_of[rid] = base + r
            by_id[rid] = tuple(fl[offs[r] : offs[r + 1]])
        # Per-edge appends, grouped: a stable sort of the flat CSR entries by
        # edge keeps each edge's entries in arrival order, so the resulting
        # slot vectors are byte-identical to per-request _edge_append calls.
        lengths = np.diff(offsets)
        entry_slots = np.repeat(np.arange(base, base + k, dtype=np.intp), lengths)
        entry_req = np.repeat(np.arange(k, dtype=np.intp), lengths)
        order = np.argsort(flat_edge_idxs, kind="stable")
        sorted_edges = flat_edge_idxs[order]
        sorted_slots = entry_slots[order]
        sorted_req = entry_req[order].tolist()
        bounds = np.nonzero(np.diff(sorted_edges))[0] + 1
        starts = [0, *bounds.tolist(), sorted_edges.shape[0]]
        edge_alive = self._edge_alive
        edge_requests = self._edge_requests
        for b in range(len(starts) - 1):
            lo, hi = starts[b], starts[b + 1]
            eidx = int(sorted_edges[lo])
            self._edge_extend(eidx, sorted_slots[lo:hi])
            edge_alive[eidx] += hi - lo
            rids = [request_ids[sorted_req[t]] for t in range(lo, hi)]
            requests = edge_requests[eidx]
            if requests is None:
                edge_requests[eidx] = rids
            else:
                requests.extend(rids)

    # -- queries -----------------------------------------------------------------
    def weight(self, request_id: int) -> float:
        return float(self._w[self._slot[request_id]])

    def cost_of(self, request_id: int) -> float:
        return float(self._cost[self._slot[request_id]])

    def weights(self) -> Dict[int, float]:
        w = self._w
        return {rid: float(w[slot]) for slot, rid in enumerate(self._ids)}

    def is_dead(self, request_id: int) -> bool:
        return request_id in self._dead

    def _edge_idxs_of_request(self, request_id: int) -> Tuple[int, ...]:
        return self._edge_idxs_by_id[request_id]

    def _alive_requests_indexed(self, eidx: int) -> Set[int]:
        ids = self._ids
        return {ids[slot] for slot in self._alive_slots(eidx).tolist()}

    def _requests_on_indexed(self, eidx: int) -> Set[int]:
        requests = self._edge_requests[eidx]
        return set(requests) if requests else set()

    def _alive_count_indexed(self, eidx: int) -> int:
        return self._edge_alive[eidx]

    def _alive_counts_array(self) -> np.ndarray:
        return np.asarray(self._edge_alive, dtype=np.int64)

    def _alive_weight_sum_indexed(self, eidx: int) -> float:
        return float(self._w[self._alive_slots(eidx)].sum())

    def _edges_seen_indexed(self) -> Iterable[int]:
        return [k for k, requests in enumerate(self._edge_requests) if requests is not None]

    def fractional_cost(self) -> float:
        n = self._n
        if n == 0:
            return 0.0
        w = self._w[:n]
        return float((np.minimum(w, 1.0) * self._cost[:n]).sum())

    def fractional_rejections(self) -> Dict[int, float]:
        clipped = np.minimum(self._w[: self._n], 1.0)
        return {rid: float(clipped[slot]) for slot, rid in enumerate(self._ids)}

    # -- checkpoint primitives ------------------------------------------------------
    def _request_ids_in_order(self) -> List[int]:
        return list(self._ids)

    def _set_weight(self, request_id: int, weight: float) -> None:
        self._w[self._slot[request_id]] = weight

    def _mark_dead(self, request_id: int) -> None:
        self._kill_slot(self._slot[request_id])

    # -- the mechanism -------------------------------------------------------------
    def _kill_slot(self, slot: int) -> None:
        request_id = self._ids[slot]
        self._dead.add(request_id)
        self._alive[slot] = False
        edge_alive = self._edge_alive
        for k in self._edge_idxs_by_id[request_id]:
            edge_alive[k] -= 1

    def _restore_edge_indexed(
        self, eidx: int, triggered_by: int, outcome: Optional[ArrivalOutcome]
    ) -> None:
        cap = self._cap[eidx]
        # O(1) excess check via the per-edge alive counter before paying for
        # the gather (most edges are under capacity most of the time).
        if self._edge_alive[eidx] - cap <= 0:
            return
        idx = self._alive_slots(eidx)
        w = self._w[idx]  # gather (a copy); scattered back on exit
        n_e = int(idx.shape[0]) - cap
        if float(w.sum()) >= n_e * (1.0 - SUM_TOLERANCE):
            return
        record = outcome is not None
        if record:
            # The alive set only shrinks during a restore, so the slots alive
            # at the first augmentation cover every slot touched later; one
            # vectorized before/after difference at the end yields the
            # per-request deltas for the whole restore.
            first_idx = idx.copy()
            before = w.copy()
        ids = self._ids
        edge = self._edge_order[eidx] if record else None
        cost_idx = self._cost[idx]
        factor: Optional[np.ndarray] = None
        first_pass = True
        while True:
            alive_before = int(idx.shape[0])
            # Step 2a: seed zero weights.  Zeros are only possible before the
            # first multiply of this restore — afterwards every alive weight
            # on the edge is positive — so the mask is checked once.
            seeded_slots: Tuple[int, ...] = ()
            if first_pass:
                first_pass = False
                zero_mask = w == 0.0
                if zero_mask.any():
                    w[zero_mask] = self.seed_weight
                    if record:
                        seeded_slots = tuple(ids[s] for s in idx[zero_mask].tolist())
            # Step 2b: multiplicative update.  The factor vector only depends
            # on n_e and the alive costs, so it is reused verbatim until a
            # kill changes either (recomputing it would produce the exact
            # same doubles).
            if factor is None:
                factor = 1.0 + 1.0 / (n_e * cost_idx)
            w *= factor
            self.total_augmentations += 1
            # Step 2c: kills.  A max reduction is cheaper than materializing
            # the kill mask; the mask is only built when someone actually dies
            # (most augmentations kill nothing).
            if w.max() >= 1.0:
                kill_mask = w >= 1.0
                killed_slots = idx[kill_mask]
                # Scatter the killed weights now; survivors on exit.
                self._w[killed_slots] = w[kill_mask]
                killed = tuple(ids[s] for s in killed_slots.tolist())
                for slot in killed_slots.tolist():
                    self._kill_slot(slot)
                keep = ~kill_mask
                idx = idx[keep]
                w = w[keep]
                cost_idx = cost_idx[keep]
                factor = None
            else:
                killed = ()
            if record:
                augmentation = AugmentationRecord(
                    edge=edge,
                    excess=n_e,
                    alive_before=alive_before,
                    seeded=seeded_slots,
                    killed=killed,
                    triggered_by=triggered_by,
                )
                self._history.append(augmentation)
                outcome.augmentations.append(augmentation)
                if killed:
                    outcome.newly_dead.update(killed)
            n_e = int(idx.shape[0]) - cap
            if n_e <= 0:
                break
            if float(w.sum()) >= n_e * (1.0 - SUM_TOLERANCE):
                break
        if idx.shape[0]:
            self._w[idx] = w  # scatter the survivors back
        if record:
            diff = self._w[first_idx] - before
            changed = np.nonzero(diff > 0.0)[0]
            deltas = outcome.deltas
            for k in changed.tolist():
                rid = ids[int(first_idx[k])]
                deltas[rid] = deltas.get(rid, 0.0) + float(diff[k])

    # -- whole-trace block kernel (see repro.engine.vectorized) ------------------------
    def _restore_edge_norecord(self, eidx: int, cap: int) -> None:
        """Record-free restore with a tracked kill-check upper bound.

        Performs the exact same weight mutations (same gathers, same
        multiplies, same pairwise sums, same kills) as
        :meth:`_restore_edge_indexed` with ``outcome=None``, but replaces the
        per-iteration ``w.max()`` reduction with a scalar upper bound
        ``ub' = ub * max(factor)``: IEEE-754 rounding is monotone, so the
        tracked bound never falls below the true maximum and the real
        reduction only runs when the bound crosses 1 — which is exactly when
        a kill is possible.
        """
        idx = self._alive_slots(eidx)
        w = self._w[idx]
        n_e = int(idx.shape[0]) - cap
        add_reduce = np.add.reduce
        max_reduce = np.maximum.reduce
        multiply = np.multiply
        slack = 1.0 - SUM_TOLERANCE
        if add_reduce(w) >= n_e * slack:
            return
        zero_mask = w == 0.0
        if zero_mask.any():
            w[zero_mask] = self.seed_weight
        cost_idx = self._cost[idx]
        factor: Optional[np.ndarray] = None
        fmax = 1.0
        ub = float(max_reduce(w))
        augmentations = 0
        while True:
            if factor is None:
                factor = 1.0 + 1.0 / (n_e * cost_idx)
                fmax = float(max_reduce(factor))
            multiply(w, factor, out=w)
            augmentations += 1
            ub *= fmax
            if ub >= 1.0:
                true_max = float(max_reduce(w))
                if true_max >= 1.0:
                    kill_mask = w >= 1.0
                    killed_slots = idx[kill_mask]
                    self._w[killed_slots] = w[kill_mask]
                    for slot in killed_slots.tolist():
                        self._kill_slot(slot)
                    keep = ~kill_mask
                    idx = idx[keep]
                    w = w[keep]
                    cost_idx = cost_idx[keep]
                    factor = None
                    ub = float(max_reduce(w)) if w.shape[0] else 0.0
                else:
                    ub = true_max
            n_e = int(idx.shape[0]) - cap
            if n_e <= 0:
                break
            if add_reduce(w) >= n_e * slack:
                break
        self.total_augmentations += augmentations
        if idx.shape[0]:
            self._w[idx] = w

    def process_arrival_block_indexed(
        self,
        request_ids: Sequence[int],
        costs: np.ndarray,
        flat_edge_idxs: np.ndarray,
        offsets: np.ndarray,
    ) -> np.ndarray:
        """Fused record-free arrival loop: no per-arrival wrapper frames.

        Registration, the O(1) excess screens and the restore dispatch run
        inline over plain lists; only the augmentation arithmetic touches
        NumPy.  Exactly equivalent to per-arrival
        ``process_arrival_indexed(..., record=False)`` calls in order.
        """
        k = len(request_ids)
        fractions = np.empty(k, dtype=np.float64)
        if k == 0:
            return fractions
        fl = flat_edge_idxs.tolist()
        offs = offsets.tolist()
        cost_list = np.asarray(costs, dtype=np.float64).tolist()
        slot_of = self._slot
        ids = self._ids
        by_id = self._edge_idxs_by_id
        cap = self._cap
        edge_alive = self._edge_alive
        edge_requests = self._edge_requests
        for r in range(k):
            rid = request_ids[r]
            if rid in slot_of:
                raise ValueError(f"request {rid} already registered")
            self._ensure_slot_capacity()
            w_all = self._w
            slot = self._n
            self._n = slot + 1
            ids.append(rid)
            slot_of[rid] = slot
            cost = cost_list[r]
            if not cost > 0:
                raise ValueError(f"cost must be > 0, got {cost!r}")
            w_all[slot] = 0.0
            self._cost[slot] = cost
            self._alive[slot] = True
            path = fl[offs[r] : offs[r + 1]]
            by_id[rid] = tuple(path)
            for e in path:
                self._edge_append(e, slot)
                edge_alive[e] += 1
                requests = edge_requests[e]
                if requests is None:
                    edge_requests[e] = [rid]
                else:
                    requests.append(rid)
            for e in path:
                cap_e = cap[e]
                if edge_alive[e] - cap_e > 0:
                    self._restore_edge_norecord(e, cap_e)
            f = w_all[slot]
            fractions[r] = f if f < 1.0 else 1.0
        return fractions


def resolve_backend_name(spec: BackendSpec) -> str:
    """Normalise a backend spec (``None`` / name / :class:`EngineConfig`) to a name."""
    if spec is None:
        return EngineConfig().backend
    if isinstance(spec, EngineConfig):
        return spec.backend
    if isinstance(spec, str):
        return spec.strip().lower()
    raise TypeError(f"backend must be None, a name or an EngineConfig, got {spec!r}")


def resolve_record_flag(spec: BackendSpec, override: Optional[bool] = None) -> bool:
    """Resolve the ``record`` mode from an explicit override or an engine config.

    ``override`` wins when given; otherwise an :class:`EngineConfig` spec
    contributes its ``record`` field; plain names default to ``True`` (full
    diagnostics — the reference behaviour).
    """
    if override is not None:
        return bool(override)
    if isinstance(spec, EngineConfig):
        return bool(spec.record)
    return True


def make_weight_backend(
    spec: BackendSpec,
    capacities: Mapping[EdgeId, int],
    *,
    g: float,
    max_capacity: Optional[int] = None,
) -> WeightBackend:
    """Instantiate the weight backend selected by ``spec``.

    ``spec`` may be ``None`` (the default ``"python"`` reference backend), a
    registered backend name, or an :class:`EngineConfig` whose ``backend``
    field names one.
    """
    factory = WEIGHT_BACKENDS.get(resolve_backend_name(spec))
    return factory(capacities, g=g, max_capacity=max_capacity)
