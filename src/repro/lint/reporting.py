"""Text and JSON reporters for lint results.

Text output is one ``path:line: RPRxxx message`` per finding — the format
editors and CI log scrapers already understand.  JSON output carries a
``schema`` version like every other machine-readable payload in the repo
(checkpoints, wire frames, result rows), so downstream tooling can reject
shapes it does not know.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict

from .framework import LINT_RULES
from .runner import LintResult

__all__ = ["LINT_REPORT_SCHEMA", "report_text", "report_json", "result_to_dict"]

#: Version of the ``repro lint --json`` payload shape.
LINT_REPORT_SCHEMA = 1


def report_text(result: LintResult, out: IO[str]) -> None:
    for err in result.errors:
        print(f"error: {err}", file=out)
    for violation in result.violations:
        print(violation.format(), file=out)
    n = len(result.violations)
    noun = "violation" if n == 1 else "violations"
    print(
        f"repro lint: {n} {noun} in {result.files_checked} files "
        f"(rules: {', '.join(result.rules_run) or '<none>'})",
        file=out,
    )


def result_to_dict(result: LintResult) -> Dict[str, Any]:
    return {
        "schema": LINT_REPORT_SCHEMA,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "errors": list(result.errors),
        "violations": [v.to_dict() for v in result.violations],
    }


def report_json(result: LintResult, out: IO[str]) -> None:
    json.dump(result_to_dict(result), out, indent=2, sort_keys=True)
    out.write("\n")


def describe_rules() -> Dict[str, str]:
    """Rule id -> one-line summary, for ``repro list``'s ``[lint rules]``."""
    out: Dict[str, str] = {}
    for rule_id, cls in LINT_RULES.items():
        inv = ",".join(str(i) for i in cls.invariants)
        suffix = f" (invariant {inv})" if inv else ""
        out[rule_id] = f"{cls.summary}{suffix}"
    return out
