"""Inline suppression comments: ``# repro: allow[RPR001] reason...``.

A suppression silences findings of the named rule(s) on its own line.  It may
share the line with code (trailing comment) or sit alone, in which case it
applies to the next non-blank source line — handy when the flagged expression
is too long to fit a trailing comment.

Unused suppressions are themselves findings (reported as
:data:`~repro.lint.framework.UNUSED_SUPPRESSION_ID`): a stale ``allow``
comment claims an invariant exception that no longer exists, which is exactly
the drift the linter is for.  Only rules that actually ran count — running
``repro lint --rules RPR002`` must not flag every RPR001 suppression in the
tree as unused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from .framework import UNUSED_SUPPRESSION_ID, FileContext, Violation

__all__ = ["Suppression", "FileSuppressions", "parse_suppressions", "SuppressionError"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")
_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


class SuppressionError(ValueError):
    """Raised for malformed ``repro: allow`` comments (bad or empty rule ids)."""


@dataclass
class Suppression:
    """One ``allow`` comment: where it is and which rules it silences."""

    comment_line: int
    effective_line: int
    rule_ids: Tuple[str, ...]
    used: Set[str] = field(default_factory=set)


@dataclass
class FileSuppressions:
    """All suppressions in one file, indexed by the line they apply to."""

    suppressions: List[Suppression]
    _by_line: Dict[int, List[Suppression]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for sup in self.suppressions:
            self._by_line.setdefault(sup.effective_line, []).append(sup)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is allowed on ``line`` (and mark the use)."""
        hit = False
        for sup in self._by_line.get(line, ()):
            if rule_id in sup.rule_ids:
                sup.used.add(rule_id)
                hit = True
        return hit

    def unused(self, ran_rule_ids: Iterable[str], rel_path: str) -> List[Violation]:
        """Suppressions naming a rule that ran but never fired on their line."""
        ran = set(ran_rule_ids)
        out: List[Violation] = []
        for sup in self.suppressions:
            stale = [rid for rid in sup.rule_ids if rid in ran and rid not in sup.used]
            for rid in stale:
                out.append(
                    Violation(
                        rule_id=UNUSED_SUPPRESSION_ID,
                        path=rel_path,
                        line=sup.comment_line,
                        message=f"unused suppression: allow[{rid}] never matched a finding",
                    )
                )
        return out


def parse_suppressions(ctx: FileContext) -> FileSuppressions:
    """Extract ``repro: allow`` comments from a file via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps us honest about what is
    actually a comment: an ``allow`` inside a string literal is not a
    suppression.
    """
    comments: List[Tuple[int, str, bool]] = []  # (line, text, line_has_code)
    code_lines: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(ctx.source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        tokens = []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.string, False))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            for ln in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(ln)

    suppressions: List[Suppression] = []
    total_lines = ctx.source.count("\n") + 1
    for line_no, text, _ in comments:
        m = _ALLOW_RE.search(text)
        if m is None:
            continue
        raw_ids = [part.strip().upper() for part in m.group(1).split(",")]
        rule_ids = tuple(rid for rid in raw_ids if rid)
        if not rule_ids:
            raise SuppressionError(
                f"{ctx.rel_path}:{line_no}: empty repro: allow[] suppression"
            )
        for rid in rule_ids:
            if not _RULE_ID_RE.match(rid):
                raise SuppressionError(
                    f"{ctx.rel_path}:{line_no}: malformed rule id {rid!r} in "
                    f"repro: allow[...] (expected RPRxxx)"
                )
            if rid == UNUSED_SUPPRESSION_ID:
                raise SuppressionError(
                    f"{ctx.rel_path}:{line_no}: {UNUSED_SUPPRESSION_ID} "
                    f"(unused-suppression) cannot itself be suppressed"
                )
        if line_no in code_lines:
            effective = line_no
        else:
            # Standalone comment: applies to the next line that holds code.
            effective = line_no
            for ln in range(line_no + 1, total_lines + 1):
                if ln in code_lines:
                    effective = ln
                    break
        suppressions.append(
            Suppression(comment_line=line_no, effective_line=effective, rule_ids=rule_ids)
        )
    return FileSuppressions(suppressions)
