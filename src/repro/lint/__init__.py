"""repro lint — AST rules that machine-enforce the determinism contract.

See :mod:`repro.lint.framework` for the rule model and
``ARCHITECTURE.md`` ("Static analysis") for the invariant → rule map.
"""

from .framework import (
    FileContext,
    LintConfig,
    LintRule,
    LINT_RULES,
    UNUSED_SUPPRESSION_ID,
    Violation,
)
from .reporting import LINT_REPORT_SCHEMA, describe_rules, report_json, report_text
from .runner import LintResult, collect_files, run_lint
from .suppressions import SuppressionError, parse_suppressions

from . import rules  # noqa: F401  (registers RPR001..RPR006 in LINT_RULES)

__all__ = [
    "FileContext",
    "LintConfig",
    "LintRule",
    "LINT_RULES",
    "LINT_REPORT_SCHEMA",
    "LintResult",
    "SuppressionError",
    "UNUSED_SUPPRESSION_ID",
    "Violation",
    "collect_files",
    "describe_rules",
    "parse_suppressions",
    "report_json",
    "report_text",
    "run_lint",
]
