"""Core types for the repro-specific AST lint pass.

The linter enforces, at parse time, the determinism invariants that
ARCHITECTURE.md states in prose and that the equivalence test suites can only
catch after the fact: frozenset iteration order, seeded randomness, registry
mediation, export/restore symmetry, schema versioning discipline and the
one-reply-per-command pipe protocol.

Every rule is a :class:`LintRule` subclass registered under an ``RPRxxx`` id
in :data:`LINT_RULES` — the same strict :class:`~repro.engine.registry.Registry`
the engine uses for backends and algorithms, so duplicate ids and typo'd
``--rules`` arguments fail loudly with the known-keys list.

A rule sees one file at a time through :class:`FileContext` (source, AST,
path) and reports :class:`Violation` records; rules that need whole-project
state (RPR005's fingerprints) additionally override
:meth:`LintRule.check_project`, which runs once per invocation after the
per-file walks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.engine.registry import Registry

__all__ = [
    "Violation",
    "FileContext",
    "LintConfig",
    "LintRule",
    "LINT_RULES",
    "UNUSED_SUPPRESSION_ID",
]

#: Pseudo rule-id under which unused allow-comments are reported.  Not in
#: the registry (it is produced by the runner, not a rule) and deliberately
#: not suppressible — an allow-comment for it would itself always be unused.
UNUSED_SUPPRESSION_ID = "RPR000"


@dataclass(frozen=True)
class Violation:
    """One finding: rule id, location and a human-readable message."""

    rule_id: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about a single source file.

    ``rel_path`` is the path as reported in findings (relative to the lint
    root when possible, so output is stable across machines); ``posix_path``
    is the same with ``/`` separators, which rules use for location-scoped
    checks ("only in repro/experiments/").
    """

    path: Path
    rel_path: str
    source: str
    tree: ast.Module

    @property
    def posix_path(self) -> str:
        return self.rel_path.replace("\\", "/")


@dataclass
class LintConfig:
    """Run-wide configuration shared by the runner and project-level rules.

    ``fingerprints_path`` / ``schema_specs`` exist so tests can point RPR005
    at a temp tree instead of the installed package; ``extra`` is a free-form
    bag for future rule knobs.
    """

    root: Path
    fingerprints_path: Optional[Path] = None
    schema_specs: Optional[Sequence[Any]] = None
    update_fingerprints: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)


class LintRule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``summary`` and override :meth:`check_file`
    (per file) and/or :meth:`check_project` (once per run, after all files).
    Both are generators of :class:`Violation`.
    """

    #: ``RPRxxx`` identifier; must match the registry key.
    rule_id: str = ""
    #: One-line description shown by ``repro list lint``.
    summary: str = ""
    #: ARCHITECTURE.md invariant numbers this rule enforces.
    invariants: Sequence[int] = ()

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        return iter(())

    def check_project(
        self, files: Sequence[FileContext], config: LintConfig
    ) -> Iterator[Violation]:
        return iter(())

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


#: All lint rules, keyed by ``RPRxxx`` id (case-insensitive lookup normalises
#: to upper case so ``--rules rpr001`` works).  Strict like every other
#: registry: double registration raises, unknown ids list the known ones.
LINT_RULES: Registry[LintRule] = Registry("lint rule", normalize=str.upper)


def iter_call_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a call target (``np.random.default_rng`` -> that string).

    Returns ``None`` for targets that are not plain name/attribute chains
    (subscripts, calls-of-calls, lambdas).  Shared by several rules.
    """
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
