"""RPR004: export_state / restore_state must cover every mutable attribute.

Checkpoint fidelity (ARCHITECTURE.md invariant 7) means ``export_state``
captures — and ``restore_state`` reinstates — everything that changes as
requests stream through.  The historical failure mode is adding
``self._new_cache = {}`` to ``__init__`` during a feature PR and forgetting
one (or both) of the state methods; the checkpoint round-trip tests only
catch it if a trial happens to populate the new field before the snapshot.

For every class that defines *both* methods, the rule collects mutable-
looking attributes assigned in ``__init__`` (list/dict/set displays and
comprehensions, and calls to the stdlib container constructors) and requires
each to appear in both method bodies — as a ``self.<name>`` access or as the
string key ``"<name>"`` / ``"name"``-without-underscore (state dicts key by
the public name).  Construction-time configuration that is deliberately not
part of streamed state goes in a class-level allowlist::

    _LINT_STATE_EXEMPT = frozenset({"_original_capacities"})

A class defining only one of the two methods is itself a finding: a state
protocol with one side missing cannot round-trip.

Known limitation (documented, accepted): the check is per-class — methods
inherited from a base class are not analysed against subclass ``__init__``
attributes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation

__all__ = ["StateExportDriftRule"]

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list", "dict", "set", "defaultdict", "OrderedDict", "deque",
        "Counter", "bytearray",
    }
)
_EXEMPT_ATTR = "_LINT_STATE_EXEMPT"
_STATE_METHODS = ("export_state", "restore_state")


def _is_mutable_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_mutable_init_attrs(init: ast.FunctionDef) -> List[ast.Attribute]:
    """``self.x = <mutable>`` assignments, in source order, deduplicated."""
    seen: Set[str] = set()
    out: List[ast.Attribute] = []
    for node in ast.walk(init):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not _is_mutable_expr(value):
            continue
        for target in targets:
            attr = _self_attr_target(target)
            if attr is not None and attr not in seen:
                seen.add(attr)
                assert isinstance(target, ast.Attribute)
                out.append(target)
    return out


def _names_mentioned(method: ast.FunctionDef) -> Set[str]:
    """Attribute names a state method touches (self.x or the string "x")."""
    mentioned: Set[str] = set()
    for node in ast.walk(method):
        attr = _self_attr_target(node)
        if attr is not None:
            mentioned.add(attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentioned.add(node.value)
            mentioned.add("_" + node.value)
    return mentioned


def _exempt_names(cls: ast.ClassDef) -> Set[str]:
    """String entries of a class-level ``_LINT_STATE_EXEMPT`` assignment."""
    exempt: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            value: Optional[ast.expr] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names, value = [stmt.target.id], stmt.value
        else:
            continue
        if _EXEMPT_ATTR not in names or value is None:
            continue
        container = value
        if isinstance(container, ast.Call) and container.args:
            container = container.args[0]  # frozenset({...})
        if isinstance(container, (ast.Set, ast.List, ast.Tuple)):
            for elt in container.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    exempt.add(elt.value)
    return exempt


@LINT_RULES.register("RPR004")
class StateExportDriftRule(LintRule):
    rule_id = "RPR004"
    summary = "mutable __init__ attribute missing from export_state/restore_state"
    invariants = (7,)

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in _STATE_METHODS + ("__init__",)
            }
            has_export = "export_state" in methods
            has_restore = "restore_state" in methods
            if not has_export and not has_restore:
                continue
            if has_export != has_restore:
                present = "export_state" if has_export else "restore_state"
                missing = "restore_state" if has_export else "export_state"
                yield self.violation(
                    ctx,
                    methods[present],
                    f"class {node.name} defines {present} but not {missing}; "
                    f"checkpoint state cannot round-trip with one side missing",
                )
                continue
            init = methods.get("__init__")
            if init is None or not isinstance(init, ast.FunctionDef):
                continue
            exempt = _exempt_names(node)
            export_names = _names_mentioned(methods["export_state"])
            restore_names = _names_mentioned(methods["restore_state"])
            for target in _collect_mutable_init_attrs(init):
                attr = target.attr
                if attr in exempt:
                    continue
                missing_in = [
                    m
                    for m, names in (
                        ("export_state", export_names),
                        ("restore_state", restore_names),
                    )
                    if attr not in names and attr.lstrip("_") not in names
                ]
                if missing_in:
                    yield self.violation(
                        ctx,
                        target,
                        f"mutable attribute self.{attr} (class {node.name}) is "
                        f"not referenced in {' or '.join(missing_in)}; include "
                        f"it in the state payload or add it to "
                        f"{_EXEMPT_ATTR} with a reason",
                    )
