"""RPR002: unseeded randomness inside the library.

Every random draw in ``src/repro`` must flow through an explicitly seeded
generator (ARCHITECTURE.md invariant 3; ``repro.utils.rng.as_generator`` is
the funnel).  Global-state randomness — ``random.random()``,
``np.random.shuffle(...)``, an argument-less ``default_rng()`` — produces
different streams per process and per import order, which breaks checkpoint
resume, shard equivalence and trace replay, and is a hard blocker for the
local-computation query mode whose pseudo-random orderings must be replayable
with zero hidden entropy.

Flagged:

* any call through the ``random`` module's global instance
  (``random.random()``, ``random.shuffle(...)`` — alias-aware:
  ``import random as rnd`` is tracked, as is ``from random import shuffle``),
* ``random.Random()`` / ``random.SystemRandom()`` with no seed argument,
* calls through NumPy's legacy global state (``np.random.rand`` etc.),
* ``default_rng()`` / ``RandomState()`` / ``PCG64()`` / ``SeedSequence()``
  with no argument or an explicit ``None`` seed.

Not flagged: any of the constructors above with a non-``None`` argument
(seeded or deliberately forwarding a caller-supplied ``random_state``
variable), and ``random.Random(x)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation, iter_call_name

__all__ = ["UnseededRandomnessRule"]

#: Constructors that are fine when seeded, flagged when their first argument
#: is missing or the literal ``None``.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "default_rng", "RandomState", "PCG64", "SeedSequence", "Random",
        "Generator", "Philox", "MT19937", "SFC64",
    }
)
#: ``random``-module functions that mutate/read the hidden global instance.
_RANDOM_GLOBAL_FNS = frozenset(
    {
        "random", "uniform", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "triangular", "seed", "getrandbits",
        "binomialvariate", "setstate", "getstate",
    }
)


def _first_seed_arg_missing_or_none(node: ast.Call) -> bool:
    if node.args:
        return isinstance(node.args[0], ast.Constant) and node.args[0].value is None
    for kw in node.keywords:
        if kw.arg in ("seed", "x"):  # default_rng(seed=...), Random(x=...)
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
        if kw.arg is None:  # **kwargs — assume the caller knows what they do
            return False
    return True


@LINT_RULES.register("RPR002")
class UnseededRandomnessRule(LintRule):
    rule_id = "RPR002"
    summary = "unseeded randomness; route draws through a seeded Generator"
    invariants = (3,)

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        random_aliases: Set[str] = set()  # names bound to the random module
        np_random_aliases: Set[str] = set()  # names bound to numpy.random
        from_random_fns: Dict[str, str] = {}  # local name -> random.<fn>

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name == "numpy":
                        np_random_aliases.add(f"{alias.asname or 'numpy'}.random")
                    elif alias.name == "numpy.random":
                        np_random_aliases.add(alias.asname or "numpy.random")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        from_random_fns[alias.asname or alias.name] = alias.name
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(alias.asname or "random")

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = iter_call_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            head, tail = ".".join(parts[:-1]), parts[-1]

            # random.<fn>() through the module's hidden global instance.
            if head in random_aliases:
                if tail in ("Random", "SystemRandom"):
                    if tail == "SystemRandom" or _first_seed_arg_missing_or_none(node):
                        yield self.violation(
                            ctx,
                            node,
                            f"{name}() without a seed draws hidden entropy; "
                            f"pass an explicit seed or a derived SeedSequence",
                        )
                elif tail in _RANDOM_GLOBAL_FNS:
                    yield self.violation(
                        ctx,
                        node,
                        f"{name}() uses the random module's global state; "
                        f"use a seeded random.Random or numpy Generator",
                    )
                continue

            # from random import shuffle; shuffle(...) — same global state.
            if head == "" and tail in from_random_fns:
                origin = from_random_fns[tail]
                if origin in _RANDOM_GLOBAL_FNS:
                    yield self.violation(
                        ctx,
                        node,
                        f"{tail}() (= random.{origin}) uses the random module's "
                        f"global state; use a seeded generator",
                    )
                elif origin in ("Random", "SystemRandom") and (
                    origin == "SystemRandom" or _first_seed_arg_missing_or_none(node)
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"{tail}() (= random.{origin}) without a seed draws "
                        f"hidden entropy; pass an explicit seed",
                    )
                continue

            # numpy.random global-state functions and unseeded constructors.
            if head in np_random_aliases:
                if tail in _SEEDABLE_CONSTRUCTORS:
                    if _first_seed_arg_missing_or_none(node):
                        yield self.violation(
                            ctx,
                            node,
                            f"{name}() without a seed is fresh OS entropy per "
                            f"process; pass a seed (see repro.utils.rng.as_generator)",
                        )
                else:
                    yield self.violation(
                        ctx,
                        node,
                        f"{name}() uses numpy's legacy global RandomState; "
                        f"use a seeded Generator instead",
                    )
                continue

            # from numpy.random import default_rng; default_rng() bare.
            if (
                head == ""
                and tail in _SEEDABLE_CONSTRUCTORS
                and tail != "Random"
                and _first_seed_arg_missing_or_none(node)
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{tail}() without a seed is fresh OS entropy per process; "
                    f"pass a seed (see repro.utils.rng.as_generator)",
                )
