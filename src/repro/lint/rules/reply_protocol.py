"""RPR006: one reply per command, on every control-flow branch.

The shard pipe protocol and the network service both rely on strict
request/reply pairing (ARCHITECTURE.md invariant 9): the parent pipelines
submissions and drains with a barrier, so a worker path that sends zero
replies deadlocks the coordinator and a path that sends two desynchronises
every reply after it — both far from the line that caused them.

The rule analyses reply-protocol functions (name ``_handle_*`` or
``*_worker``) that send at least one reply somewhere (functions that never
reply are bookkeeping, not protocol handlers).  A *reply* is a call through
an attribute named ``send``, ``_send`` or ``put_nowait`` (queueing a work
item defers the reply to the dispatcher, which owns it from then on).

The analysis unit is the body of the first ``while True:`` command loop if
the function has one (the pre-loop handshake is its own exchange), else the
whole function body.  Each unit is abstractly interpreted into the set of
possible reply counts per path — saturating at 2, tracking fallthrough /
return / break / continue / raise outcomes — and every completed path must
count exactly 1.  Approximations, chosen to match how these handlers fail
in practice:

* an exception is assumed to occur *before* any reply in a ``try`` body, so
  an ``except`` handler's count starts from the try entry;
* a path that escapes the unit by an uncaught ``raise`` is exempt (the
  caller or process boundary owns it);
* an ``except`` clause catching only peer-gone errors (``BrokenPipeError``,
  ``ConnectionResetError``, ``EOFError``, ``OSError``, ...) is exempt — the
  pipe is dead, there is no one to reply to.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from ..framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation

__all__ = ["ReplyProtocolRule"]

_REPLY_ATTRS = frozenset({"send", "_send", "put_nowait"})
_PEER_GONE = frozenset(
    {
        "BrokenPipeError",
        "ConnectionResetError",
        "ConnectionAbortedError",
        "ConnectionError",
        "EOFError",
        "OSError",
    }
)

# Abstract path state: (reply count saturated at 2, outcome).
_FALL = "fall"
_RETURN = "return"
_BREAK = "break"
_CONTINUE = "continue"
_RAISE = "raise"
_EXEMPT = "exempt"
State = Tuple[int, str]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _sat(n: int) -> int:
    return min(n, 2)


def _replies_in(node: ast.AST) -> int:
    """Reply calls syntactically inside ``node`` (nested defs excluded)."""
    count = 0
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if cur is not node and isinstance(cur, _FUNC_NODES + (ast.Lambda,)):
            continue
        if (
            isinstance(cur, ast.Call)
            and isinstance(cur.func, ast.Attribute)
            and cur.func.attr in _REPLY_ATTRS
        ):
            count += 1
        stack.extend(ast.iter_child_nodes(cur))
    return _sat(count)


def _handler_is_peer_gone(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for t in types:
        if isinstance(t, ast.Name):
            names.append(t.id)
        elif isinstance(t, ast.Attribute):
            names.append(t.attr)
        else:
            return False
    return bool(names) and all(n in _PEER_GONE for n in names)


def _eval_stmts(stmts: Sequence[ast.stmt]) -> Set[State]:
    states: Set[State] = {(0, _FALL)}
    for stmt in stmts:
        nxt: Set[State] = set()
        for count, outcome in states:
            if outcome != _FALL:
                nxt.add((count, outcome))
                continue
            for delta, new_outcome in _eval_stmt(stmt):
                nxt.add((_sat(count + delta), new_outcome))
        states = nxt
    return states


def _eval_stmt(stmt: ast.stmt) -> Set[State]:
    if isinstance(stmt, ast.Return):
        delta = _replies_in(stmt.value) if stmt.value is not None else 0
        return {(delta, _RETURN)}
    if isinstance(stmt, ast.Raise):
        return {(0, _RAISE)}
    if isinstance(stmt, ast.Break):
        return {(0, _BREAK)}
    if isinstance(stmt, ast.Continue):
        return {(0, _CONTINUE)}
    if isinstance(stmt, ast.If):
        base = _replies_in(stmt.test)
        out: Set[State] = set()
        for branch in (stmt.body, stmt.orelse):
            for count, outcome in _eval_stmts(branch):
                out.add((_sat(base + count), outcome))
        return out
    if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
        header = _replies_in(
            stmt.test if isinstance(stmt, ast.While) else stmt.iter
        )
        out = {(header, _FALL)}  # zero-iteration path
        for count, outcome in _eval_stmts(stmt.body + stmt.orelse):
            if outcome in (_FALL, _BREAK, _CONTINUE):
                out.add((_sat(header + count), _FALL))
                if count > 0:
                    out.add((2, _FALL))  # loops may repeat a replying body
            else:
                out.add((_sat(header + count), outcome))
        return out
    if isinstance(stmt, (ast.Try, *((ast.TryStar,) if hasattr(ast, "TryStar") else ()))):
        out = set()
        body_states = _eval_stmts(list(stmt.body) + list(stmt.orelse))
        for count, outcome in body_states:
            if outcome == _RAISE and stmt.handlers:
                continue  # represented by the handler paths below
            out.add((count, outcome))
        for handler in stmt.handlers:
            if _handler_is_peer_gone(handler):
                out.add((0, _EXEMPT))
                continue
            # Approximation: the exception fired before any reply in the
            # body, so the handler's own replies are the whole delta.
            out |= _eval_stmts(handler.body)
        if stmt.finalbody:
            fin = _eval_stmts(stmt.finalbody)
            combined: Set[State] = set()
            for count, outcome in out:
                for fcount, foutcome in fin:
                    final_outcome = outcome if foutcome == _FALL else foutcome
                    combined.add((_sat(count + fcount), final_outcome))
            out = combined
        return out
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        base = _sat(sum(_replies_in(item.context_expr) for item in stmt.items))
        return {(_sat(base + c), o) for c, o in _eval_stmts(stmt.body)}
    if isinstance(stmt, _FUNC_NODES + (ast.ClassDef,)):
        return {(0, _FALL)}
    return {(_replies_in(stmt), _FALL)}


def _find_command_loop(func: ast.AST) -> Sequence[ast.stmt]:
    """Body of the first ``while True`` loop, else the function body."""
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop(0)
        if node is not func and isinstance(node, _FUNC_NODES + (ast.Lambda,)):
            continue
        if (
            isinstance(node, ast.While)
            and isinstance(node.test, ast.Constant)
            and node.test.value is True
        ):
            return node.body
        stack.extend(ast.iter_child_nodes(node))
    return func.body  # type: ignore[attr-defined]


def _is_protocol_function(name: str) -> bool:
    return name.startswith("_handle") or name.endswith("_worker")


@LINT_RULES.register("RPR006")
class ReplyProtocolRule(LintRule):
    rule_id = "RPR006"
    summary = "command-handler path sending zero or multiple replies"
    invariants = (9,)

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNC_NODES):
                continue
            if not _is_protocol_function(node.name):
                continue
            if _replies_in(node) == 0:
                continue  # bookkeeping helper, not a protocol handler
            unit = _find_command_loop(node)
            seen_messages: Set[str] = set()
            for count, outcome in _eval_stmts(list(unit)):
                if outcome in (_RAISE, _EXEMPT):
                    continue
                if count == 1:
                    continue
                problem = (
                    "sends no reply (coordinator would deadlock)"
                    if count == 0
                    else "can send more than one reply (desynchronises every later reply)"
                )
                message = f"a control-flow path through {node.name} {problem}"
                if message not in seen_messages:
                    seen_messages.add(message)
                    yield self.violation(ctx, node, message)
