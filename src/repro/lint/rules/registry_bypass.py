"""RPR003: experiments/CLI must resolve components through the registries.

The registries (ARCHITECTURE.md invariant 2) are what make ``--backend
numpy`` / ``--algorithm doubling`` swap whole substrates without code edits,
and what keep checkpoint/service payloads referencing components by *name*.
An experiment or CLI path that instantiates ``FractionalAdmissionControl``
directly bypasses key normalisation, the uniform builder signature and the
duplicate/unknown-key errors — and silently stops honouring the user's
``--algorithm`` choice.

The rule fires only in registry-client locations (``repro/experiments/``,
``repro/cli.py``, ``examples/``); the defining modules and tests construct
the classes directly by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation, iter_call_name

__all__ = ["RegistryBypassRule"]

#: Registered component classes that clients must obtain via registry lookup.
PROTECTED_CLASSES = frozenset(
    {
        "FractionalAdmissionControl",
        "RandomizedAdmissionControl",
        "DoublingAdmissionControl",
        "DoublingFractionalAdmissionControl",
        "OnlineSetCoverViaAdmissionControl",
        "BicriteriaOnlineSetCover",
        "ExponentialBenefitAdmission",
        "KeepExpensive",
        "GreedySwap",
        "RejectWhenFull",
        "CheapestSetOnline",
        "GreedyDensityOnline",
        "RandomSetOnline",
        "ThresholdPreemption",
        "PythonWeightBackend",
        "NumpyWeightBackend",
        "NumbaWeightBackend",
    }
)

#: Path fragments (posix) identifying registry-*client* code.
_CLIENT_PATH_MARKERS = ("experiments/", "examples/")
_CLIENT_FILENAMES = ("cli.py",)


def _is_client_path(posix_path: str) -> bool:
    if any(marker in posix_path for marker in _CLIENT_PATH_MARKERS):
        return True
    return posix_path.split("/")[-1] in _CLIENT_FILENAMES


@LINT_RULES.register("RPR003")
class RegistryBypassRule(LintRule):
    rule_id = "RPR003"
    summary = "experiments/CLI constructing components directly; use the registries"
    invariants = (2,)

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        if not _is_client_path(ctx.posix_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = iter_call_name(node.func)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf in PROTECTED_CLASSES:
                yield self.violation(
                    ctx,
                    node,
                    f"direct construction of {leaf}; resolve it through the "
                    f"component registries (ADMISSION_ALGORITHMS / "
                    f"SETCOVER_ALGORITHMS / WEIGHT_BACKENDS) so --algorithm/"
                    f"--backend selection keeps working",
                )
