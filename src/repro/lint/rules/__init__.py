"""Rule modules; importing this package registers every rule in LINT_RULES."""

from . import (  # noqa: F401  (imported for registration side effects)
    ordering,
    randomness,
    registry_bypass,
    reply_protocol,
    schema_drift,
    state_drift,
)
