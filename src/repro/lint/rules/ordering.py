"""RPR001: order-sensitive iteration over frozensets.

A frozenset's iteration order depends on element hashes, which for strings
vary with PYTHONHASHSEED — so a loop over ``request.edges`` processes edges
in a different order in every process, and any order-sensitive consumer
(weight updates, trace serialisation, LP row construction) silently diverges
between a live run and a checkpoint-resumed or replayed one.  The repo's
contract (ARCHITECTURE.md invariants 6/7) is: order-sensitive code iterates
``request.ordered_edges``; the frozenset is for membership tests and set
algebra only.

The rule flags

* ``for e in <x>.edges`` and ``.edges`` as a comprehension iterable,
* ``.edges`` passed as the first argument to order-exposing callables
  (``sorted``, ``list``, ``tuple``, ``enumerate``, ``iter``, ``reversed``,
  ``min``/``max`` with ties broken by order is fine, so those are excluded),
* direct ``for``/comprehension iteration over a literal ``set(...)`` /
  ``frozenset(...)`` call (``sorted(set(xs))`` is fine — sorting restores a
  canonical order for comparable elements).

It deliberately does **not** flag membership (``e in r.edges``), ``len``,
set union/intersection, or ``RequestSequence.edges()`` — the method call is
an ``ast.Call``, not an attribute access, and returns a set used for set
algebra.  ``sorted(x.edges)`` is still flagged: with mixed or non-comparable
edge ids it is not total, and the canonical repr-sort already exists as
``ordered_edges``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation

__all__ = ["FrozensetIterationRule"]

#: Callables whose first positional argument's iteration order leaks into the
#: result order.
_ORDER_EXPOSING_CALLS = frozenset(
    {"sorted", "list", "tuple", "enumerate", "iter", "reversed"}
)
#: Attribute names treated as "a frozenset the determinism contract covers".
_FROZENSET_ATTRS = frozenset({"edges"})
#: Constructor calls producing unordered sets.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def _is_flagged_set_expr(node: ast.AST) -> str:
    """Return a short description if ``node`` evaluates to an unordered set."""
    if isinstance(node, ast.Attribute) and node.attr in _FROZENSET_ATTRS:
        return f".{node.attr}"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_CONSTRUCTORS
    ):
        return f"{node.func.id}(...)"
    return ""


@LINT_RULES.register("RPR001")
class FrozensetIterationRule(LintRule):
    rule_id = "RPR001"
    summary = "order-sensitive iteration over frozensets; use Request.ordered_edges"
    invariants = (6, 7)

    def check_file(self, ctx: FileContext, config: LintConfig) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                desc = _is_flagged_set_expr(node.iter)
                if desc:
                    yield self.violation(
                        ctx,
                        node.iter,
                        f"iterating {desc} directly; frozenset order varies with "
                        f"PYTHONHASHSEED — use ordered_edges (or sort explicitly)",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    desc = _is_flagged_set_expr(gen.iter)
                    if desc:
                        yield self.violation(
                            ctx,
                            gen.iter,
                            f"comprehension over {desc}; frozenset order varies with "
                            f"PYTHONHASHSEED — use ordered_edges (or sort explicitly)",
                        )
            elif isinstance(node, ast.Call):
                func_name = node.func.id if isinstance(node.func, ast.Name) else None
                if func_name in _ORDER_EXPOSING_CALLS and node.args:
                    # Only attribute-backed frozensets here: sorted(set(xs)) is
                    # deterministic for comparable elements, but .edges holds
                    # arbitrary hashables whose only canonical order is the
                    # repr-sort ordered_edges already provides.
                    arg = node.args[0]
                    desc = (
                        _is_flagged_set_expr(arg)
                        if isinstance(arg, ast.Attribute)
                        else ""
                    )
                    if desc:
                        yield self.violation(
                            ctx,
                            node,
                            f"{func_name}() over {desc} exposes hash-dependent order; "
                            f"use ordered_edges (already canonically sorted)",
                        )
