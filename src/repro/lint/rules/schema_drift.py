"""RPR005: versioned payload shapes must not drift silently.

Three payload families cross process or machine boundaries and carry an
explicit schema version so old readers can reject shapes they do not know
(ARCHITECTURE.md invariants 7/8/10):

* checkpoints — ``CHECKPOINT_SCHEMA`` in ``instances/serialize.py``,
* service wire frames — ``SERVICE_SCHEMA`` in ``service/wire.py``,
* result rows — ``RESULT_SCHEMA`` in ``api/results.py``.

The version only protects anyone if it actually moves when the shape does.
This rule extracts each payload's field set straight from the AST of its
designated construction sites (dict-literal keys plus ``payload["k"] = ...``
subscript assignments), fingerprints ``(version, sorted fields)`` with
SHA-256 and compares against the checked-in ``fingerprints.json``:

* fields changed, version unchanged → hard failure, and
  ``--update-fingerprints`` *refuses* to paper over it — bump the version;
* fields changed *with* a version bump (or a fresh entry) → failure telling
  you to run ``repro lint --update-fingerprints``, which rewrites the file;
* designated scope or version constant missing → failure (a refactor moved
  the payload out from under the check; update the spec below).

For the service family, ``wire.py`` declares the machine-readable
``FRAME_FIELDS`` (op -> permitted field names).  Beyond fingerprinting that
table, the rule checks every frame-shaped dict literal in ``repro/service/``
(any dict with a constant ``"op"`` key) against it: unknown op, or a field
outside the declared set plus the version key ``"v"``, fails lint.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation

__all__ = ["SchemaDriftRule", "SchemaSpec", "DEFAULT_SCHEMA_SPECS", "FINGERPRINTS_FILENAME"]

FINGERPRINTS_FILENAME = "fingerprints.json"
#: Version of the fingerprints.json container itself.
FINGERPRINTS_SCHEMA = 1


@dataclass(frozen=True)
class SchemaSpec:
    """One versioned payload family.

    ``scopes`` entries are ``(kind, posix_rel_path, dotted_name)`` where
    ``kind`` is ``"func"`` (fields = dict keys + subscript-assign keys inside
    the function/method body) or ``"const"`` (a module-level ``name = {op:
    (fields...)}`` table; fields = ``op`` and ``op.field`` entries).
    """

    name: str
    version_file: str
    version_constant: str
    scopes: Tuple[Tuple[str, str, str], ...]


DEFAULT_SCHEMA_SPECS: Tuple[SchemaSpec, ...] = (
    SchemaSpec(
        name="checkpoint",
        version_file="instances/serialize.py",
        version_constant="CHECKPOINT_SCHEMA",
        scopes=(
            ("func", "instances/serialize.py", "request_to_state"),
            ("func", "engine/streaming.py", "StreamingSession.checkpoint"),
            ("func", "engine/streaming.py", "ShardedStreamRouter.checkpoint"),
            ("func", "engine/shards.py", "ProcessShardPool.checkpoint"),
        ),
    ),
    SchemaSpec(
        name="service",
        version_file="service/wire.py",
        version_constant="SERVICE_SCHEMA",
        scopes=(("const", "service/wire.py", "FRAME_FIELDS"),),
    ),
    SchemaSpec(
        name="result",
        version_file="api/results.py",
        version_constant="RESULT_SCHEMA",
        scopes=(("func", "api/results.py", "ResultRow.to_dict"),),
    ),
)


def _find_module(files: Sequence[FileContext], rel: str) -> Optional[FileContext]:
    for ctx in files:
        if ctx.posix_path == rel or ctx.posix_path.endswith("/" + rel):
            return ctx
    return None


def _module_int_constant(tree: ast.Module, name: str) -> Optional[int]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value
    return None


def _resolve_function(tree: ast.Module, dotted: str) -> Optional[ast.FunctionDef]:
    parts = dotted.split(".")
    body: Sequence[ast.stmt] = tree.body
    for i, part in enumerate(parts):
        found = None
        for node in body:
            if isinstance(node, ast.ClassDef) and node.name == part and i < len(parts) - 1:
                found = node
                body = node.body
                break
            if isinstance(node, ast.FunctionDef) and node.name == part and i == len(parts) - 1:
                return node
        if found is None and i < len(parts) - 1:
            return None
    return None


def _fields_from_function(func: ast.FunctionDef) -> Set[str]:
    fields: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    fields.add(key.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    fields.add(target.slice.value)
    return fields


def _frame_table(tree: ast.Module, name: str) -> Optional[Dict[str, Tuple[str, ...]]]:
    """Parse a module-level ``name = {"op": ("field", ...), ...}`` table."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        table: Dict[str, Tuple[str, ...]] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            entries: List[str] = []
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        entries.append(elt.value)
            table[key.value] = tuple(entries)
        return table
    return None


def _fields_from_const(tree: ast.Module, name: str) -> Optional[Set[str]]:
    table = _frame_table(tree, name)
    if table is None:
        return None
    fields: Set[str] = set()
    for op, op_fields in table.items():
        fields.add(op)
        for f in op_fields:
            fields.add(f"{op}.{f}")
    return fields


def fingerprint(version: int, fields: Set[str]) -> str:
    payload = json.dumps({"version": version, "fields": sorted(fields)}, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@LINT_RULES.register("RPR005")
class SchemaDriftRule(LintRule):
    rule_id = "RPR005"
    summary = "schema payload fields changed without a version bump"
    invariants = (7, 8, 10)

    def check_project(
        self, files: Sequence[FileContext], config: LintConfig
    ) -> Iterator[Violation]:
        specs: Sequence[SchemaSpec] = (
            config.schema_specs if config.schema_specs is not None else DEFAULT_SCHEMA_SPECS
        )
        fp_path = config.fingerprints_path
        if fp_path is None:
            fp_path = config.root / "lint" / FINGERPRINTS_FILENAME

        current: Dict[str, Dict[str, object]] = {}
        any_spec_applies = False
        for spec in specs:
            version_ctx = _find_module(files, spec.version_file)
            if version_ctx is None:
                # The spec's module is not in this lint run (e.g. linting a
                # single file); skip rather than fail on partial runs.
                continue
            any_spec_applies = True
            version = _module_int_constant(version_ctx.tree, spec.version_constant)
            if version is None:
                yield Violation(
                    self.rule_id,
                    version_ctx.rel_path,
                    1,
                    f"schema family {spec.name!r}: version constant "
                    f"{spec.version_constant} not found as a module-level int",
                )
                continue
            fields: Set[str] = set()
            broken = False
            for kind, rel, dotted in spec.scopes:
                scope_ctx = _find_module(files, rel)
                if scope_ctx is None:
                    yield Violation(
                        self.rule_id,
                        version_ctx.rel_path,
                        1,
                        f"schema family {spec.name!r}: payload scope {rel}::{dotted} "
                        f"is not under the lint root; update the schema spec",
                    )
                    broken = True
                    continue
                if kind == "func":
                    func = _resolve_function(scope_ctx.tree, dotted)
                    if func is None:
                        yield Violation(
                            self.rule_id,
                            scope_ctx.rel_path,
                            1,
                            f"schema family {spec.name!r}: function {dotted} not "
                            f"found; the payload moved — update the schema spec",
                        )
                        broken = True
                        continue
                    fields |= _fields_from_function(func)
                else:
                    const_fields = _fields_from_const(scope_ctx.tree, dotted)
                    if const_fields is None:
                        yield Violation(
                            self.rule_id,
                            scope_ctx.rel_path,
                            1,
                            f"schema family {spec.name!r}: table {dotted} not found "
                            f"or not a literal dict of string tuples",
                        )
                        broken = True
                        continue
                    fields |= const_fields
            if broken:
                continue
            current[spec.name] = {
                "version": version,
                "fields": sorted(fields),
                "fingerprint": fingerprint(version, fields),
            }

        if any_spec_applies:
            yield from self._compare(current, fp_path, config.update_fingerprints)
        yield from self._check_frames(files, specs)

    # -- fingerprint comparison -------------------------------------------
    def _compare(
        self, current: Dict[str, Dict[str, object]], fp_path: Path, updating: bool
    ) -> Iterator[Violation]:
        stored: Dict[str, Dict[str, object]] = {}
        if fp_path.exists():
            try:
                doc = json.loads(fp_path.read_text(encoding="utf-8"))
                stored = dict(doc.get("entries", {}))
            except (json.JSONDecodeError, OSError) as exc:
                yield Violation(
                    self.rule_id, str(fp_path), 1, f"unreadable fingerprints file: {exc}"
                )
                return

        updatable = True
        for name, entry in sorted(current.items()):
            old = stored.get(name)
            if old is None:
                if not updating:
                    yield Violation(
                        self.rule_id,
                        str(fp_path),
                        1,
                        f"schema family {name!r} has no checked-in fingerprint; "
                        f"run `repro lint --update-fingerprints` and commit the result",
                    )
                continue
            same_fields = list(old.get("fields", [])) == entry["fields"]
            same_version = old.get("version") == entry["version"]
            if same_fields and same_version:
                continue
            if not same_fields and same_version:
                added = sorted(set(entry["fields"]) - set(old.get("fields", [])))  # type: ignore[arg-type]
                removed = sorted(set(old.get("fields", [])) - set(entry["fields"]))  # type: ignore[arg-type]
                delta = ", ".join(
                    (["+" + f for f in added] + ["-" + f for f in removed]) or ["?"]
                )
                updatable = False
                yield Violation(
                    self.rule_id,
                    str(fp_path),
                    1,
                    f"schema family {name!r}: payload fields changed ({delta}) but "
                    f"version stayed {entry['version']}; bump the schema version "
                    f"constant, then run `repro lint --update-fingerprints`",
                )
            elif not updating:
                yield Violation(
                    self.rule_id,
                    str(fp_path),
                    1,
                    f"schema family {name!r}: fingerprint is stale (version "
                    f"{old.get('version')} -> {entry['version']}); run "
                    f"`repro lint --update-fingerprints` and commit the result",
                )

        if updating:
            if updatable:
                doc = {"schema": FINGERPRINTS_SCHEMA, "entries": current}
                fp_path.parent.mkdir(parents=True, exist_ok=True)
                fp_path.write_text(
                    json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
                )
            else:
                yield Violation(
                    self.rule_id,
                    str(fp_path),
                    1,
                    "refusing to update fingerprints while fields changed without "
                    "a version bump; bump the version constant first",
                )

    # -- frame-literal conformance ------------------------------------------
    def _check_frames(
        self, files: Sequence[FileContext], specs: Sequence[SchemaSpec]
    ) -> Iterator[Violation]:
        const_scopes = [
            (rel, dotted)
            for spec in specs
            for kind, rel, dotted in spec.scopes
            if kind == "const"
        ]
        if not const_scopes:
            return
        rel, dotted = const_scopes[0]
        wire_ctx = _find_module(files, rel)
        if wire_ctx is None:
            return
        table = _frame_table(wire_ctx.tree, dotted)
        if table is None:
            return
        service_dir = rel.rsplit("/", 1)[0] + "/" if "/" in rel else ""
        for ctx in files:
            if service_dir and not (
                ctx.posix_path.startswith(service_dir)
                or ("/" + service_dir) in ctx.posix_path
            ):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Dict):
                    continue
                keys: Dict[str, ast.AST] = {}
                ok = True
                for key in node.keys:
                    if key is None:  # {**other} — cannot check statically
                        ok = False
                        break
                    if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                        ok = False
                        break
                    keys[key.value] = key
                if not ok or "op" not in keys:
                    continue
                op_value = node.values[list(keys).index("op")]
                if not (isinstance(op_value, ast.Constant) and isinstance(op_value.value, str)):
                    continue  # dynamic op — covered by runtime validation
                op = op_value.value
                if op not in table:
                    yield self.violation(
                        ctx,
                        node,
                        f"frame literal uses op {op!r} not declared in {dotted}",
                    )
                    continue
                allowed = set(table[op]) | {"op", "v"}
                extra = sorted(set(keys) - allowed)
                if extra:
                    yield self.violation(
                        ctx,
                        node,
                        f"frame literal for op {op!r} carries undeclared fields "
                        f"{extra}; declare them in {dotted} (and bump "
                        f"SERVICE_SCHEMA if the wire shape changed)",
                    )

