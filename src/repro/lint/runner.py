"""Lint driver: collect files, run rules, apply suppressions, report.

The runner is deliberately dumb — discovery, rule dispatch and suppression
bookkeeping only.  All judgement lives in the rules.  Findings come back
sorted by (path, line, rule id) so output is byte-stable across runs and
machines, matching the repo-wide determinism discipline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.engine.registry import UnknownKeyError

from .framework import FileContext, LintConfig, LintRule, LINT_RULES, Violation
from .suppressions import FileSuppressions, SuppressionError, parse_suppressions

__all__ = ["LintResult", "collect_files", "run_lint"]


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors


def collect_files(root: Path) -> List[Path]:
    """All ``.py`` files under ``root`` (or just ``root`` if it is a file).

    Sorted for stable output; ``__pycache__`` is skipped.
    """
    if root.is_file():
        return [root]
    return sorted(
        p for p in root.rglob("*.py") if "__pycache__" not in p.parts
    )


def _make_context(path: Path, root: Path) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = str(path.relative_to(root))
    except ValueError:
        rel = str(path)
    return FileContext(path=path, rel_path=rel, source=source, tree=tree)


def resolve_rules(rule_ids: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the requested rules (all registered rules by default).

    Unknown ids raise :class:`~repro.engine.registry.UnknownKeyError` with
    the known-keys list, same UX as every other registry in the repo.
    """
    if rule_ids:
        classes = [LINT_RULES.get(rid) for rid in rule_ids]
    else:
        classes = [cls for _, cls in LINT_RULES.items()]
    return [cls() for cls in classes]


def run_lint(config: LintConfig, rule_ids: Optional[Sequence[str]] = None) -> LintResult:
    """Run the selected rules over every file under ``config.root``."""
    result = LintResult()
    try:
        rules = resolve_rules(rule_ids)
    except UnknownKeyError as exc:
        result.errors.append(str(exc))
        return result
    result.rules_run = [rule.rule_id for rule in rules]
    ran_ids = set(result.rules_run)

    contexts: List[FileContext] = []
    suppressions: Dict[str, FileSuppressions] = {}
    for path in collect_files(config.root):
        try:
            ctx = _make_context(path, config.root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.errors.append(f"{path}: failed to parse: {exc}")
            continue
        try:
            sups = parse_suppressions(ctx)
        except SuppressionError as exc:
            result.errors.append(str(exc))
            continue
        contexts.append(ctx)
        suppressions[ctx.rel_path] = sups
    result.files_checked = len(contexts)

    raw: List[Violation] = []
    for ctx in contexts:
        for rule in rules:
            raw.extend(rule.check_file(ctx, config))
    for rule in rules:
        raw.extend(rule.check_project(contexts, config))

    for violation in raw:
        sups = suppressions.get(violation.path)
        if sups is not None and sups.is_suppressed(violation.rule_id, violation.line):
            continue
        result.violations.append(violation)

    for ctx in contexts:
        result.violations.extend(
            suppressions[ctx.rel_path].unused(ran_ids, ctx.rel_path)
        )

    result.violations.sort(key=lambda v: (v.path, v.line, v.rule_id, v.message))
    return result
