"""Routing helpers: turning (source, target) demands into routed requests.

The paper's model has each request arrive *with* its path, so the online
algorithm never routes.  Routing therefore lives with the workload layer: the
generators below pick a path for each demand (shortest path, random simple
path, or random walk-derived path) and emit fully-specified
:class:`~repro.instances.request.Request` objects.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.network.graph import CapacitatedGraph, Vertex
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "shortest_path_route",
    "random_simple_path",
    "random_source_target",
    "k_shortest_paths",
]


def shortest_path_route(graph: CapacitatedGraph, source: Vertex, target: Vertex) -> List[Vertex]:
    """Fewest-hop route between two vertices (raises ``networkx.NetworkXNoPath`` if none)."""
    return graph.shortest_path(source, target)


def random_source_target(
    graph: CapacitatedGraph, random_state: RandomState = None, require_path: bool = True,
    max_attempts: int = 1000,
) -> Tuple[Vertex, Vertex]:
    """Pick a uniformly random ordered vertex pair, optionally requiring connectivity."""
    rng = as_generator(random_state)
    vertices = graph.vertices()
    if len(vertices) < 2:
        raise ValueError("graph needs at least two vertices")
    for _ in range(max_attempts):
        u, v = rng.choice(len(vertices), size=2, replace=False)
        source, target = vertices[int(u)], vertices[int(v)]
        if not require_path or graph.has_path(source, target):
            return source, target
    raise RuntimeError("could not find a connected source/target pair; is the graph connected?")


def random_simple_path(
    graph: CapacitatedGraph,
    source: Vertex,
    target: Vertex,
    random_state: RandomState = None,
    max_length: Optional[int] = None,
    max_attempts: int = 64,
) -> List[Vertex]:
    """A random simple path from ``source`` to ``target``.

    Uses randomized DFS: at each step the unvisited out-neighbours are tried in
    random order.  Falls back to the shortest path if the random walk fails
    ``max_attempts`` times (e.g. on sparse graphs).
    """
    rng = as_generator(random_state)
    nxg = graph.nx
    limit = max_length if max_length is not None else graph.num_vertices

    for _ in range(max_attempts):
        path = [source]
        visited = {source}
        while path[-1] != target and len(path) <= limit:
            current = path[-1]
            # Materialise the successor list once per step: the target
            # membership test and the unvisited filter share it instead of
            # re-walking a fresh generator each.
            successors = list(nxg.successors(current))
            if target in successors:
                path.append(target)
                break
            neighbours = [v for v in successors if v not in visited]
            if not neighbours:
                break
            nxt = neighbours[int(rng.integers(0, len(neighbours)))]
            path.append(nxt)
            visited.add(nxt)
        if path[-1] == target:
            return path
    return graph.shortest_path(source, target)


def k_shortest_paths(
    graph: CapacitatedGraph, source: Vertex, target: Vertex, k: int
) -> List[List[Vertex]]:
    """Up to ``k`` loop-free shortest paths (by hop count), shortest first."""
    if k < 1:
        raise ValueError("k must be >= 1")
    generator = nx.shortest_simple_paths(graph.nx, source, target)
    paths: List[List[Vertex]] = []
    for path in generator:
        paths.append(list(path))
        if len(paths) >= k:
            break
    return paths
