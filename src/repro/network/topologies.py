"""Standard network topologies used by workload generators and examples.

All constructors return a :class:`~repro.network.graph.CapacitatedGraph` with a
uniform (or per-edge) capacity.  Undirected shapes are expanded into symmetric
directed graphs because the paper's model is directed.
"""

from __future__ import annotations

import networkx as nx

from repro.network.graph import CapacitatedGraph
from repro.utils.rng import RandomState, as_generator

__all__ = [
    "line_graph",
    "ring_graph",
    "star_graph",
    "binary_tree_graph",
    "grid_graph",
    "complete_graph",
    "random_gnp_graph",
    "random_regular_graph",
]


def line_graph(num_vertices: int, capacity: int = 1) -> CapacitatedGraph:
    """A directed line ``0 -> 1 -> ... -> n-1`` (the classic call-control topology)."""
    if num_vertices < 2:
        raise ValueError("line_graph needs at least two vertices")
    edges = [(i, i + 1, capacity) for i in range(num_vertices - 1)]
    return CapacitatedGraph(edges)


def ring_graph(num_vertices: int, capacity: int = 1) -> CapacitatedGraph:
    """A directed cycle on ``num_vertices`` vertices."""
    if num_vertices < 3:
        raise ValueError("ring_graph needs at least three vertices")
    edges = [(i, (i + 1) % num_vertices, capacity) for i in range(num_vertices)]
    return CapacitatedGraph(edges)


def star_graph(leaves: int, capacity: int = 1) -> CapacitatedGraph:
    """A star with centre ``0`` and bidirected spokes to ``1..leaves``."""
    if leaves < 1:
        raise ValueError("star_graph needs at least one leaf")
    edges = []
    for leaf in range(1, leaves + 1):
        edges.append((0, leaf, capacity))
        edges.append((leaf, 0, capacity))
    return CapacitatedGraph(edges)


def binary_tree_graph(depth: int, capacity: int = 1) -> CapacitatedGraph:
    """A complete binary tree of the given depth, edges directed both ways."""
    if depth < 1:
        raise ValueError("binary_tree_graph needs depth >= 1")
    tree = nx.balanced_tree(2, depth)
    for _, _, data in tree.edges(data=True):
        data["capacity"] = capacity
    return CapacitatedGraph.from_networkx(tree, default_capacity=capacity)


def grid_graph(rows: int, cols: int, capacity: int = 1) -> CapacitatedGraph:
    """A ``rows x cols`` grid, edges directed both ways (mesh-network style)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be >= 1")
    grid = nx.grid_2d_graph(rows, cols)
    for _, _, data in grid.edges(data=True):
        data["capacity"] = capacity
    return CapacitatedGraph.from_networkx(grid, default_capacity=capacity)


def complete_graph(num_vertices: int, capacity: int = 1) -> CapacitatedGraph:
    """A complete directed graph on ``num_vertices`` vertices."""
    if num_vertices < 2:
        raise ValueError("complete_graph needs at least two vertices")
    edges = [
        (u, v, capacity)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    return CapacitatedGraph(edges)


def random_gnp_graph(
    num_vertices: int,
    edge_probability: float,
    capacity: int = 1,
    random_state: RandomState = None,
    ensure_connected: bool = True,
) -> CapacitatedGraph:
    """A G(n, p) random graph turned into a symmetric directed graph.

    With ``ensure_connected`` a spanning cycle is added so that every
    source/target pair used by workload generators has a path.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = as_generator(random_state)
    graph = nx.gnp_random_graph(num_vertices, edge_probability, seed=int(rng.integers(0, 2**31)))
    if ensure_connected:
        for i in range(num_vertices):
            graph.add_edge(i, (i + 1) % num_vertices)
    for _, _, data in graph.edges(data=True):
        data["capacity"] = capacity
    return CapacitatedGraph.from_networkx(graph, default_capacity=capacity)


def random_regular_graph(
    degree: int,
    num_vertices: int,
    capacity: int = 1,
    random_state: RandomState = None,
) -> CapacitatedGraph:
    """A random ``degree``-regular graph (an expander-like topology for stress tests)."""
    if degree * num_vertices % 2 != 0:
        raise ValueError("degree * num_vertices must be even for a regular graph")
    rng = as_generator(random_state)
    graph = nx.random_regular_graph(degree, num_vertices, seed=int(rng.integers(0, 2**31)))
    for _, _, data in graph.edges(data=True):
        data["capacity"] = capacity
    return CapacitatedGraph.from_networkx(graph, default_capacity=capacity)
